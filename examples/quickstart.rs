//! Quickstart: sample a GIRG, route greedily, inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use smallworld::core::{stretch, GirgObjective, GreedyRouter, RouteOutcome, Router};
use smallworld::graph::Components;
use smallworld::models::girg::GirgBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);

    // A geometric inhomogeneous random graph on the 2-torus: ~20k vertices,
    // power-law exponent 2.5, long-range decay α = 2, average degree ≈ 10.
    let girg = GirgBuilder::<2>::new(20_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.02)
        .sample(&mut rng)?;
    let components = Components::compute(girg.graph());
    println!(
        "sampled GIRG: {} vertices, {} edges, giant component covers {:.1}%",
        girg.node_count(),
        girg.graph().edge_count(),
        100.0 * components.giant_fraction()
    );

    // Route a packet between random vertices using the paper's objective
    // φ(v) = w_v / (w_min·n·dist(v,t)^d): "forward to the acquaintance most
    // likely to know the target".
    let objective = GirgObjective::new(&girg);
    let mut delivered = 0;
    for attempt in 1..=10 {
        let s = girg.random_vertex(&mut rng);
        let t = girg.random_vertex(&mut rng);
        let record = GreedyRouter::new().route_quiet(girg.graph(), &objective, s, t);
        match record.outcome {
            RouteOutcome::Delivered => {
                delivered += 1;
                let stretch = stretch(girg.graph(), &record)
                    .map(|x| format!("{x:.2}"))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "attempt {attempt}: {s} -> {t} delivered in {} hops (stretch {stretch})",
                    record.hops()
                );
            }
            RouteOutcome::DeadEnd => {
                println!(
                    "attempt {attempt}: {s} -> {t} stuck in a local optimum at {} after {} hops",
                    record.last(),
                    record.hops()
                );
            }
            RouteOutcome::MaxStepsExceeded => println!("attempt {attempt}: budget exceeded"),
        }
    }
    println!("{delivered}/10 delivered — Theorem 3.1 promises a constant fraction.");
    Ok(())
}
