//! A digital Milgram experiment: six degrees of separation on a GIRG.
//!
//! Milgram's 1967 letter-forwarding study found chains of average length
//! about six among the ~20% of letters that arrived. This example replays
//! the experiment on a sampled GIRG: random "people" forward a letter to
//! the acquaintance most likely to know the target (the paper's φ), and we
//! report arrival rate and chain lengths — plus what happens when lost
//! letters are rescued by the paper's Algorithm 2.
//!
//! Run with: `cargo run --release --example milgram`

use rand::SeedableRng;
use smallworld::analysis::Summary;
use smallworld::core::{GirgObjective, GreedyRouter, PhiDfsRouter, Router};
use smallworld::graph::Components;
use smallworld::models::girg::GirgBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1967);
    let population = 200_000;
    let letters = 500;

    println!("sampling a small world of {population} people...");
    let girg = GirgBuilder::<2>::new(population)
        .beta(2.5) // realistic scale-free acquaintance counts
        .alpha(2.0)
        .lambda(0.02) // ~10 acquaintances per person on average
        .sample(&mut rng)?;
    let components = Components::compute(girg.graph());
    let objective = GirgObjective::new(&girg);

    let mut arrived = 0usize;
    let mut reachable = 0usize;
    let mut chain = Summary::new();
    let mut rescued_chain = Summary::new();
    let rescue = PhiDfsRouter::new();

    for _ in 0..letters {
        let s = girg.random_vertex(&mut rng);
        let t = girg.random_vertex(&mut rng);
        if s == t || !components.same_component(s, t) {
            continue;
        }
        reachable += 1;
        let record = GreedyRouter::new().route_quiet(girg.graph(), &objective, s, t);
        if record.is_success() {
            arrived += 1;
            chain.push(record.hops() as f64);
        } else {
            // the paper's patching: a lost letter backtracks (Algorithm 2)
            let patched = rescue.route_quiet(girg.graph(), &objective, s, t);
            assert!(patched.is_success(), "Theorem 3.4: rescue always succeeds");
            rescued_chain.push(patched.hops() as f64);
        }
    }

    println!("letters with reachable targets: {reachable}");
    println!(
        "arrived greedily: {arrived} ({:.0}%), mean chain length {:.1} (Milgram reported ~6)",
        100.0 * arrived as f64 / reachable as f64,
        chain.mean()
    );
    println!(
        "lost letters rescued by Algorithm 2: {} (mean {:.1} steps incl. backtracking)",
        rescued_chain.count(),
        rescued_chain.mean()
    );
    println!(
        "theory (Thm 3.3): (2/|ln(beta-2)|)·lnln n = {:.1} steps",
        smallworld::core::theory::ultra_small_distance(2.5, population as f64)
    );

    // Milgram's observed ~21-29% completion is largely *attrition*: each
    // participant independently gives up with some probability. With the
    // ultra-small chains above, even 25% per-hop attrition leaves a
    // realistic completion rate — long chains are what attrition kills.
    let attrition: f64 = 0.25;
    let expected_completion =
        (1.0 - attrition).powf(chain.mean()) * (arrived as f64 / reachable as f64);
    println!(
        "with {:.0}% per-hop attrition the expected completion rate is {:.0}% \
         (Milgram observed 21-29%)",
        100.0 * attrition,
        100.0 * expected_completion
    );
    Ok(())
}
