//! Kleinberg's lattice vs GIRGs: why the paper changed the model.
//!
//! Three demonstrations from §1.1:
//!
//! 1. on Kleinberg's lattice, greedy routing is efficient exactly at the
//!    magic exponent r = d = 2 (fragile exponent),
//! 2. replacing the perfect lattice by random positions breaks greedy
//!    routing (the perfect-lattice shortcoming),
//! 3. a GIRG at the same scale routes in ultra-small time with constant
//!    success probability — no lattice, no magic exponent.
//!
//! Run with: `cargo run --release --example kleinberg_vs_girg`

use rand::SeedableRng;
use smallworld::analysis::{Proportion, Summary};
use smallworld::core::{
    DistanceObjective, GirgObjective, GreedyRouter, KleinbergObjective, Objective, Router,
};
use smallworld::graph::{Components, Graph, NodeId};
use smallworld::models::girg::GirgBuilder;
use smallworld::models::{ContinuumKleinberg, KleinbergLattice};

fn measure<O: Objective>(
    graph: &Graph,
    objective: &O,
    components: &Components,
    pairs: usize,
    rng: &mut rand::rngs::StdRng,
) -> (Proportion, Summary) {
    let mut success = Proportion::default();
    let mut hops = Summary::new();
    let n = graph.node_count();
    for _ in 0..pairs {
        let s = NodeId::from_index(rand::Rng::gen_range(rng, 0..n));
        let t = NodeId::from_index(rand::Rng::gen_range(rng, 0..n));
        if s == t || !components.same_component(s, t) {
            continue;
        }
        let record = GreedyRouter::new().route_quiet(graph, objective, s, t);
        success.push(record.is_success());
        if record.is_success() {
            hops.push(record.hops() as f64);
        }
    }
    (success, hops)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(46);
    let side = 180; // 32_400 lattice nodes
    let pairs = 400;

    println!("1) Kleinberg lattice ({side}x{side}), greedy by lattice distance:");
    for r in [1.0, 2.0, 3.0] {
        let lattice = KleinbergLattice::sample(side, r, 1, &mut rng)?;
        let comps = Components::compute(lattice.graph());
        let obj = KleinbergObjective::new(&lattice);
        let (succ, hops) = measure(lattice.graph(), &obj, &comps, pairs, &mut rng);
        println!(
            "   r = {r:.1}: success {succ}, mean steps {:>6.1} {}",
            hops.mean(),
            if (r - 2.0).abs() < 1e-9 {
                "<- navigable at r = d"
            } else {
                "(polynomially slower)"
            }
        );
    }

    println!("\n2) same idea with *noisy positions* (no lattice):");
    let continuum = ContinuumKleinberg::sample(side as u64 * side as u64, 1.0, 1, 4.0, &mut rng)?;
    let comps = Components::compute(continuum.graph());
    let obj = DistanceObjective::for_continuum(&continuum);
    let (succ, hops) = measure(continuum.graph(), &obj, &comps, pairs, &mut rng);
    println!(
        "   distance-greedy success {succ} (mean steps {:.1}) — most packets get stuck",
        hops.mean()
    );

    println!("\n3) a GIRG at the same scale (random positions, power-law weights):");
    let girg = GirgBuilder::<2>::new(side as u64 * side as u64)
        .beta(2.5)
        .lambda(0.02)
        .sample(&mut rng)?;
    let comps = Components::compute(girg.graph());
    let obj = GirgObjective::new(&girg);
    let (succ, hops) = measure(girg.graph(), &obj, &comps, pairs, &mut rng);
    println!(
        "   weight-aware greedy success {succ}, mean steps {:.1} — ultra-small, no lattice needed",
        hops.mean()
    );
    Ok(())
}
