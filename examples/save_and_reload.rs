//! Persist a sampled GIRG and route on the reloaded instance.
//!
//! Large GIRGs take a while to sample; the plain-text format of
//! `smallworld::models::io` lets a study sample once and reuse the instance
//! across processes (or generate it with the `girg_gen` CLI:
//! `cargo run --release -p smallworld-bench --bin girg_gen -- --n 100000 --out girg.txt`).
//!
//! Run with: `cargo run --release --example save_and_reload`

use std::io::BufReader;

use rand::SeedableRng;
use smallworld::core::{GirgObjective, GreedyRouter, Router};
use smallworld::models::girg::{Girg, GirgBuilder};
use smallworld::models::io::{read_girg, write_girg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let girg = GirgBuilder::<2>::new(50_000)
        .beta(2.5)
        .lambda(0.02)
        .sample(&mut rng)?;

    let path = std::env::temp_dir().join("smallworld_demo_girg.txt");
    write_girg(&girg, std::io::BufWriter::new(std::fs::File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved {} vertices / {} edges to {} ({:.1} MiB)",
        girg.node_count(),
        girg.graph().edge_count(),
        path.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );

    let restored: Girg<2> = read_girg(BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(restored.graph(), girg.graph());
    println!("reloaded; graphs are identical");

    // route on the reloaded instance
    let objective = GirgObjective::new(&restored);
    let mut delivered = 0;
    for _ in 0..100 {
        let s = restored.random_vertex(&mut rng);
        let t = restored.random_vertex(&mut rng);
        if GreedyRouter::new().route_quiet(restored.graph(), &objective, s, t).is_success() {
            delivered += 1;
        }
    }
    println!("routed 100 random pairs on the reloaded graph: {delivered} delivered");
    std::fs::remove_file(&path)?;
    Ok(())
}
