//! Watch the paper's patching protocols rescue a stuck packet.
//!
//! Finds a source/target pair where plain greedy routing dies in a local
//! optimum, then routes the same pair with the three patching protocols —
//! the paper's Algorithm 2 (Φ-DFS), the message-history protocol, and the
//! gravity–pressure heuristic — printing each walk. Theorem 3.4 guarantees
//! the (P1)–(P3) protocols deliver whenever the pair shares a component.
//!
//! Run with: `cargo run --release --example patching_rescue`

use rand::SeedableRng;
use smallworld::core::{
    GirgObjective, GravityPressureRouter, GreedyRouter, HistoryRouter, PhiDfsRouter, RouteRecord,
    Router,
};
use smallworld::graph::Components;
use smallworld::models::girg::GirgBuilder;

fn describe(name: &str, record: &RouteRecord) {
    let walk: Vec<String> = record.path.iter().take(14).map(|v| v.to_string()).collect();
    let ellipsis = if record.path.len() > 14 { " ..." } else { "" };
    println!(
        "{name:>16}: {:?} in {} steps\n{:>16}  {}{}",
        record.outcome,
        record.hops(),
        "",
        walk.join(" -> "),
        ellipsis
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // sparse enough that greedy dead ends are easy to find
    let girg = GirgBuilder::<2>::new(30_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.01)
        .sample(&mut rng)?;
    let components = Components::compute(girg.graph());
    let objective = GirgObjective::new(&girg);

    // find a same-component pair where greedy fails
    let (s, t, failed) = loop {
        let s = girg.random_vertex(&mut rng);
        let t = girg.random_vertex(&mut rng);
        if s == t || !components.same_component(s, t) {
            continue;
        }
        let record = GreedyRouter::new().route_quiet(girg.graph(), &objective, s, t);
        if !record.is_success() {
            break (s, t, record);
        }
    };

    println!(
        "routing {s} -> {t} (same component, shortest path exists)\n"
    );
    describe("plain greedy", &failed);
    println!(
        "{:>16}  stuck at {} — no neighbor has a better objective\n",
        "",
        failed.last()
    );

    for record in [
        ("phi-dfs (Alg. 2)", PhiDfsRouter::new().route_quiet(girg.graph(), &objective, s, t)),
        ("history", HistoryRouter::new().route_quiet(girg.graph(), &objective, s, t)),
        (
            "gravity-pressure",
            GravityPressureRouter::new().route_quiet(girg.graph(), &objective, s, t),
        ),
    ] {
        describe(record.0, &record.1);
        assert!(record.1.is_success());
        println!();
    }
    println!("all three patchers delivered; (P1)-(P3) protocols are guaranteed to (Thm 3.4).");
    Ok(())
}
