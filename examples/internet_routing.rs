//! Greedy geographic routing on a hyperbolic "internet" map.
//!
//! Boguñá, Papadopoulos and Krioukov showed that the internet AS graph
//! embeds well into the hyperbolic plane and that greedy geometric routing
//! on the embedding finds near-optimal paths — the question of Krioukov et
//! al. that the paper answers affirmatively (Corollary 3.6). This example
//! samples a hyperbolic random graph (the model those embeddings target),
//! routes by hyperbolic distance only, and reports the success rate and
//! stretch the experimental literature observed (success > 90%, stretch
//! ≈ 1).
//!
//! Run with: `cargo run --release --example internet_routing`

use rand::SeedableRng;
use smallworld::analysis::{Proportion, Summary};
use smallworld::core::{stretch, GreedyRouter, HyperbolicObjective, Router};
use smallworld::graph::Components;
use smallworld::models::HrgBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let n = 30_000;

    // α_H = 0.75 gives the paper's β = 2.5; the radius offset tunes density
    // to an internet-like average degree.
    let hrg = HrgBuilder::new(n)
        .alpha_h(0.75)
        .radius_offset(-1.0)
        .sample(&mut rng)?;
    let components = Components::compute(hrg.graph());
    println!(
        "hyperbolic random graph: {} nodes, {} links, avg degree {:.1}, giant {:.1}%",
        n,
        hrg.graph().edge_count(),
        hrg.graph().average_degree(),
        100.0 * components.giant_fraction()
    );

    // routing uses ONLY hyperbolic coordinates — no routing tables at all
    let objective = HyperbolicObjective::new(&hrg);
    let mut success = Proportion::default();
    let mut stretches = Summary::new();
    let mut hops = Summary::new();
    for _ in 0..2_000 {
        let s = hrg.random_vertex(&mut rng);
        let t = hrg.random_vertex(&mut rng);
        if s == t || !components.same_component(s, t) {
            continue;
        }
        let record = GreedyRouter::new().route_quiet(hrg.graph(), &objective, s, t);
        success.push(record.is_success());
        if record.is_success() {
            hops.push(record.hops() as f64);
            if let Some(x) = stretch(hrg.graph(), &record) {
                stretches.push(x);
            }
        }
    }

    println!("greedy geographic routing: {success} delivered");
    println!("mean path length: {:.2} hops", hops.mean());
    println!(
        "mean stretch vs shortest path: {:.3} (the embeddings literature reports ~1.1)",
        stretches.mean()
    );
    println!("no node stored any routing table: decisions used neighbor coordinates only.");
    Ok(())
}
