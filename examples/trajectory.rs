//! Visualize the two-phase trajectory of a greedy path (Figure 1).
//!
//! Prints, hop by hop, the weight, objective, distance to the target and
//! phase (V₁ weight-climb vs V₂ objective-descent) of one long greedy
//! route, with an ASCII bar for the weight profile — the "up to the core,
//! then down to the target" shape of Figure 1.
//!
//! Run with: `cargo run --release --example trajectory`

use rand::SeedableRng;
use smallworld::core::trajectory::Phase;
use smallworld::core::{GirgObjective, GreedyRouter, Router, Trajectory};
use smallworld::models::girg::GirgBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let girg = GirgBuilder::<2>::new(300_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.02)
        .sample(&mut rng)?;
    let objective = GirgObjective::new(&girg);

    // hunt for a reasonably long successful route (lower the bar if the
    // sampled instance happens to be short-route-only)
    let mut record = None;
    for min_hops in [6, 5, 4] {
        for _ in 0..5_000 {
            let s = girg.random_vertex(&mut rng);
            let t = girg.random_vertex(&mut rng);
            let candidate = GreedyRouter::new().route_quiet(girg.graph(), &objective, s, t);
            if candidate.is_success() && candidate.hops() >= min_hops {
                record = Some(candidate);
                break;
            }
        }
        if record.is_some() {
            break;
        }
    }
    let record = record.expect("no multi-hop greedy route found in 15000 attempts");
    let trajectory = Trajectory::extract(&girg, &record);

    println!("greedy route with {} hops:\n", record.hops());
    println!(
        "{:>4}  {:>8}  {:>10}  {:>10}  {:<7}  weight profile",
        "hop", "weight", "phi", "dist to t", "phase"
    );
    let max_log_w = trajectory
        .weights
        .iter()
        .map(|w| w.ln())
        .fold(f64::MIN, f64::max);
    for (i, (v, w, phi, phase)) in trajectory.zip_path(&record).enumerate() {
        let bar_len = if max_log_w > 0.0 {
            ((w.ln() / max_log_w) * 40.0).max(0.0) as usize
        } else {
            0
        };
        let phase_label = match phase {
            Phase::WeightClimb => "V1 up",
            Phase::ObjectiveDescent => "V2 down",
        };
        println!(
            "{i:>4}  {w:>8.1}  {phi:>10.2e}  {:>10.4}  {phase_label:<7}  {} {v}",
            trajectory.distances[i],
            "#".repeat(bar_len),
        );
    }

    let peak = trajectory.peak_index().expect("non-empty route");
    println!(
        "\nweight peaks at hop {peak} of {} — the greedy packet climbs to the \
         network core, then descends towards the target (Figure 1).",
        record.hops()
    );
    if let Some(transition) = trajectory.phase_transition() {
        println!("the V1 -> V2 phase transition of §7.3 happens at hop {transition}.");
    }
    Ok(())
}
