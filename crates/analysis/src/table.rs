//! Aligned plain-text tables for the experiment binaries.

use std::fmt;

/// A plain-text table with right-aligned numeric-style columns.
///
/// # Examples
///
/// ```
/// use smallworld_analysis::Table;
///
/// let mut t = Table::new(["n", "success", "hops"]);
/// t.row(["1024", "0.71", "4.2"]);
/// t.row(["65536", "0.73", "5.9"]);
/// let out = t.to_string();
/// assert!(out.contains("success"));
/// assert!(out.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The title, if one was set with [`Table::title`].
    pub fn title_text(&self) -> Option<&str> {
        self.title.as_deref()
    }
}

/// Formats a float compactly for a table cell.
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Formats a `(lo, hi)` confidence interval for a table cell.
pub fn fmt_ci(lo: f64, hi: f64, decimals: usize) -> String {
    format!("[{}, {}]", fmt_f64(lo, decimals), fmt_f64(hi, decimals))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "## {title}")?;
        }
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{:>width$}", h, width = widths[i])?;
        }
        writeln!(f)?;
        let rule_len: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "20000"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width (right-aligned columns)
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn title_is_printed() {
        let mut t = Table::new(["x"]).title("Experiment 1");
        t.row(["1"]);
        assert!(t.to_string().starts_with("## Experiment 1"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_length_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_ci(0.1, 0.9, 1), "[0.1, 0.9]");
    }

    #[test]
    fn row_count_tracks() {
        let mut t = Table::new(["x"]);
        assert_eq!(t.row_count(), 0);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn accessors_expose_contents() {
        let mut t = Table::new(["a", "b"]).title("T");
        t.row(["1", "2"]);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows(), [vec!["1".to_string(), "2".to_string()]]);
        assert_eq!(t.title_text(), Some("T"));
        assert_eq!(Table::new(["x"]).title_text(), None);
    }
}
