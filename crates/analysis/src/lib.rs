//! Lightweight statistics for the experiment harness.
//!
//! Everything the experiments need to turn Monte-Carlo runs into the
//! paper-style tables of `EXPERIMENTS.md`, with no external dependencies:
//!
//! * [`Summary`] — mean / variance / standard error / 95% CI of a sample,
//! * [`Proportion`] — success rates with Wilson confidence intervals,
//! * [`Histogram`] — linear and logarithmic binning,
//! * [`LinearFit`] — least-squares fits (e.g. slope of failure-rate decay),
//! * [`hill_estimator`] — maximum-likelihood power-law exponents,
//! * [`Table`] — aligned plain-text table rendering.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod powerlaw;
pub mod regression;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use powerlaw::hill_estimator;
pub use regression::LinearFit;
pub use summary::{quantile, Proportion, Summary};
pub use table::Table;
