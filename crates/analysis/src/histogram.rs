//! Fixed-width and logarithmic histograms.

/// A histogram over `[lo, hi)` with equal-width or logarithmic bins.
///
/// # Examples
///
/// ```
/// use smallworld_analysis::Histogram;
///
/// let mut h = Histogram::linear(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(1.5);
/// h.push(9.0);
/// assert_eq!(h.counts(), &[2, 0, 0, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    logarithmic: bool,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, a bound is not finite, or `bins == 0`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            logarithmic: false,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Logarithmically spaced bins over `[lo, hi)` — the right choice for
    /// power-law data such as GIRG degrees.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi`, or `bins == 0`.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && lo < hi && hi.is_finite(), "invalid log range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            logarithmic: true,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation; values outside `[lo, hi)` are counted in the
    /// under/overflow tallies.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = if self.logarithmic {
            (x / self.lo).ln() / (self.hi / self.lo).ln()
        } else {
            (x - self.lo) / (self.hi - self.lo)
        };
        let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let frac = |k: usize| k as f64 / self.counts.len() as f64;
        if self.logarithmic {
            let ratio = self.hi / self.lo;
            (
                self.lo * ratio.powf(frac(i)),
                self.lo * ratio.powf(frac(i + 1)),
            )
        } else {
            let width = self.hi - self.lo;
            (self.lo + width * frac(i), self.lo + width * frac(i + 1))
        }
    }

    /// The empirical density of bin `i` (count / total / bin width).
    ///
    /// Returns 0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let (lo, hi) = self.bin_bounds(i);
        self.counts[i] as f64 / total as f64 / (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        for &x in &[0.0, 0.1, 0.3, 0.5, 0.74, 0.75, 0.99] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 2, 2]);
        assert_eq!(h.bin_bounds(1), (0.25, 0.5));
    }

    #[test]
    fn out_of_range_tallied() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0);
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn log_binning() {
        let mut h = Histogram::logarithmic(1.0, 16.0, 4);
        // bins: [1,2) [2,4) [4,8) [8,16)
        for &x in &[1.0, 1.9, 2.0, 5.0, 15.9] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        let (lo, hi) = h.bin_bounds(2);
        assert!((lo - 4.0).abs() < 1e-9 && (hi - 8.0).abs() < 1e-9);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::linear(0.0, 2.0, 8);
        for i in 0..100 {
            h.push((i as f64) / 50.0);
        }
        let integral: f64 = (0..8)
            .map(|i| {
                let (lo, hi) = h.bin_bounds(i);
                h.density(i) * (hi - lo)
            })
            .sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_bad_range() {
        let _ = Histogram::linear(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid log range")]
    fn rejects_nonpositive_log_range() {
        let _ = Histogram::logarithmic(0.0, 10.0, 4);
    }

    proptest! {
        #[test]
        fn prop_every_in_range_value_lands_in_its_bin(x in 0.0..0.999f64, bins in 1usize..20) {
            let mut h = Histogram::linear(0.0, 1.0, bins);
            h.push(x);
            let bin = h.counts().iter().position(|&c| c == 1).unwrap();
            let (lo, hi) = h.bin_bounds(bin);
            prop_assert!(lo <= x && x < hi + 1e-12);
        }

        #[test]
        fn prop_log_bins_partition(x in 1.0..99.9f64, bins in 1usize..20) {
            let mut h = Histogram::logarithmic(1.0, 100.0, bins);
            h.push(x);
            prop_assert_eq!(h.total(), 1);
        }
    }
}
