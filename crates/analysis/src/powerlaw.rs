//! Power-law exponent estimation.

/// The Hill (maximum-likelihood) estimator of a power-law tail exponent.
///
/// For samples with `Pr[X ≥ x] ∝ x^{1−β}` above `x_min`, the MLE is
///
/// ```text
/// β̂ = 1 + k / Σ_{x_i ≥ x_min} ln(x_i / x_min)
/// ```
///
/// where `k` is the number of tail samples. Used by `exp_structure` to
/// verify that sampled GIRG weights and degrees follow the configured β.
///
/// Returns `None` if fewer than `min_tail` samples reach `x_min` or the sum
/// of logs vanishes.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
/// use smallworld_analysis::hill_estimator;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Pareto(β = 2.5): x = u^{-1/(β-1)}
/// let data: Vec<f64> = (0..20_000)
///     .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / 1.5))
///     .collect();
/// let beta = hill_estimator(&data, 1.0, 100).unwrap();
/// assert!((beta - 2.5).abs() < 0.1, "beta = {beta}");
/// ```
pub fn hill_estimator(data: &[f64], x_min: f64, min_tail: usize) -> Option<f64> {
    assert!(x_min > 0.0, "x_min must be positive");
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for &x in data {
        if x >= x_min {
            count += 1;
            log_sum += (x / x_min).ln();
        }
    }
    if count < min_tail.max(1) || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + count as f64 / log_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn pareto_sample(beta: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (1.0 - rng.gen::<f64>()).powf(-1.0 / (beta - 1.0)))
            .collect()
    }

    #[test]
    fn recovers_exponent_across_betas() {
        for &beta in &[2.1, 2.5, 2.9] {
            let data = pareto_sample(beta, 50_000, 7);
            let est = hill_estimator(&data, 1.0, 100).unwrap();
            assert!((est - beta).abs() < 0.1, "beta={beta} est={est}");
        }
    }

    #[test]
    fn tail_threshold_ignores_body() {
        // shifted data: estimating above a higher x_min still works
        let data = pareto_sample(2.5, 100_000, 8);
        let est = hill_estimator(&data, 3.0, 50).unwrap();
        assert!((est - 2.5).abs() < 0.15, "est={est}");
    }

    #[test]
    fn insufficient_tail_returns_none() {
        let data = vec![1.0, 1.1, 1.2];
        assert_eq!(hill_estimator(&data, 10.0, 5), None);
        assert_eq!(hill_estimator(&[], 1.0, 1), None);
    }

    #[test]
    fn identical_values_return_none() {
        // all samples exactly at x_min: log-sum is zero
        let data = vec![2.0; 100];
        assert_eq!(hill_estimator(&data, 2.0, 10), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_xmin() {
        let _ = hill_estimator(&[1.0], 0.0, 1);
    }
}
