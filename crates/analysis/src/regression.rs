//! Ordinary least-squares line fitting.

/// A least-squares fit `y ≈ slope · x + intercept`.
///
/// # Examples
///
/// ```
/// use smallworld_analysis::LinearFit;
///
/// let fit = LinearFit::fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// The fitted slope.
    pub slope: f64,
    /// The fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 when `y` is constant).
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line through `(x, y)` points.
    ///
    /// Returns `None` with fewer than two points or when all `x` coincide.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points
            .iter()
            .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Fits a line through `(ln x, ln y)` — i.e. a power law `y = c·x^slope`.
    ///
    /// Points with non-positive coordinates are skipped.
    pub fn fit_loglog(points: &[(f64, f64)]) -> Option<LinearFit> {
        let transformed: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.0 > 0.0 && p.1 > 0.0)
            .map(|p| (p.0.ln(), p.1.ln()))
            .collect();
        LinearFit::fit(&transformed)
    }

    /// Fits a line through `(x, ln y)` — i.e. an exponential
    /// `y = c·e^{slope·x}`, the shape of Theorem 3.2's failure decay.
    ///
    /// Points with non-positive `y` are skipped.
    pub fn fit_semilog(points: &[(f64, f64)]) -> Option<LinearFit> {
        let transformed: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.1 > 0.0)
            .map(|p| (p.0, p.1.ln()))
            .collect();
        LinearFit::fit(&transformed)
    }

    /// The predicted `y` at `x` (in the transformed space of the fit).
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degenerate_inputs() {
        assert_eq!(LinearFit::fit(&[]), None);
        assert_eq!(LinearFit::fit(&[(1.0, 2.0)]), None);
        assert_eq!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]), None);
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = LinearFit::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn loglog_recovers_power_law() {
        let points: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x.powf(-2.5))
            })
            .collect();
        let fit = LinearFit::fit_loglog(&points).unwrap();
        assert!((fit.slope + 2.5).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn semilog_recovers_exponential_decay() {
        let points: Vec<(f64, f64)> = (0..15)
            .map(|i| {
                let x = i as f64;
                (x, 0.5 * (-0.7 * x).exp())
            })
            .collect();
        let fit = LinearFit::fit_semilog(&points).unwrap();
        assert!((fit.slope + 0.7).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let points = [(0.0, 1.0), (-1.0, 2.0), (1.0, 0.0), (1.0, 1.0), (2.0, 4.0)];
        let fit = LinearFit::fit_loglog(&points).unwrap();
        // only (1,1) and (2,4) survive: slope = ln4/ln2 = 2
        assert!((fit.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predict_is_linear() {
        let fit = LinearFit {
            slope: 2.0,
            intercept: -1.0,
            r_squared: 1.0,
        };
        assert_eq!(fit.predict(0.0), -1.0);
        assert_eq!(fit.predict(3.0), 5.0);
    }

    proptest! {
        #[test]
        fn prop_exact_line_recovered(a in -5.0..5.0f64, b in -5.0..5.0f64,
                                     xs in prop::collection::btree_set(-1000i32..1000, 2..20)) {
            let points: Vec<(f64, f64)> = xs.iter().map(|&x| {
                let x = x as f64 / 10.0;
                (x, a * x + b)
            }).collect();
            let fit = LinearFit::fit(&points).unwrap();
            prop_assert!((fit.slope - a).abs() < 1e-6);
            prop_assert!((fit.intercept - b).abs() < 1e-6);
            prop_assert!(fit.r_squared > 1.0 - 1e-6);
        }
    }
}
