//! Sample summaries and success proportions.

use std::fmt;

/// Mean, variance and confidence interval of an `f64` sample.
///
/// # Examples
///
/// ```
/// use smallworld_analysis::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// let (lo, hi) = s.ci95();
/// assert!(lo < 2.5 && 2.5 < hi);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation (Welford's online update).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary observations must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no observations were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err();
        (self.mean - half, self.mean + half)
    }

    /// The smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for Summary {
    /// Same as [`Summary::new`].
    fn default() -> Self {
        Summary::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "(no data)")
        } else {
            write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.std_err(), self.count)
        }
    }
}

/// The `q`-quantile of a sample by the nearest-rank method.
///
/// Returns `None` for an empty sample. The input need not be sorted.
///
/// # Panics
///
/// Panics unless `q ∈ [0, 1]` and all values are comparable (no NaN).
///
/// # Examples
///
/// ```
/// use smallworld_analysis::summary::quantile;
///
/// let data = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(quantile(&data, 0.0), Some(1.0));
/// assert_eq!(quantile(&data, 0.5), Some(3.0));
/// assert_eq!(quantile(&data, 1.0), Some(5.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

/// A success rate with a Wilson-score confidence interval.
///
/// # Examples
///
/// ```
/// use smallworld_analysis::Proportion;
///
/// let p = Proportion::new(90, 100);
/// assert_eq!(p.rate(), 0.9);
/// let (lo, hi) = p.wilson_ci95();
/// assert!(lo > 0.8 && hi < 0.96);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Proportion {
    successes: usize,
    trials: usize,
}

impl Proportion {
    /// Creates a proportion.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: usize, trials: usize) -> Self {
        assert!(successes <= trials, "more successes than trials");
        Proportion { successes, trials }
    }

    /// Records one Bernoulli trial.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of successes.
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The empirical rate (0 with no trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson-score 95% interval — well-behaved at rates near 0 and 1,
    /// which matters for the exponentially small failure rates of
    /// Theorem 3.2.
    pub fn wilson_ci95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let z = 1.96f64;
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl FromIterator<bool> for Proportion {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut p = Proportion::default();
        for b in iter {
            p.push(b);
        }
        p
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} = {:.3}", self.successes, self.trials, self.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(format!("{s}"), "(no data)");
    }

    #[test]
    fn default_equals_new() {
        // a derived Default would zero min/max and corrupt merged minima
        assert_eq!(Summary::default(), Summary::new());
        assert_eq!(Summary::default().min(), f64::INFINITY);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        // sample variance with n-1: 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    fn extend_matches_collect() {
        let mut a = Summary::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn quantile_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&data, 0.95), Some(95.0));
        assert_eq!(quantile(&data, 0.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_order() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn proportion_basics() {
        let p: Proportion = [true, true, false, true].into_iter().collect();
        assert_eq!(p.successes(), 3);
        assert_eq!(p.trials(), 4);
        assert_eq!(p.rate(), 0.75);
        assert!(format!("{p}").contains("3/4"));
    }

    #[test]
    fn proportion_empty_ci_is_trivial() {
        assert_eq!(Proportion::default().wilson_ci95(), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn proportion_rejects_invalid() {
        let _ = Proportion::new(5, 3);
    }

    #[test]
    fn wilson_interval_never_degenerate_at_extremes() {
        let p = Proportion::new(50, 50);
        let (lo, hi) = p.wilson_ci95();
        assert!(lo < 1.0);
        assert_eq!(hi, 1.0);
        let q = Proportion::new(0, 50);
        let (lo, hi) = q.wilson_ci95();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(xs in prop::collection::vec(-100.0..100.0f64, 2..50)) {
            let s: Summary = xs.iter().copied().collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-9);
            prop_assert!((s.variance() - var).abs() < 1e-7);
        }

        #[test]
        fn prop_ci_contains_mean(xs in prop::collection::vec(-10.0..10.0f64, 1..30)) {
            let s: Summary = xs.iter().copied().collect();
            let (lo, hi) = s.ci95();
            prop_assert!(lo <= s.mean() && s.mean() <= hi);
        }

        #[test]
        fn prop_wilson_contains_rate_roughly(k in 0usize..100, extra in 0usize..100) {
            let p = Proportion::new(k, k + extra);
            let (lo, hi) = p.wilson_ci95();
            prop_assert!(lo <= hi);
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!((0.0..=1.0).contains(&hi));
        }
    }
}
