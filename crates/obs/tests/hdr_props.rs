//! Property suite for the HDR log-linear histogram.
//!
//! Three contracts back the workspace's determinism story for quantiles:
//!
//! 1. **Merge is order- and partition-invariant** — splitting a value
//!    stream across any number of histograms and merging their snapshots
//!    in any order yields the same snapshot as recording everything into
//!    one histogram. This is what makes per-task histograms foldable in
//!    task order with a thread-count-invariant result.
//! 2. **Quantiles track a naive sorted-vector oracle** within the
//!    documented bound: `oracle <= reported <= oracle * (1 + 1/128)`
//!    (plus 1 for integer truncation).
//! 3. **Shard routing never changes the snapshot** — recording from many
//!    threads (exercising different internal shards) matches sequential
//!    recording exactly.
//!
//! The vendored `proptest!` macro is a recursive muncher, so the checks
//! live in plain `fn`s (failures panic via `assert!`) and the macro
//! clauses stay one-liners.

use proptest::collection::vec;
use proptest::prelude::ProptestConfig;
use proptest::proptest;
use smallworld_obs::hdr::{HdrHistogram, HdrSnapshot, RELATIVE_ERROR, REPORT_QUANTILES};

fn record_all(values: &[u64]) -> HdrSnapshot {
    let h = HdrHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The naive oracle: rank `ceil(q*n)` (1-based) of the sorted values.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn check_partition_invariance(values: &[u64], parts: usize) {
    let whole = record_all(values);

    // round-robin partition into `parts` histograms
    let mut shards: Vec<Vec<u64>> = std::iter::repeat_with(Vec::new).take(parts).collect();
    for (i, &v) in values.iter().enumerate() {
        shards[i % parts].push(v);
    }
    let snaps: Vec<HdrSnapshot> = shards.iter().map(|s| record_all(s)).collect();

    let forward = snaps
        .iter()
        .fold(HdrSnapshot::default(), |acc, s| acc.merge(s));
    let backward = snaps
        .iter()
        .rev()
        .fold(HdrSnapshot::default(), |acc, s| acc.merge(s));

    assert_eq!(forward, whole, "forward merge, parts={parts}");
    assert_eq!(backward, whole, "reverse merge, parts={parts}");
}

fn check_quantiles_against_oracle(mut values: Vec<u64>) {
    let snap = record_all(&values);
    values.sort_unstable();
    for &(name, q) in &REPORT_QUANTILES {
        let reported = snap.quantile(q).expect("non-empty");
        let oracle = oracle_quantile(&values, q);
        assert!(reported >= oracle, "{name}: reported {reported} < oracle {oracle}");
        let bound = oracle as f64 * (1.0 + RELATIVE_ERROR) + 1.0;
        assert!(
            (reported as f64) <= bound,
            "{name}: reported {reported} > bound {bound} (oracle {oracle})"
        );
    }
    // q=1 is exact: the top bucket's edge is capped at the recorded max
    assert_eq!(snap.quantile(1.0), Some(*values.last().unwrap()));
}

fn check_threaded_matches_sequential(values: &[u64], threads: usize) {
    let sequential = record_all(values);
    let concurrent = HdrHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let concurrent = &concurrent;
            scope.spawn(move || {
                for (i, &v) in values.iter().enumerate() {
                    if i % threads == t {
                        concurrent.record(v);
                    }
                }
            });
        }
    });
    assert_eq!(concurrent.snapshot(), sequential, "threads={threads}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_merge_is_partition_and_order_invariant(
        values in vec(0u64..1 << 48, 1..200),
        parts in 1usize..8,
    ) {
        check_partition_invariance(&values, parts);
    }

    #[test]
    fn prop_quantiles_match_sorted_oracle_within_bound(
        values in vec(0u64..1 << 48, 1..300),
    ) {
        check_quantiles_against_oracle(values);
    }

    #[test]
    fn prop_threaded_recording_matches_sequential(
        values in vec(0u64..1 << 40, 1..200),
        threads in 2usize..6,
    ) {
        check_threaded_matches_sequential(&values, threads);
    }
}
