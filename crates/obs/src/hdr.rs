//! HDR-style log-linear histograms with bounded relative error.
//!
//! The fixed log₂ histograms in [`crate::metrics`] answer "what order of
//! magnitude" questions; they cannot answer "what is p999" — a bucket
//! spanning `[2^20, 2^21)` is a 100% error bar at the tail. An
//! [`HdrHistogram`] subdivides every power-of-two range into
//! [`SUB_BUCKETS`] linear sub-buckets, so any recorded `u64` lands in a
//! bucket whose width is at most `value / SUB_BUCKETS` — quantiles read
//! back from the bucket upper edge overshoot the true sample by at most
//! [`RELATIVE_ERROR`] (1/128 ≈ 0.8%, within the documented ~1% bound).
//!
//! Recording is lock-free: one relaxed `fetch_add` on a per-thread shard
//! (lazily allocated, so single-threaded histograms pay for one shard).
//! Merging — across shards, across histograms, across Monte-Carlo reps —
//! is plain bucket-wise addition of [`HdrSnapshot`]s, which is commutative
//! and associative, so merged quantiles are **bitwise identical at any
//! thread count and any merge order** as long as the recorded sample
//! multiset is (the workspace-wide determinism discipline guarantees
//! that).
//!
//! # Examples
//!
//! ```
//! use smallworld_obs::hdr::HdrHistogram;
//!
//! let h = HdrHistogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let s = h.snapshot();
//! assert_eq!(s.count, 1000);
//! let p50 = s.quantile(0.50).unwrap();
//! assert!((498..=504).contains(&p50), "p50 within 1% of 500: {p50}");
//! assert_eq!(s.quantile(1.0), Some(1000));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// log₂ of [`SUB_BUCKETS`].
pub const SUB_BUCKET_BITS: u32 = 7;

/// Linear sub-buckets per power-of-two range (128).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Guaranteed relative error bound of quantile read-back: a reported
/// quantile `q` satisfies `true <= q <= true * (1 + RELATIVE_ERROR)`.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Total bucket count covering the full `u64` range: values below
/// [`SUB_BUCKETS`] are exact, then every exponent `SUB_BUCKET_BITS..=63`
/// contributes [`SUB_BUCKETS`] linear sub-buckets.
pub const BUCKETS: usize = SUB_BUCKETS * (65 - SUB_BUCKET_BITS as usize);

/// Number of independent recording shards (power of two).
const SHARDS: usize = 8;

/// The bucket index holding `value`. Exact (`index == value`) below
/// [`SUB_BUCKETS`]; log-linear above.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let e = 63 - value.leading_zeros();
        let sub = ((value - (1u64 << e)) >> (e - SUB_BUCKET_BITS)) as usize;
        SUB_BUCKETS + (e - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let e = SUB_BUCKET_BITS + ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        (1u64 << e) + (sub << (e - SUB_BUCKET_BITS))
    }
}

/// Inclusive upper bound of bucket `i` (the value quantiles report).
pub fn bucket_hi(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let e = SUB_BUCKET_BITS + ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        bucket_lo(i) + ((1u64 << (e - SUB_BUCKET_BITS)) - 1)
    }
}

/// One lazily-allocated recording shard.
#[derive(Default)]
struct Shard {
    buckets: OnceLock<Box<[AtomicU64]>>,
}

impl Shard {
    fn buckets(&self) -> &[AtomicU64] {
        self.buckets
            .get_or_init(|| (0..BUCKETS).map(|_| AtomicU64::new(0)).collect())
    }
}

/// A sharded, lock-free log-linear histogram of `u64` samples.
///
/// See the [module docs](self) for the error bound and the determinism
/// argument. Use [`crate::metrics::hdr`] for a registry-interned global
/// instance, or `HdrHistogram::new()` for a local one (e.g. per
/// Monte-Carlo rep, merged afterwards via [`HdrSnapshot::merge`]).
pub struct HdrHistogram {
    shards: [Shard; SHARDS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for HdrHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "HdrHistogram(count={}, sum={})", s.count, s.sum)
    }
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// An empty histogram. Bucket storage is allocated lazily per shard on
    /// first use, so idle histograms are near-free.
    pub fn new() -> Self {
        HdrHistogram {
            shards: Default::default(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: one relaxed `fetch_add` on this thread's shard
    /// plus the count/sum/min/max scalars.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[crate::metrics::shard_index() % SHARDS];
        shard.buckets()[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a `Duration` in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges all shards into a point-in-time [`HdrSnapshot`].
    pub fn snapshot(&self) -> HdrSnapshot {
        let mut counts: Vec<(u32, u64)> = Vec::new();
        let mut merged = vec![0u64; 0];
        for shard in &self.shards {
            let Some(buckets) = shard.buckets.get() else {
                continue;
            };
            if merged.is_empty() {
                merged = vec![0u64; BUCKETS];
            }
            for (i, b) in buckets.iter().enumerate() {
                merged[i] += b.load(Ordering::Relaxed);
            }
        }
        for (i, &c) in merged.iter().enumerate() {
            if c > 0 {
                counts.push((i as u32, c));
            }
        }
        HdrSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the histogram (shards stay allocated).
    pub fn reset(&self) {
        for shard in &self.shards {
            if let Some(buckets) = shard.buckets.get() {
                for b in buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The standard quantiles every run-report extracts.
pub const REPORT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A point-in-time, sparse copy of an [`HdrHistogram`].
///
/// Only non-empty buckets are kept, as `(bucket index, count)` pairs
/// sorted by index — merge and delta are linear in the number of occupied
/// buckets, and the representation is canonical (equal sample multisets
/// give equal snapshots, whatever the recording interleaving).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HdrSnapshot {
    /// Occupied `(bucket index, count)` pairs, sorted by index.
    pub counts: Vec<(u32, u64)>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

/// The empty snapshot — the identity of [`HdrSnapshot::merge`]
/// (`min` starts at `u64::MAX`, matching an empty histogram's snapshot).
impl Default for HdrSnapshot {
    fn default() -> Self {
        HdrSnapshot {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HdrSnapshot {
    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) of the recorded samples, or `None`
    /// when empty.
    ///
    /// Returns the upper edge of the bucket holding the sample of rank
    /// `ceil(q * count)` (clamped to the recorded max), so the result `r`
    /// brackets the true order statistic `t` as
    /// `t <= r <= t * (1 + RELATIVE_ERROR)` — and exactly `r == t` for
    /// values below [`SUB_BUCKETS`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(i as usize).min(self.max));
            }
        }
        // counts and count can only disagree transiently under concurrent
        // recording; fall back to the recorded max
        Some(self.max)
    }

    /// Bucket-wise sum of two snapshots. Commutative and associative, so
    /// any merge tree over the same snapshots yields the same result.
    pub fn merge(&self, other: &HdrSnapshot) -> HdrSnapshot {
        let mut counts = Vec::with_capacity(self.counts.len() + other.counts.len());
        let (mut a, mut b) = (self.counts.iter().peekable(), other.counts.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        counts.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        counts.push((ib, cb));
                        b.next();
                    } else {
                        counts.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    counts.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    counts.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HdrSnapshot {
            counts,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The change from `earlier` to `self`: bucket-wise saturating
    /// subtraction (`min`/`max` are carried from `self`, as extrema do not
    /// subtract). Used for per-suite artifact deltas.
    pub fn since(&self, earlier: &HdrSnapshot) -> HdrSnapshot {
        let base: std::collections::BTreeMap<u32, u64> = earlier.counts.iter().copied().collect();
        let counts: Vec<(u32, u64)> = self
            .counts
            .iter()
            .filter_map(|&(i, c)| {
                let delta = c.saturating_sub(base.get(&i).copied().unwrap_or(0));
                (delta > 0).then_some((i, delta))
            })
            .collect();
        HdrSnapshot {
            counts,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(i as u64, v);
            assert_eq!(bucket_lo(i), v);
            assert_eq!(bucket_hi(i), v);
        }
    }

    #[test]
    fn bucket_edges_are_consistent() {
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
            if i > 0 {
                assert_eq!(bucket_lo(i), bucket_hi(i - 1).wrapping_add(1), "bucket {i} adjacency");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_hi(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [
            1u64, 127, 128, 129, 1000, 65_535, 1 << 20, (1 << 20) + 7, u64::MAX / 3, u64::MAX,
        ] {
            let i = bucket_index(v);
            let hi = bucket_hi(i);
            assert!(hi >= v);
            // hi - v <= bucket width <= v / SUB_BUCKETS (+1 for rounding)
            assert!(
                (hi - v) as f64 <= v as f64 * RELATIVE_ERROR + 1.0,
                "value {v}: bucket hi {hi} overshoots by {}",
                hi - v
            );
        }
    }

    #[test]
    fn quantiles_match_a_sorted_oracle() {
        let h = HdrHistogram::new();
        let mut samples: Vec<u64> = (0..2000u64).map(|i| (i * i * 7 + 13) % 100_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let got = snap.quantile(q).unwrap();
            assert!(got >= truth, "q={q}: {got} < {truth}");
            assert!(
                got as f64 <= truth as f64 * (1.0 + RELATIVE_ERROR) + 1.0,
                "q={q}: {got} overshoots {truth}"
            );
        }
        assert_eq!(snap.quantile(1.0), Some(*samples.last().unwrap()));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = HdrHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert!(s.mean().is_nan());
        assert_eq!(s.min, u64::MAX);
    }

    #[test]
    fn merge_equals_recording_together() {
        let (a, b, both) = (HdrHistogram::new(), HdrHistogram::new(), HdrHistogram::new());
        for v in 0..500u64 {
            let x = v * 37 % 4096;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // commutativity
        assert_eq!(merged, b.snapshot().merge(&a.snapshot()));
    }

    #[test]
    fn since_subtracts_buckets() {
        let h = HdrHistogram::new();
        h.record(5);
        h.record(5000);
        let earlier = h.snapshot();
        h.record(5);
        h.record(77);
        let delta = h.snapshot().since(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(
            delta.counts,
            vec![(bucket_index(5) as u32, 1), (bucket_index(77) as u32, 1)]
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = HdrHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.counts.iter().map(|&(_, c)| c).sum::<u64>(), 80_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 79_999);
    }

    #[test]
    fn reset_clears_everything() {
        let h = HdrHistogram::new();
        h.record(9);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert!(s.counts.is_empty());
        assert_eq!(s.max, 0);
    }
}
