//! A hand-rolled JSON value tree, serializer, and minimal parser.
//!
//! The workspace is std-only (no serde), so experiment artifacts are built
//! from this small [`JsonValue`] enum. Serialization escapes everything
//! RFC 8259 requires; the parser exists so tests and the `artifact_check`
//! binary can validate emitted artifacts without external tooling.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats serialize as `null` (JSON has no
    /// NaN/Infinity), matching what the experiment tables print as `-`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> JsonValue
    where
        I: IntoIterator<Item = (K, JsonValue)>,
        K: Into<String>,
    {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(values: I) -> JsonValue {
        JsonValue::Array(values.into_iter().collect())
    }

    /// Looks up a key on an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<&String> for JsonValue {
    fn from(s: &String) -> Self {
        JsonValue::String(s.clone())
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

/// Writes `s` as a JSON string literal, escaping per RFC 8259.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        // integers (hop counts, RSS bytes, counters) print without ".0"
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

impl JsonValue {
    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl JsonValue {
    /// Parses one JSON document; see [`parse`].
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        parse(input)
    }
}

/// Parses one JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // surrogate pairs
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // re-decode the UTF-8 sequence starting one byte back
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        parse(&v.to_string()).expect("serialized JSON parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Number(0.0),
            JsonValue::Number(-17.0),
            JsonValue::Number(2.5),
            JsonValue::Number(1e-9),
            JsonValue::String("plain".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(JsonValue::Number(42.0).to_string(), "42");
        assert_eq!(JsonValue::Number(-3.0).to_string(), "-3");
    }

    #[test]
    fn hostile_strings_escape_and_roundtrip() {
        for s in [
            "quote\" backslash\\ newline\n tab\t",
            "control\u{01}\u{1f}",
            "unicode π ∈ (2,3) — β=2.5",
            "emoji 🛰 and \r\n CRLF",
            "",
        ] {
            let v = JsonValue::String(s.to_string());
            let serialized = v.to_string();
            assert!(!serialized.contains('\n'), "JSONL-safe: {serialized:?}");
            assert_eq!(roundtrip(&v), v, "for {s:?}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = JsonValue::object([
            ("name", JsonValue::from("E1  success")),
            (
                "rows",
                JsonValue::array([
                    JsonValue::array([JsonValue::from("0.71"), JsonValue::Number(1024.0)]),
                    JsonValue::Null,
                ]),
            ),
            ("ok", JsonValue::from(true)),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let v = JsonValue::object([("zeta", JsonValue::Null), ("alpha", JsonValue::Null)]);
        let s = v.to_string();
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{} trailing"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parser_accepts_unicode_escapes() {
        // raw UTF-8 passes through; \u escapes decode, including a
        // surrogate pair
        let v = parse("\"é😀 \\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, JsonValue::String("é😀 é 😀".to_string()));
    }
}
