//! Best-effort peak resident set size, with an explicit provenance tag.
//!
//! Artifacts used to emit a bare number (or silently nothing) for peak
//! RSS, which made a `0`/`null` on an unsupported platform look like a
//! measurement. [`peak_rss`] pairs the reading with an [`RssSource`] so
//! the artifact `meta` can say *where* the number came from — or that
//! none was available.

/// Where a peak-RSS reading came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RssSource {
    /// `VmHWM` from `/proc/self/status` (Linux).
    Procfs,
    /// `getrusage(2)` — reserved for platforms without procfs; the
    /// std-only workspace cannot call libc today, so this variant is
    /// never produced, but the artifact schema admits it.
    Rusage,
    /// No supported source on this platform; the reading is absent.
    Unavailable,
}

impl RssSource {
    /// Stable lowercase label used in artifact `meta` records.
    pub fn as_str(self) -> &'static str {
        match self {
            RssSource::Procfs => "procfs",
            RssSource::Rusage => "rusage",
            RssSource::Unavailable => "unavailable",
        }
    }
}

/// Peak RSS in bytes plus the source it was read from.
///
/// Returns `(None, RssSource::Unavailable)` when no source works — never
/// a fabricated zero.
pub fn peak_rss() -> (Option<u64>, RssSource) {
    #[cfg(target_os = "linux")]
    {
        if let Some(bytes) = std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| parse_vmhwm(&s))
        {
            return (Some(bytes), RssSource::Procfs);
        }
    }
    (None, RssSource::Unavailable)
}

/// Peak RSS of this process in bytes, if the platform exposes it.
///
/// On Linux this reads `VmHWM` from `/proc/self/status`; elsewhere it
/// returns `None` (artifacts then record `null`). See [`peak_rss`] for
/// the variant that also reports the source.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss().0
}

/// Parses the `VmHWM:` line of `/proc/self/status` (kB units) into bytes.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vmhwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm_line() {
        let status = "Name:\ttest\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vmhwm(status), Some(2048 * 1024));
        assert_eq!(parse_vmhwm("Name: x\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_plausible_peak() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        // a running test binary surely holds more than 1 MiB and less than 1 TiB
        assert!(peak > 1 << 20, "{peak}");
        assert!(peak < 1 << 40, "{peak}");
    }

    #[test]
    fn source_matches_reading() {
        let (bytes, source) = peak_rss();
        match source {
            RssSource::Procfs | RssSource::Rusage => assert!(bytes.is_some()),
            RssSource::Unavailable => assert!(bytes.is_none()),
        }
        assert!(["procfs", "rusage", "unavailable"].contains(&source.as_str()));
    }
}
