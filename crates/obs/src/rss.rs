//! Best-effort peak resident set size.

/// Peak RSS of this process in bytes, if the platform exposes it.
///
/// On Linux this reads `VmHWM` from `/proc/self/status`; elsewhere it
/// returns `None` (artifacts then record `null`).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vmhwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line of `/proc/self/status` (kB units) into bytes.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vmhwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm_line() {
        let status = "Name:\ttest\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vmhwm(status), Some(2048 * 1024));
        assert_eq!(parse_vmhwm("Name: x\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_plausible_peak() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        // a running test binary surely holds more than 1 MiB and less than 1 TiB
        assert!(peak > 1 << 20, "{peak}");
        assert!(peak < 1 << 40, "{peak}");
    }
}
