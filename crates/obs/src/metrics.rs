//! A global, thread-sharded metrics registry: atomic counters and
//! fixed-bucket log₂ histograms.
//!
//! Hot-path cost is one relaxed `fetch_add` on a shard picked by a cached
//! per-thread index, so concurrent workers (e.g. the bench harness's
//! `parallel_map` threads) do not contend on one cache line. Shards are
//! merged only at snapshot time. Handles are interned: looking a metric up
//! by name takes a lock once, after which the returned handle is a plain
//! `Arc` that can be cached and cloned freely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hdr::{HdrHistogram, HdrSnapshot};

/// Number of independent shards per metric. Power of two; enough to spread
/// the worker threads of a typical machine.
const SHARDS: usize = 16;

/// Pads an atomic to its own cache line so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

pub(crate) fn shard_index() -> usize {
    // a cheap, stable per-thread shard: hash the thread id once and cache it
    thread_local! {
        static SHARD: usize = {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
        };
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing sharded counter.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: Default::default(),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Number of histogram buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) == i - 1`, i.e. bucket 0 is exactly `{0}`, bucket 1 is
/// `{1}`, bucket 2 is `{2, 3}`, bucket 3 is `{4..8}`, and so on up to
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂-scale histogram of `u64` samples.
///
/// Recording is two relaxed `fetch_add`s (bucket + sum) plus one for the
/// count; all state is atomic so histograms are freely shared.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Index of the bucket holding `value`: 0 for 0, else `ilog2(value) + 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a `Duration` in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; exactness across concurrent writers is not needed at
    /// report time).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket_lo, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    hdr: BTreeMap<&'static str, Arc<HdrHistogram>>,
}

/// The process-global metrics registry.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registry")
    }
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
    })
}

impl Registry {
    /// The process-global registry.
    pub fn global() -> &'static Registry {
        global()
    }

    /// Interns and returns the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .entry(name)
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Interns and returns the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Interns and returns the HDR histogram named `name` (log-linear
    /// buckets, ~1% relative-error quantiles; see [`crate::hdr`]).
    pub fn hdr(&self, name: &'static str) -> Arc<HdrHistogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .hdr
            .entry(name)
            .or_insert_with(|| Arc::new(HdrHistogram::new()))
            .clone()
    }

    /// Merged values of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.value()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            hdr: inner
                .hdr
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid). Intended for
    /// tests and for per-suite deltas in the experiment battery.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        for c in inner.counters.values() {
            c.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        for h in inner.hdr.values() {
            h.reset();
        }
    }
}

/// Shorthand for `Registry::global().counter(name)`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for `Registry::global().histogram(name)`.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Shorthand for `Registry::global().hdr(name)`.
pub fn hdr(name: &'static str) -> Arc<HdrHistogram> {
    global().hdr(name)
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// HDR histogram snapshots by name.
    pub hdr: BTreeMap<String, HdrSnapshot>,
}

impl MetricsSnapshot {
    /// The change from `earlier` to `self`, dropping metrics that did not
    /// move. Histogram deltas subtract bucket-wise (`max` is carried from
    /// `self`, as maxima do not subtract).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let delta = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (delta > 0).then(|| (k.clone(), delta))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let base = earlier.histograms.get(k);
                let delta = HistogramSnapshot {
                    buckets: std::array::from_fn(|i| {
                        h.buckets[i]
                            .saturating_sub(base.map_or(0, |b| b.buckets[i]))
                    }),
                    count: h.count.saturating_sub(base.map_or(0, |b| b.count)),
                    sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                    max: h.max,
                };
                (delta.count > 0).then(|| (k.clone(), delta))
            })
            .collect();
        let hdr = self
            .hdr
            .iter()
            .filter_map(|(k, h)| {
                let delta = match earlier.hdr.get(k) {
                    Some(base) => h.since(base),
                    None => h.clone(),
                };
                (!delta.is_empty()).then(|| (k.clone(), delta))
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            hdr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // bucket 0 = {0}, bucket 1 = {1}, bucket i = [2^(i-1), 2^i)
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for i in 1..=63 {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(2 * lo - 1), i, "upper edge of bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(2 * lo), i + 1, "first value past bucket {i}");
            }
            assert_eq!(bucket_lo(i), lo);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_accumulates_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1); // {0}
        assert_eq!(s.buckets[1], 2); // {1, 1}
        assert_eq!(s.buckets[2], 2); // {2, 3}
        assert_eq!(s.buckets[3], 1); // {4}
        assert_eq!(s.buckets[10], 1); // 1000 in [512, 1024)
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert_eq!(s.nonzero_buckets().len(), 6);
    }

    #[test]
    fn counter_merges_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn registry_interns_and_diffs() {
        let registry = Registry::global();
        let a = registry.counter("test.registry.a");
        let a2 = registry.counter("test.registry.a");
        a.add(3);
        assert_eq!(a2.value(), 3, "same handle through interning");

        let before = registry.snapshot();
        a.add(2);
        registry.histogram("test.registry.h").record(9);
        let delta = registry.snapshot().since(&before);
        assert_eq!(delta.counters.get("test.registry.a"), Some(&2));
        let h = delta.histograms.get("test.registry.h").expect("histogram moved");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
        // unrelated metrics that did not move are dropped from the delta
        assert!(!delta.counters.keys().any(|k| k == "test.registry.unrelated"));
    }

    #[test]
    fn snapshot_mean() {
        let h = Histogram::new();
        assert!(h.snapshot().mean().is_nan());
        h.record(2);
        h.record(4);
        assert_eq!(h.snapshot().mean(), 3.0);
    }
}
