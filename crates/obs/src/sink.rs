//! The JSONL artifact sink.
//!
//! Experiment binaries write one JSON object per line to a file chosen by
//! `--json <path>` (or `--json=<path>`) on the command line, falling back
//! to the `SMALLWORLD_JSON` environment variable. Every record carries a
//! `"type"` discriminant; the schema is documented in `EXPERIMENTS.md` and
//! validated by the `artifact_check` binary.
//!
//! Record types emitted by the stock binaries:
//!
//! * `meta` — one per run: binary name and scale.
//! * `table` — one per results table: suite, title, headers, rows.
//! * `suite` — one per experiment suite: wall-clock seconds plus the
//!   metrics and span deltas attributable to the suite.
//! * `summary` — one per run, last: total wall-clock, peak RSS, and the
//!   final merged registry snapshot.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use smallworld_analysis::Table;

use crate::hdr::HdrSnapshot;
use crate::json::JsonValue;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanStats;

/// Resolves a `--<flag> <path>` / `--<flag>=<path>` pair from an argument
/// list, falling back to the `env` variable. The args are scanned, not
/// consumed, so binaries with their own parsers just need to *tolerate*
/// the flag.
pub fn resolve_flag<I, S>(args: I, flag: &str, env: &str) -> Option<PathBuf>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let arg = arg.as_ref();
        if arg == long {
            if let Some(path) = args.next() {
                return Some(PathBuf::from(path.as_ref()));
            }
        } else if let Some(path) = arg.strip_prefix(&prefixed) {
            return Some(PathBuf::from(path));
        }
    }
    std::env::var_os(env).map(PathBuf::from)
}

/// Resolves the artifact path from an argument list and the environment:
/// `--json <path>` / `--json=<path>` wins, then `SMALLWORLD_JSON`.
///
/// Pass `std::env::args().skip(1)`.
pub fn resolve_target<I, S>(args: I) -> Option<PathBuf>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    resolve_flag(args, "json", "SMALLWORLD_JSON")
}

/// Resolves the folded-stack profile path: `--profile <path>` /
/// `--profile=<path>`, then `SMALLWORLD_PROFILE`.
pub fn resolve_profile_target<I, S>(args: I) -> Option<PathBuf>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    resolve_flag(args, "profile", "SMALLWORLD_PROFILE")
}

/// A line-buffered JSONL writer; one [`JsonValue`] per line.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the artifact file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            path,
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens the sink selected by the invocation (see [`resolve_target`]);
    /// `Ok(None)` when no artifact was requested.
    pub fn from_invocation() -> io::Result<Option<JsonlSink>> {
        match resolve_target(std::env::args().skip(1)) {
            Some(path) => JsonlSink::create(path).map(Some),
            None => Ok(None),
        }
    }

    /// Where the artifact is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single line and flushes it.
    pub fn write(&self, record: &JsonValue) -> io::Result<()> {
        let mut file = self.file.lock().expect("jsonl sink poisoned");
        writeln!(file, "{record}")?;
        file.flush()
    }
}

/// A `meta` record: emitted once, first, by each binary.
///
/// `threads` records the worker count the run was configured with
/// (`SMALLWORLD_THREADS` or the detected parallelism), so artifacts from
/// differently-parallel runs can be told apart when diffing result tables.
pub fn meta_record(binary: &str, scale: &str, threads: u64) -> JsonValue {
    JsonValue::object([
        ("type", JsonValue::from("meta")),
        ("binary", JsonValue::from(binary)),
        ("scale", JsonValue::from(scale)),
        ("threads", JsonValue::from(threads)),
        (
            "rss_source",
            JsonValue::from(crate::rss::peak_rss().1.as_str()),
        ),
    ])
}

/// A `table` record for one results table of `suite`.
pub fn table_record(suite: &str, table: &Table) -> JsonValue {
    JsonValue::object([
        ("type", JsonValue::from("table")),
        ("suite", JsonValue::from(suite)),
        (
            "title",
            table.title_text().map_or(JsonValue::Null, JsonValue::from),
        ),
        (
            "headers",
            JsonValue::array(table.headers().iter().map(JsonValue::from)),
        ),
        (
            "rows",
            JsonValue::array(
                table
                    .rows()
                    .iter()
                    .map(|row| JsonValue::array(row.iter().map(JsonValue::from))),
            ),
        ),
    ])
}

/// A `suite` record: per-suite wall-clock plus metric/span deltas.
pub fn suite_record(
    suite: &str,
    wall_secs: f64,
    metrics: &MetricsSnapshot,
    spans: &BTreeMap<String, SpanStats>,
) -> JsonValue {
    JsonValue::object([
        ("type", JsonValue::from("suite")),
        ("suite", JsonValue::from(suite)),
        ("wall_secs", JsonValue::from(wall_secs)),
        ("metrics", metrics_to_json(metrics)),
        ("spans", spans_to_json(spans)),
    ])
}

/// A `summary` record: emitted once, last, by each binary.
pub fn summary_record(
    wall_secs: f64,
    peak_rss_bytes: Option<u64>,
    metrics: &MetricsSnapshot,
) -> JsonValue {
    JsonValue::object([
        ("type", JsonValue::from("summary")),
        ("wall_secs", JsonValue::from(wall_secs)),
        (
            "peak_rss_bytes",
            peak_rss_bytes.map_or(JsonValue::Null, JsonValue::from),
        ),
        ("metrics", metrics_to_json(metrics)),
    ])
}

/// Renders a metrics snapshot as
/// `{"counters": {...}, "histograms": {...}, "hdr": {...}}`.
///
/// Histograms keep only their non-empty buckets, as `[bucket_lo, count]`
/// pairs, next to `count`/`sum`/`max`/`mean`. HDR histograms additionally
/// carry a `quantiles` object (see [`hdr_to_json`]); the `hdr` key is
/// omitted entirely when no HDR metric was recorded, keeping pre-v2
/// artifacts byte-identical.
pub fn metrics_to_json(snapshot: &MetricsSnapshot) -> JsonValue {
    let counters = JsonValue::Object(
        snapshot
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), JsonValue::from(v)))
            .collect(),
    );
    let histograms = JsonValue::Object(
        snapshot
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = JsonValue::array(h.nonzero_buckets().into_iter().map(|(lo, c)| {
                    JsonValue::array([JsonValue::from(lo), JsonValue::from(c)])
                }));
                let value = JsonValue::object([
                    ("count", JsonValue::from(h.count)),
                    ("sum", JsonValue::from(h.sum)),
                    ("max", JsonValue::from(h.max)),
                    ("mean", JsonValue::from(h.mean())),
                    ("buckets", buckets),
                ]);
                (k.clone(), value)
            })
            .collect(),
    );
    let mut fields = vec![("counters", counters), ("histograms", histograms)];
    if !snapshot.hdr.is_empty() {
        let hdr = JsonValue::Object(
            snapshot
                .hdr
                .iter()
                .map(|(k, h)| (k.clone(), hdr_to_json(h)))
                .collect(),
        );
        fields.push(("hdr", hdr));
    }
    JsonValue::object(fields)
}

/// Renders one HDR snapshot: `count`/`sum`/`min`/`max`/`mean`, a
/// `quantiles` object with the standard report quantiles
/// (p50/p90/p99/p999), and the sparse `buckets` as `[index, count]`
/// pairs (indices into the fixed log-linear layout, see [`crate::hdr`]).
pub fn hdr_to_json(snapshot: &HdrSnapshot) -> JsonValue {
    let quantiles = JsonValue::object(crate::hdr::REPORT_QUANTILES.iter().map(|&(name, q)| {
        (
            name,
            snapshot.quantile(q).map_or(JsonValue::Null, JsonValue::from),
        )
    }));
    let buckets = JsonValue::array(
        snapshot
            .counts
            .iter()
            .map(|&(i, c)| JsonValue::array([JsonValue::from(u64::from(i)), JsonValue::from(c)])),
    );
    JsonValue::object([
        ("count", JsonValue::from(snapshot.count)),
        ("sum", JsonValue::from(snapshot.sum)),
        (
            "min",
            if snapshot.is_empty() {
                JsonValue::Null
            } else {
                JsonValue::from(snapshot.min)
            },
        ),
        (
            "max",
            if snapshot.is_empty() {
                JsonValue::Null
            } else {
                JsonValue::from(snapshot.max)
            },
        ),
        ("mean", JsonValue::from(snapshot.mean())),
        ("quantiles", quantiles),
        ("buckets", buckets),
    ])
}

/// A `report` record: the standard run-report — hierarchical phase tree,
/// final metric snapshot (with HDR quantiles), and peak RSS with its
/// source. Emitted once per run, just before `summary`.
pub fn report_record(
    metrics: &MetricsSnapshot,
    spans: &BTreeMap<String, SpanStats>,
) -> JsonValue {
    let (rss, source) = crate::rss::peak_rss();
    JsonValue::object([
        ("type", JsonValue::from("report")),
        ("phases", span_tree_to_json(&crate::span::tree(spans))),
        ("metrics", metrics_to_json(metrics)),
        (
            "peak_rss_bytes",
            rss.map_or(JsonValue::Null, JsonValue::from),
        ),
        ("rss_source", JsonValue::from(source.as_str())),
    ])
}

/// Renders a span forest (see [`crate::span::tree`]) as nested
/// `{name, path, count, total_ns, self_ns, children}` objects.
pub fn span_tree_to_json(nodes: &[crate::span::SpanNode]) -> JsonValue {
    JsonValue::array(nodes.iter().map(|n| {
        JsonValue::object([
            ("name", JsonValue::from(n.name.as_str())),
            ("path", JsonValue::from(n.path.as_str())),
            ("count", JsonValue::from(n.stats.count)),
            ("total_ns", JsonValue::from(n.stats.total_ns)),
            ("self_ns", JsonValue::from(n.stats.self_ns)),
            ("children", span_tree_to_json(&n.children)),
        ])
    }))
}

/// Renders a span table as `{path: {count, total_ns, self_ns}}`.
pub fn spans_to_json(spans: &BTreeMap<String, SpanStats>) -> JsonValue {
    JsonValue::Object(
        spans
            .iter()
            .map(|(path, s)| {
                let value = JsonValue::object([
                    ("count", JsonValue::from(s.count)),
                    ("total_ns", JsonValue::from(s.total_ns)),
                    ("self_ns", JsonValue::from(s.self_ns)),
                ]);
                (path.clone(), value)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    #[test]
    fn resolve_prefers_flag_over_env() {
        assert_eq!(
            resolve_target(["--quick", "--json", "/tmp/a.json"]),
            Some(PathBuf::from("/tmp/a.json"))
        );
        assert_eq!(
            resolve_target(["--json=/tmp/b.json"]),
            Some(PathBuf::from("/tmp/b.json"))
        );
        // trailing --json with no value falls through to the env lookup
        // (and tests cannot safely set env vars, so just check no panic)
        let _ = resolve_target(["--json"]);
    }

    #[test]
    fn sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("smallworld-obs-sink-test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let mut table = Table::new(["n", "val\"ue"]).title("T1");
        table.row(["1", "a\nb"]);
        sink.write(&meta_record("test", "quick", 4)).unwrap();
        sink.write(&table_record("S", &table)).unwrap();
        sink.write(&summary_record(1.5, Some(1024), &MetricsSnapshot::default()))
            .unwrap();
        drop(sink);

        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            JsonValue::parse(line).expect("every line parses");
        }
        let table_line = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(table_line.get("type").and_then(JsonValue::as_str), Some("table"));
        assert_eq!(
            table_line
                .get("rows")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
    }

    #[test]
    fn metrics_json_keeps_nonzero_buckets_only() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("c".into(), 7);
        let mut h = HistogramSnapshot {
            buckets: [0; crate::metrics::HISTOGRAM_BUCKETS],
            count: 2,
            sum: 5,
            max: 4,
        };
        h.buckets[1] = 1;
        h.buckets[3] = 1;
        snapshot.histograms.insert("h".into(), h);
        let v = metrics_to_json(&snapshot);
        assert_eq!(
            v.get("counters").and_then(|c| c.get("c")).and_then(JsonValue::as_f64),
            Some(7.0)
        );
        let buckets = v
            .get("histograms")
            .and_then(|h| h.get("h"))
            .and_then(|h| h.get("buckets"))
            .and_then(JsonValue::as_array)
            .expect("buckets array");
        assert_eq!(buckets.len(), 2);
    }
}
