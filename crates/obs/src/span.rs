//! Scoped spans with monotonic timing and hierarchical aggregation.
//!
//! `Span::enter("sample_girg")` returns a guard; when it drops, the
//! elapsed wall-clock time is folded into a global table keyed by the
//! span *path* — the `/`-joined chain of the spans enclosing it on this
//! thread, e.g. `run_all/exp_success/sample_girg`. Aggregation is a
//! count + total + self-time per path, cheap enough to leave enabled.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

thread_local! {
    /// The enclosing span names on this thread.
    static STACK: RefCell<Vec<(&'static str, Duration)>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds, including child spans.
    pub total_ns: u64,
    /// Wall-clock nanoseconds not attributed to child spans.
    pub self_ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<String, SpanStats>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A scoped timing guard. See the module docs.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Opens a span; closes (and records) when the guard drops.
    pub fn enter(name: &'static str) -> Span {
        STACK.with(|stack| stack.borrow_mut().push((name, Duration::ZERO)));
        Span {
            name,
            started: Instant::now(),
        }
    }

    /// The span's own name (the last path segment).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        let (path, child_time) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // pop self (defensively scan in case of leaked guards)
            let mut child_time = Duration::ZERO;
            while let Some((name, children)) = stack.pop() {
                if name == self.name {
                    child_time = children;
                    break;
                }
            }
            // charge our elapsed time to the parent's child-time tally
            if let Some((_, parent_children)) = stack.last_mut() {
                *parent_children += elapsed;
            }
            let mut path = String::new();
            for (name, _) in stack.iter() {
                path.push_str(name);
                path.push('/');
            }
            path.push_str(self.name);
            (path, child_time)
        });
        let mut table = table().lock().expect("span table poisoned");
        let entry = table.entry(path).or_default();
        entry.count += 1;
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let self_ns =
            u64::try_from(elapsed.saturating_sub(child_time).as_nanos()).unwrap_or(u64::MAX);
        entry.total_ns += ns;
        entry.self_ns += self_ns;
    }
}

/// A point-in-time copy of the span table.
pub fn snapshot() -> BTreeMap<String, SpanStats> {
    table().lock().expect("span table poisoned").clone()
}

/// Clears the span table (used between experiment suites and in tests).
pub fn reset() {
    table().lock().expect("span table poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span table is process-global; serialize the tests that reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_into_paths() {
        let _guard = lock();
        reset();
        {
            let _outer = Span::enter("outer-test");
            for _ in 0..3 {
                let _inner = Span::enter("inner-test");
                std::hint::black_box(());
            }
        }
        let snap = snapshot();
        assert_eq!(snap.get("outer-test").map(|s| s.count), Some(1));
        assert_eq!(snap.get("outer-test/inner-test").map(|s| s.count), Some(3));
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let _guard = lock();
        reset();
        {
            let _s = Span::enter("sleep-test");
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = snapshot();
        let stats = snap.get("sleep-test").expect("span recorded");
        assert!(stats.total_ns >= 4_000_000, "{stats:?}");
    }

    #[test]
    fn sibling_threads_do_not_share_stacks() {
        let _guard = lock();
        reset();
        let t = std::thread::spawn(|| {
            let _a = Span::enter("thread-a-test");
            std::hint::black_box(());
        });
        {
            let _b = Span::enter("thread-b-test");
            std::hint::black_box(());
        }
        t.join().unwrap();
        let snap = snapshot();
        assert!(snap.contains_key("thread-a-test"));
        assert!(snap.contains_key("thread-b-test"));
        assert!(!snap.keys().any(|k| k.contains("thread-b-test/thread-a-test")));
    }
}
