//! Scoped spans with monotonic timing and hierarchical aggregation.
//!
//! `Span::enter("sample_girg")` returns a guard; when it drops, the
//! elapsed wall-clock time is folded into a global table keyed by the
//! span *path* — the `/`-joined chain of the spans enclosing it on this
//! thread, e.g. `run_all/exp_success/sample_girg`. Aggregation is a
//! count + total + self-time per path, cheap enough to leave enabled.
//!
//! # Cross-thread propagation
//!
//! Span stacks are thread-local, so a span opened on a pool worker would
//! normally start a fresh root path and the per-phase tree would fall
//! apart under `SMALLWORLD_THREADS>1`. [`current_path`] captures the
//! calling thread's enclosing path and [`adopt_parent`] grafts it onto a
//! worker thread for a scope, so worker-side spans aggregate under the
//! same path they would have under sequential execution. The
//! `smallworld-par` pool does this automatically; the span *tree* is
//! therefore structurally identical across thread counts (timings vary,
//! paths and counts do not).
//!
//! Self-time accounting stays intra-thread: a parent's `self_ns` is not
//! reduced by children adopted onto other threads, because parallel
//! children overlap wall-clock time and the subtraction would be
//! meaningless (or negative).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

thread_local! {
    /// The enclosing span names on this thread.
    static STACK: RefCell<Vec<(&'static str, Duration)>> = const { RefCell::new(Vec::new()) };
    /// Path prefix adopted from another thread (empty = none). Includes a
    /// trailing `/` when non-empty so paths concatenate directly.
    static PREFIX: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Aggregated timing for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds, including child spans.
    pub total_ns: u64,
    /// Wall-clock nanoseconds not attributed to child spans.
    pub self_ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<String, SpanStats>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A scoped timing guard. See the module docs.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Opens a span; closes (and records) when the guard drops.
    pub fn enter(name: &'static str) -> Span {
        STACK.with(|stack| stack.borrow_mut().push((name, Duration::ZERO)));
        Span {
            name,
            started: Instant::now(),
        }
    }

    /// The span's own name (the last path segment).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        let (path, child_time) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // pop self (defensively scan in case of leaked guards)
            let mut child_time = Duration::ZERO;
            while let Some((name, children)) = stack.pop() {
                if name == self.name {
                    child_time = children;
                    break;
                }
            }
            // charge our elapsed time to the parent's child-time tally
            if let Some((_, parent_children)) = stack.last_mut() {
                *parent_children += elapsed;
            }
            let mut path = PREFIX.with(|p| p.borrow().clone());
            for (name, _) in stack.iter() {
                path.push_str(name);
                path.push('/');
            }
            path.push_str(self.name);
            (path, child_time)
        });
        let mut table = table().lock().expect("span table poisoned");
        let entry = table.entry(path).or_default();
        entry.count += 1;
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let self_ns =
            u64::try_from(elapsed.saturating_sub(child_time).as_nanos()).unwrap_or(u64::MAX);
        entry.total_ns += ns;
        entry.self_ns += self_ns;
    }
}

/// A point-in-time copy of the span table.
pub fn snapshot() -> BTreeMap<String, SpanStats> {
    table().lock().expect("span table poisoned").clone()
}

/// Clears the span table (used between experiment suites and in tests).
pub fn reset() {
    table().lock().expect("span table poisoned").clear();
}

/// The calling thread's current span path (adopted prefix + open spans),
/// e.g. `"exp_traffic/load_sweep"`. Empty when no span is open.
///
/// Capture this *before* handing work to another thread, then wrap the
/// worker-side execution in [`adopt_parent`].
pub fn current_path() -> String {
    let mut path = PREFIX.with(|p| p.borrow().clone());
    STACK.with(|stack| {
        for (name, _) in stack.borrow().iter() {
            path.push_str(name);
            path.push('/');
        }
    });
    path.pop(); // drop the trailing '/'
    path
}

/// Grafts `path` (from [`current_path`] on another thread) onto this
/// thread as the span-path prefix for the lifetime of the returned guard.
/// Spans opened under the guard aggregate as children of `path`. Guards
/// nest; each restores the previous prefix on drop.
pub fn adopt_parent(path: &str) -> ParentGuard {
    let previous = PREFIX.with(|p| {
        let mut p = p.borrow_mut();
        let previous = std::mem::take(&mut *p);
        if !path.is_empty() {
            p.push_str(path);
            p.push('/');
        }
        previous
    });
    ParentGuard { previous }
}

/// Restores the thread's previous span-path prefix on drop. See
/// [`adopt_parent`].
#[derive(Debug)]
pub struct ParentGuard {
    previous: String,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        PREFIX.with(|p| *p.borrow_mut() = std::mem::take(&mut self.previous));
    }
}

/// One node of the hierarchical span tree built by [`tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Last path segment (the span name).
    pub name: String,
    /// Full `/`-joined path.
    pub path: String,
    /// Aggregated stats for this exact path (all zero for paths that only
    /// exist as ancestors of recorded spans).
    pub stats: SpanStats,
    /// Child nodes, sorted by name.
    pub children: Vec<SpanNode>,
}

/// Builds the span forest from a flat path-keyed snapshot. Roots and
/// children are sorted by name, so the tree is deterministic for a given
/// snapshot — and structurally thread-count-invariant, since span paths
/// are (see the module docs).
pub fn tree(snapshot: &BTreeMap<String, SpanStats>) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, &stats) in snapshot {
        let mut level = &mut roots;
        let mut prefix = String::new();
        let mut segments = path.split('/').peekable();
        while let Some(segment) = segments.next() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(segment);
            // BTreeMap iteration is sorted, so each level stays sorted when
            // we append or reuse the last node; binary search keeps this
            // robust even for interior nodes materialized out of order.
            let pos = match level.binary_search_by(|n| n.name.as_str().cmp(segment)) {
                Ok(pos) => pos,
                Err(pos) => {
                    level.insert(
                        pos,
                        SpanNode {
                            name: segment.to_string(),
                            path: prefix.clone(),
                            stats: SpanStats::default(),
                            children: Vec::new(),
                        },
                    );
                    pos
                }
            };
            if segments.peek().is_none() {
                level[pos].stats = stats;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

/// Renders the snapshot in folded-stack format — one `a;b;c self_ns`
/// line per path, sorted — ready for `flamegraph.pl` / speedscope.
/// Self-time is in nanoseconds; paths with zero self-time are kept so the
/// stack structure stays complete.
pub fn to_folded(snapshot: &BTreeMap<String, SpanStats>) -> String {
    let mut out = String::new();
    for (path, stats) in snapshot {
        out.push_str(&path.replace('/', ";"));
        out.push(' ');
        out.push_str(&stats.self_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span table is process-global; serialize the tests that reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_into_paths() {
        let _guard = lock();
        reset();
        {
            let _outer = Span::enter("outer-test");
            for _ in 0..3 {
                let _inner = Span::enter("inner-test");
                std::hint::black_box(());
            }
        }
        let snap = snapshot();
        assert_eq!(snap.get("outer-test").map(|s| s.count), Some(1));
        assert_eq!(snap.get("outer-test/inner-test").map(|s| s.count), Some(3));
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let _guard = lock();
        reset();
        {
            let _s = Span::enter("sleep-test");
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = snapshot();
        let stats = snap.get("sleep-test").expect("span recorded");
        assert!(stats.total_ns >= 4_000_000, "{stats:?}");
    }

    #[test]
    fn adopted_prefix_extends_worker_paths() {
        let _guard = lock();
        reset();
        let path = {
            let _outer = Span::enter("adopt-outer");
            current_path()
        };
        assert_eq!(path, "adopt-outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ctx = adopt_parent("adopt-outer");
                let _inner = Span::enter("adopt-inner");
                std::hint::black_box(());
            });
        });
        let snap = snapshot();
        assert!(snap.contains_key("adopt-outer/adopt-inner"), "{snap:?}");
        // guard dropped: the worker thread is gone, but on this thread a
        // fresh adopt/drop must restore the empty prefix
        {
            let _ctx = adopt_parent("x/y");
            assert_eq!(current_path(), "x/y");
        }
        assert_eq!(current_path(), "");
    }

    #[test]
    fn tree_builds_sorted_hierarchy() {
        let mut snap = BTreeMap::new();
        let s = |count| SpanStats {
            count,
            total_ns: count,
            self_ns: count,
        };
        snap.insert("root/b".to_string(), s(2));
        snap.insert("root/a/leaf".to_string(), s(3));
        snap.insert("root".to_string(), s(1));
        let forest = tree(&snap);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.stats.count, 1);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(root.children[0].stats, SpanStats::default()); // interior only
        assert_eq!(root.children[0].children[0].path, "root/a/leaf");
        assert_eq!(root.children[1].name, "b");
        assert_eq!(root.children[1].stats.count, 2);
    }

    #[test]
    fn folded_output_is_sorted_and_semicolon_joined() {
        let mut snap = BTreeMap::new();
        snap.insert(
            "a/b".to_string(),
            SpanStats {
                count: 1,
                total_ns: 10,
                self_ns: 7,
            },
        );
        snap.insert(
            "a".to_string(),
            SpanStats {
                count: 1,
                total_ns: 10,
                self_ns: 3,
            },
        );
        assert_eq!(to_folded(&snap), "a 3\na;b 7\n");
    }

    #[test]
    fn sibling_threads_do_not_share_stacks() {
        let _guard = lock();
        reset();
        let t = std::thread::spawn(|| {
            let _a = Span::enter("thread-a-test");
            std::hint::black_box(());
        });
        {
            let _b = Span::enter("thread-b-test");
            std::hint::black_box(());
        }
        t.join().unwrap();
        let snap = snapshot();
        assert!(snap.contains_key("thread-a-test"));
        assert!(snap.contains_key("thread-b-test"));
        assert!(!snap.keys().any(|k| k.contains("thread-b-test/thread-a-test")));
    }
}
