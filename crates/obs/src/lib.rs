//! Std-only observability for the smallworld workspace.
//!
//! Everything here is built on the standard library alone — the workspace
//! has no crates.io access, so there is no tracing/metrics/serde stack to
//! lean on. Four pieces:
//!
//! * [`metrics`] — a global, thread-sharded registry of atomic counters
//!   and fixed-bucket log₂ histograms, merged only at report time.
//! * [`hdr`] — log-linear (HDR-style) histograms with ~1% relative-error
//!   quantiles (p50/p90/p99/p999), sharded recording, and a
//!   deterministic merge; registered through the same [`metrics`]
//!   registry.
//! * [`span`] — scoped [`Span`] guards with monotonic timing,
//!   hierarchical (path-keyed) aggregation, cross-thread context
//!   adoption ([`span::adopt_parent`]), a tree view ([`span::tree`]),
//!   and folded-stack output ([`span::to_folded`]).
//! * [`sink`] + [`json`] — a hand-rolled JSON tree and the JSONL artifact
//!   writer the experiment binaries use for machine-readable results
//!   (tables, per-suite timings, metric snapshots, run reports, peak RSS
//!   from [`rss::peak_rss`]).
//!
//! # Examples
//!
//! ```
//! use smallworld_obs::{metrics, Span};
//!
//! {
//!     let _span = Span::enter("doc-example");
//!     metrics::counter("doc.example").add(3);
//! }
//! assert!(metrics::Registry::global().snapshot().counters["doc.example"] >= 3);
//! assert!(smallworld_obs::span::snapshot().contains_key("doc-example"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hdr;
pub mod json;
pub mod metrics;
pub mod rss;
pub mod sink;
pub mod span;

pub use hdr::{HdrHistogram, HdrSnapshot};
pub use json::JsonValue;
pub use metrics::{Counter, Histogram, MetricsSnapshot, Registry};
pub use rss::{peak_rss, peak_rss_bytes, RssSource};
pub use sink::JsonlSink;
pub use span::{Span, SpanNode, SpanStats};
