//! Deterministic parallel execution engine (std-only).
//!
//! Every parallel computation in the workspace follows one discipline:
//!
//! 1. Work is decomposed into an **ordered task list** whose shape depends
//!    only on the input, never on the number of worker threads.
//! 2. Each task derives its own RNG seed from a master seed via
//!    [`split_seed`] (SplitMix64), so no task observes another task's
//!    random stream.
//! 3. Results are collected **in task order**, regardless of which worker
//!    ran which task.
//!
//! Together these make every parallel result bitwise-identical across any
//! thread count — including a single thread — so `SMALLWORLD_THREADS=1`
//! reproduces exactly what a 64-core run produces, only slower.
//!
//! The pool uses `std::thread::scope`, so tasks may borrow from the caller's
//! stack. Threads are spawned per [`Pool::map`] call; spawning is a few
//! microseconds per thread, negligible against the multi-millisecond tasks
//! (cell-pair sampling, Monte-Carlo routing batches) this engine exists for.
//!
//! Thread count resolution: [`Pool::from_env`] honors the
//! `SMALLWORLD_THREADS` environment variable and falls back to
//! `std::thread::available_parallelism`.
//!
//! Pool workers adopt the caller's observability span path
//! (`smallworld_obs::span`), so spans opened inside tasks aggregate under
//! the same hierarchical path regardless of thread count — the per-phase
//! timing tree is structurally identical from `SMALLWORLD_THREADS=1` to
//! 64.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64: derives independent per-task seeds from a master seed.
///
/// # Examples
///
/// ```
/// use smallworld_par::split_seed;
///
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, split_seed(42, 0)); // deterministic
/// ```
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parses a `SMALLWORLD_THREADS` value: a positive integer, or `None` for
/// anything unusable (empty, zero, junk) — callers fall back to the
/// hardware parallelism.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Number of worker threads the engine will use: `SMALLWORLD_THREADS` when
/// set to a positive integer, otherwise `available_parallelism` (or 1 when
/// even that is unknown).
pub fn thread_count() -> usize {
    parse_threads(std::env::var("SMALLWORLD_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Splits `0..len` into at most `parts` contiguous ranges of near-equal
/// length (the first `len % parts` ranges are one longer). Empty ranges are
/// never returned.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A scoped-thread work pool with a fixed thread count.
///
/// The pool is a *policy* object — it holds no threads between calls; each
/// [`Pool::map`] spins up scoped workers that share an atomic task cursor
/// (natural work stealing for uneven task sizes) and tear down before the
/// call returns. Results always come back in task order.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool sized by `SMALLWORLD_THREADS` / `available_parallelism`.
    pub fn from_env() -> Pool {
        Pool::with_threads(thread_count())
    }

    /// A pool with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `tasks` jobs, each receiving its index, and collects the
    /// results in task order. With one thread (or one task) everything runs
    /// inline on the caller's thread — no spawn, no synchronization — so
    /// `SMALLWORLD_THREADS=1` is a true sequential execution.
    pub fn map<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.threads.min(tasks);
        if threads <= 1 {
            return (0..tasks).map(f).collect();
        }
        let mut results: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        let span_path = smallworld_obs::span::current_path();
        let span_path = &span_path;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                handles.push(scope.spawn(|| {
                    let _span_ctx = smallworld_obs::span::adopt_parent(span_path);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                }));
            }
            for handle in handles {
                for (i, value) in handle.join().expect("pool worker panicked") {
                    results[i] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all tasks completed"))
            .collect()
    }

    /// Spawns exactly [`Pool::threads`] long-lived scoped workers, each
    /// running `f(worker_index)` once, and joins them all. Unlike
    /// [`Pool::map`] there is no task cursor: this is the primitive for
    /// engines that keep workers alive across many synchronization
    /// rounds (e.g. barrier-phased simulation shards), where respawning
    /// per round would dominate the round cost. Workers adopt the
    /// caller's span path like every other pool entry point; with one
    /// thread, `f(0)` runs inline on the caller's thread.
    ///
    /// Determinism is the caller's contract: `f` must make its observable
    /// results depend only on `worker_index` and shared input, never on
    /// scheduling (the workspace discipline).
    pub fn run_workers<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads <= 1 {
            f(0);
            return;
        }
        let f = &f;
        let span_path = smallworld_obs::span::current_path();
        let span_path = &span_path;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for w in 0..self.threads {
                handles.push(scope.spawn(move || {
                    let _span_ctx = smallworld_obs::span::adopt_parent(span_path);
                    f(w);
                }));
            }
            for handle in handles {
                handle.join().expect("pool worker panicked");
            }
        });
    }

    /// Like [`Pool::map`], but each task also receives a seed derived from
    /// `master_seed` via [`split_seed`]. The seed for task `i` depends only
    /// on `(master_seed, i)`, never on the thread count, so results are
    /// reproducible across any pool size.
    pub fn map_seeded<T, F>(&self, tasks: usize, master_seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.map(tasks, |i| f(i, split_seed(master_seed, i as u64)))
    }

    /// Consumes a list of owned work items and maps each through `f`,
    /// returning results in item order. Useful when tasks carry non-`Sync`
    /// payloads (e.g. disjoint `&mut` sub-slices produced by
    /// `split_at_mut`).
    pub fn map_items<S, T, F>(&self, items: Vec<S>, f: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(usize, S) -> T + Sync,
    {
        let tasks = items.len();
        let threads = self.threads.min(tasks);
        if threads <= 1 {
            return items.into_iter().enumerate().map(|(i, s)| f(i, s)).collect();
        }
        let slots: Vec<Mutex<Option<S>>> = items.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let mut results: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        let slots = &slots;
        let span_path = smallworld_obs::span::current_path();
        let span_path = &span_path;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                handles.push(scope.spawn(|| {
                    let _span_ctx = smallworld_obs::span::adopt_parent(span_path);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("each item is taken exactly once");
                        out.push((i, f(i, item)));
                    }
                    out
                }));
            }
            for handle in handles {
                for (i, value) in handle.join().expect("pool worker panicked") {
                    results[i] = Some(value);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all tasks completed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic_and_spread() {
        let seeds: Vec<u64> = (0..100).map(|i| split_seed(7, i)).collect();
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 100);
        assert_eq!(seeds[3], split_seed(7, 3));
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 16 ")), Some(16));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn map_orders_results_across_pool_sizes() {
        for threads in [1, 2, 3, 8, 64] {
            let out = Pool::with_threads(threads).map(50, |i| i * i);
            assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_zero_and_one_tasks() {
        let pool = Pool::with_threads(8);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_seeded_is_thread_count_invariant() {
        let sequential = Pool::with_threads(1).map_seeded(40, 99, |i, s| (i, s));
        for threads in [2, 5, 16] {
            let parallel = Pool::with_threads(threads).map_seeded(40, 99, |i, s| (i, s));
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        for (i, &(idx, seed)) in sequential.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(seed, split_seed(99, i as u64));
        }
    }

    #[test]
    fn map_items_moves_each_item_once() {
        let items: Vec<Vec<usize>> = (0..20).map(|i| vec![i; 3]).collect();
        let out = Pool::with_threads(4).map_items(items, |i, v| {
            assert_eq!(v, vec![i; 3]);
            v.into_iter().sum::<usize>()
        });
        assert_eq!(out, (0..20).map(|i| 3 * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_items_handles_mut_slices() {
        let mut data: Vec<u64> = (0..100).collect();
        let mut rest: &mut [u64] = &mut data;
        let mut parts: Vec<&mut [u64]> = Vec::new();
        while !rest.is_empty() {
            let take = rest.len().min(17);
            let (head, tail) = rest.split_at_mut(take);
            parts.push(head);
            rest = tail;
        }
        Pool::with_threads(4).map_items(parts, |_, part| {
            for x in part.iter_mut() {
                *x *= 2;
            }
        });
        assert_eq!(data, (0..100).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, parts) in [(0usize, 4usize), (1, 4), (10, 3), (10, 10), (10, 25), (7, 1)] {
            let ranges = chunk_ranges(len, parts);
            let mut covered = 0;
            for (k, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "len={len} parts={parts}");
                assert!(!r.is_empty());
                if k > 0 {
                    assert!(r.len() <= ranges[k - 1].len());
                }
                covered = r.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn run_workers_runs_each_index_once() {
        for threads in [1usize, 2, 4, 7] {
            let ran: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            Pool::with_threads(threads).run_workers(|w| {
                ran[w].fetch_add(1, Ordering::SeqCst);
            });
            for (w, r) in ran.iter().enumerate() {
                assert_eq!(r.load(Ordering::SeqCst), 1, "threads={threads} worker={w}");
            }
        }
    }

    #[test]
    fn run_workers_synchronizes_through_barriers() {
        // the intended usage: workers coordinate rounds via a barrier
        let threads = 4;
        let barrier = std::sync::Barrier::new(threads);
        let round_sum = AtomicUsize::new(0);
        Pool::with_threads(threads).run_workers(|w| {
            for _round in 0..10 {
                round_sum.fetch_add(w + 1, Ordering::SeqCst);
                barrier.wait();
            }
        });
        assert_eq!(round_sum.load(Ordering::SeqCst), 10 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // tasks with wildly different costs still all run and order correctly
        let out = Pool::with_threads(4).map(32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
