//! Span-tree structural invariance across pool sizes.
//!
//! The span *tree* (set of paths, per-path counts) produced by a run must
//! not depend on the thread count — only timings may differ. This is the
//! contract that makes `report` phase trees diffable across artifacts
//! from differently-parallel runs. Pool sizes 1/2/4 stand in for
//! `SMALLWORLD_THREADS=1/2/4` (the env var only picks the default size).

use std::collections::BTreeMap;
use std::sync::Mutex;

use smallworld_obs::span;
use smallworld_par::Pool;

/// The span table is process-global; serialize the tests that reset it.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A nested workload: an outer phase span, a parallel map whose tasks
/// open their own spans (with an inner hot-loop span), and a sequential
/// tail phase.
fn workload(pool: &Pool) -> Vec<u64> {
    let _run = span::Span::enter("run");
    let partials = {
        let _phase = span::Span::enter("parallel_phase");
        pool.map(12, |i| {
            let _task = span::Span::enter("task");
            let mut acc = 0u64;
            {
                let _hot = span::Span::enter("hot_loop");
                for k in 0..100 {
                    acc = acc.wrapping_add((i as u64).wrapping_mul(k));
                }
            }
            acc
        })
    };
    let _tail = span::Span::enter("tail_phase");
    partials
}

/// Structure = paths plus their counts, timings stripped.
type Structure = Vec<(String, u64)>;

fn structure(snapshot: &BTreeMap<String, span::SpanStats>) -> Structure {
    snapshot.iter().map(|(k, s)| (k.clone(), s.count)).collect()
}

#[test]
fn span_tree_is_thread_count_invariant() {
    let _guard = lock();
    let mut seen: Option<(Structure, Vec<u64>)> = None;
    for threads in [1usize, 2, 4] {
        span::reset();
        let results = workload(&Pool::with_threads(threads));
        let snap = span::snapshot();
        let got = (structure(&snap), results);
        // every task span lands under the enclosing phases, on any pool size
        assert_eq!(
            snap.get("run/parallel_phase/task").map(|s| s.count),
            Some(12),
            "threads={threads}"
        );
        assert_eq!(
            snap.get("run/parallel_phase/task/hot_loop").map(|s| s.count),
            Some(12),
            "threads={threads}"
        );
        assert!(snap.contains_key("run/tail_phase"), "threads={threads}");
        // no stray root-level task paths escaped the adoption
        assert!(
            !snap.keys().any(|k| k.starts_with("task")),
            "threads={threads}: {snap:?}"
        );
        match &seen {
            None => seen = Some(got),
            Some(first) => assert_eq!(first, &got, "threads={threads}"),
        }
    }
}

#[test]
fn folded_output_matches_structure() {
    let _guard = lock();
    span::reset();
    workload(&Pool::with_threads(3));
    let folded = span::to_folded(&span::snapshot());
    assert!(folded.contains("run;parallel_phase;task;hot_loop "));
    let tree = span::tree(&span::snapshot());
    assert_eq!(tree.len(), 1);
    assert_eq!(tree[0].name, "run");
    assert_eq!(tree[0].children.len(), 2); // parallel_phase, tail_phase
}
