//! Sampling throughput: naive vs cell-based GIRG sampling, plus the other
//! generators. The headline: the cell sampler scales linearly while the
//! naive sampler is quadratic, with a crossover around a few thousand
//! vertices (which is where `SamplerAlgorithm::Auto` switches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_models::chung_lu::ChungLu;
use smallworld_models::girg::{GirgBuilder, SamplerAlgorithm};
use smallworld_models::{HrgBuilder, KleinbergLattice};

fn bench_girg_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("girg_sampling");
    group.sample_size(10);
    for &n in &[1_000u64, 4_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                GirgBuilder::<2>::new(n)
                    .lambda(0.02)
                    .algorithm(SamplerAlgorithm::Naive)
                    .sample(&mut rng)
                    .expect("valid")
            });
        });
    }
    for &n in &[1_000u64, 4_000, 16_000, 64_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("cells", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                GirgBuilder::<2>::new(n)
                    .lambda(0.02)
                    .algorithm(SamplerAlgorithm::CellBased)
                    .sample(&mut rng)
                    .expect("valid")
            });
        });
    }
    group.finish();
}

fn bench_other_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_sampling_16k");
    group.sample_size(10);
    group.bench_function("hyperbolic_threshold", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| HrgBuilder::new(16_000).sample(&mut rng).expect("valid"));
    });
    group.bench_function("hyperbolic_temperature", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            HrgBuilder::new(16_000)
                .temperature(0.5)
                .sample(&mut rng)
                .expect("valid")
        });
    });
    group.bench_function("kleinberg_lattice_128", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| KleinbergLattice::sample(128, 2.0, 1, &mut rng).expect("valid"));
    });
    group.bench_function("chung_lu", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| ChungLu::power_law(16_000, 2.5, 1.0, &mut rng).expect("valid"));
    });
    group.finish();
}

criterion_group!(benches, bench_girg_samplers, bench_other_models);
criterion_main!(benches);
