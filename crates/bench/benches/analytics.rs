//! Graph-analytics engine microbenchmarks on a 100k-vertex GIRG: the
//! direction-optimizing single-source sweep against the plain serial BFS,
//! and batched pair-distance resolution against per-pair bidirectional
//! queries on both workload shapes the adaptive dispatcher distinguishes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_graph::analytics::{pair_distances_with, BfsScratch, MsBfsScratch};
use smallworld_graph::{bfs_distance, bfs_distances, Components, Graph, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};

fn girg() -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(1);
    GirgBuilder::<2>::new(100_000)
        .beta(2.5)
        .lambda(0.02)
        .sample(&mut rng)
        .expect("valid")
}

/// `count` random distinct-endpoint pairs from the giant component.
fn giant_pairs(graph: &Graph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let comps = Components::compute(graph);
    let giant: Vec<NodeId> = graph.nodes().filter(|&v| comps.in_largest(v)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let s = giant[rng.gen_range(0..giant.len())];
        let t = giant[rng.gen_range(0..giant.len())];
        if s != t {
            out.push((s, t));
        }
    }
    out
}

fn bench_analytics(c: &mut Criterion) {
    let girg = girg();
    let graph = girg.graph();
    let random = giant_pairs(graph, 1_024, 7);
    // 64 sources × 64 targets: the shared-sweep shape MS-BFS amortizes
    let matrix: Vec<(NodeId, NodeId)> = {
        let endpoints = giant_pairs(graph, 64, 8);
        endpoints
            .iter()
            .flat_map(|&(s, _)| endpoints.iter().map(move |&(_, t)| (s, t)))
            .collect()
    };

    let mut group = c.benchmark_group("analytics_100k");
    group.sample_size(10);
    // the public bfs_distances routes through the direction-optimizing
    // hybrid + thread-local scratch; the explicit-scratch call isolates
    // the sweep itself from the thread-local access
    group.bench_function("sssp_hybrid", |b| {
        b.iter(|| bfs_distances(graph, NodeId::new(0)));
    });
    group.bench_function("sssp_hybrid_scratch", |b| {
        let mut scratch = BfsScratch::new();
        b.iter(|| {
            smallworld_graph::analytics::bfs_distances_into(graph, NodeId::new(0), &mut scratch)
        });
    });
    group.bench_function("pairs_1k_bidir_per_pair", |b| {
        b.iter(|| {
            random
                .iter()
                .map(|&(s, t)| bfs_distance(graph, s, t))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("pairs_1k_batched_random", |b| {
        let mut scratch = MsBfsScratch::new();
        b.iter(|| pair_distances_with(graph, &random, &mut scratch));
    });
    group.bench_function("pairs_4k_batched_matrix", |b| {
        let mut scratch = MsBfsScratch::new();
        b.iter(|| pair_distances_with(graph, &matrix, &mut scratch));
    });
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
