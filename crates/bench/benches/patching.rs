//! Patching overhead: the three rescue protocols against plain greedy on a
//! sparse GIRG where dead ends are common.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_core::{
    GirgObjective, GravityPressureRouter, GreedyRouter, HistoryRouter, PhiDfsRouter, Router,
};
use smallworld_graph::NodeId;
use smallworld_models::girg::{Girg, GirgBuilder};

fn sparse_girg() -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(1);
    GirgBuilder::<2>::new(30_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.01)
        .sample(&mut rng)
        .expect("valid")
}

fn bench_patching(c: &mut Criterion) {
    let girg = sparse_girg();
    let obj = GirgObjective::new(&girg);
    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<(NodeId, NodeId)> = (0..256)
        .map(|_| (girg.random_vertex(&mut rng), girg.random_vertex(&mut rng)))
        .collect();

    let mut group = c.benchmark_group("patching_30k_sparse");
    group.bench_function("greedy", |b| {
        let router = GreedyRouter::new();
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            router.route_quiet(girg.graph(), &obj, s, t)
        });
    });
    group.bench_function("phi_dfs", |b| {
        let router = PhiDfsRouter::new();
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            router.route_quiet(girg.graph(), &obj, s, t)
        });
    });
    group.bench_function("history", |b| {
        let router = HistoryRouter::new();
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            router.route_quiet(girg.graph(), &obj, s, t)
        });
    });
    group.bench_function("gravity_pressure", |b| {
        let router = GravityPressureRouter::with_max_steps(100_000);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            router.route_quiet(girg.graph(), &obj, s, t)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_patching);
criterion_main!(benches);
