//! Per-query routing latency on a pre-sampled 100k-vertex GIRG: greedy
//! routing under the three objectives — through the naive score path, the
//! prepared kernel, and the edge-packed routing index — and the BFS used
//! for stretch.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_core::{
    DistanceObjective, GirgObjective, GreedyRouter, IndexedGirgObjective, NaiveObjective,
    RelaxedObjective, Router, RoutingIndex,
};
use smallworld_graph::{bfs_distance, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};

fn sample() -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(1);
    GirgBuilder::<2>::new(100_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.02)
        .sample(&mut rng)
        .expect("valid")
}

fn pairs(girg: &Girg<2>, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(2);
    (0..count)
        .map(|_| (girg.random_vertex(&mut rng), girg.random_vertex(&mut rng)))
        .collect()
}

fn bench_routing(c: &mut Criterion) {
    let girg = sample();
    let queries = pairs(&girg, 512);
    let mut group = c.benchmark_group("routing_100k");

    group.bench_function("greedy_phi_naive", |b| {
        let obj = NaiveObjective(GirgObjective::new(&girg));
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t)
        });
    });

    group.bench_function("greedy_phi", |b| {
        let obj = GirgObjective::new(&girg);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t)
        });
    });

    group.bench_function("greedy_phi_indexed", |b| {
        let index = RoutingIndex::for_girg(&girg);
        let obj = IndexedGirgObjective::new(GirgObjective::new(&girg), &index);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t)
        });
    });

    group.bench_function("greedy_phi_indexed_morton", |b| {
        let perm = girg.morton_permutation();
        let relabeled = girg.relabel(&perm);
        let index = RoutingIndex::for_girg(&relabeled);
        let obj = IndexedGirgObjective::new(GirgObjective::new(&relabeled), &index);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            let (s, t) = (perm.forward(s), perm.forward(t));
            GreedyRouter::new().route_quiet(relabeled.graph(), &obj, s, t)
        });
    });

    group.bench_function("greedy_distance_only", |b| {
        let obj = DistanceObjective::for_girg(&girg);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t)
        });
    });

    group.bench_function("greedy_relaxed", |b| {
        let obj = RelaxedObjective::new(GirgObjective::new(&girg), 0.25, 9);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t)
        });
    });

    group.bench_function("bidirectional_bfs", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = queries[i % queries.len()];
            i += 1;
            bfs_distance(girg.graph(), s, t)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
