//! Graph substrate throughput: CSR construction, components, BFS,
//! clustering estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_graph::{bfs_distances, stats, Components, Graph, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};

fn girg() -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(1);
    GirgBuilder::<2>::new(100_000)
        .beta(2.5)
        .lambda(0.02)
        .sample(&mut rng)
        .expect("valid")
}

fn bench_graph_ops(c: &mut Criterion) {
    let girg = girg();
    let graph = girg.graph();
    let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let n = graph.node_count();

    let mut group = c.benchmark_group("graph_ops_100k");
    group.sample_size(10);
    group.bench_function("csr_build", |b| {
        b.iter(|| Graph::from_edges(n, edges.iter().copied()).expect("valid"));
    });
    group.bench_function("components", |b| {
        b.iter(|| Components::compute(graph));
    });
    group.bench_function("bfs_full", |b| {
        b.iter(|| bfs_distances(graph, NodeId::new(0)));
    });
    group.bench_function("sampled_clustering_500", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| stats::sampled_average_clustering(graph, 500, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
