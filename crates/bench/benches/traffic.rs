//! Event-loop throughput of the `smallworld-net` simulator: 10k concurrent
//! packets over a pre-sampled 20k-vertex GIRG, fault-free and faulty,
//! serial and sharded.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_core::{GirgObjective, Objective};
use smallworld_graph::NodeId;
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_net::{
    FaultPlan, FaultSpec, GreedyPolicy, Injection, SimBuilder, SimConfig, SliceWorkload,
    UniformPairs,
};

const PACKETS: usize = 10_000;

fn sample() -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(1);
    GirgBuilder::<2>::new(20_000)
        .beta(2.5)
        .alpha(2.0)
        .lambda(0.02)
        .sample(&mut rng)
        .expect("valid")
}

fn injections(girg: &Girg<2>, load: f64) -> Vec<Injection> {
    let eligible: Vec<NodeId> = girg.graph().nodes().collect();
    UniformPairs::new(PACKETS, load, 2).injections(&eligible)
}

fn bench_traffic(c: &mut Criterion) {
    let girg = sample();
    let obj = GirgObjective::new(&girg);
    let score = |v: NodeId, t: NodeId| obj.score(v, t);
    let mut group = c.benchmark_group("traffic_10k_packets");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PACKETS as u64));

    group.bench_function("greedy_fault_free", |b| {
        let batch = injections(&girg, 8.0);
        let sim = SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
            .shards(1)
            .build()
            .expect("valid");
        b.iter(|| sim.run(SliceWorkload::new(&batch)));
    });

    group.bench_function("greedy_fault_free_4_shards", |b| {
        let batch = injections(&girg, 8.0);
        let sim = SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
            .shards(4)
            .build()
            .expect("valid");
        b.iter(|| sim.run(SliceWorkload::new(&batch)));
    });

    group.bench_function("greedy_fault_free_summary", |b| {
        let batch = injections(&girg, 8.0);
        let sim = SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
            .shards(1)
            .build()
            .expect("valid");
        b.iter(|| sim.run_summary(SliceWorkload::new(&batch)));
    });

    group.bench_function("greedy_bounded_queues", |b| {
        let batch = injections(&girg, 64.0);
        let sim = SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
            .config(SimConfig {
                queue_capacity: Some(8),
                ..SimConfig::default()
            })
            .shards(1)
            .build()
            .expect("valid");
        b.iter(|| sim.run(SliceWorkload::new(&batch)));
    });

    group.bench_function("greedy_faulty", |b| {
        let batch = injections(&girg, 8.0);
        let spec = FaultSpec {
            loss_rate: 0.05,
            node_fail_rate: 0.1,
            fail_window: 100,
            repair_after: Some(50),
            ..FaultSpec::none()
        };
        let sim = SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
            .faults(FaultPlan::new(spec, 3))
            .config(SimConfig {
                max_retries: 3,
                ..SimConfig::default()
            })
            .shards(1)
            .build()
            .expect("valid");
        b.iter(|| sim.run(SliceWorkload::new(&batch)));
    });

    group.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
