//! Ablations of the design choices called out in DESIGN.md:
//!
//! * **type-II jump sampling**: the finite-α kernel pays for geometric-jump
//!   sampling of long-range pairs; the threshold kernel has none — the gap
//!   between them prices that machinery,
//! * **weight layering**: sampling a constant-weight population (one layer)
//!   vs a power law (many layers) isolates the layer bookkeeping cost,
//! * **bidirectional vs unidirectional BFS**: the stretch measurements rely
//!   on the bidirectional variant being much cheaper,
//! * **Morton primitives**: the per-vertex cost floor of the cell sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_geometry::{morton, Point};
use smallworld_graph::{bfs_distance, bfs_distances, NodeId};
use smallworld_models::girg::{GirgBuilder, SamplerAlgorithm};
use smallworld_models::kernel::{Alpha, GirgKernel};

fn bench_kernel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kernel_16k");
    group.sample_size(10);
    // comparable average degree via matched marginal constants
    group.bench_function("finite_alpha_jump_sampling", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            GirgBuilder::<2>::new(16_000)
                .alpha(2.0)
                .lambda(0.02)
                .algorithm(SamplerAlgorithm::CellBased)
                .sample(&mut rng)
                .expect("valid")
        });
    });
    group.bench_function("threshold_no_jumps", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            GirgBuilder::<2>::new(16_000)
                .alpha(f64::INFINITY)
                .lambda(0.28)
                .algorithm(SamplerAlgorithm::CellBased)
                .sample(&mut rng)
                .expect("valid")
        });
    });
    group.finish();
}

fn bench_layering_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_layers_16k");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let positions: Vec<Point<2>> = (0..16_000).map(|_| Point::random(&mut rng)).collect();
    let flat_weights = vec![1.0f64; 16_000];
    let kernel = GirgKernel::new(Alpha::Finite(2.0), 0.3, 1.0, 16_000.0, 2).expect("valid");
    group.bench_function("single_layer_constant_weights", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            smallworld_models::girg::sample_edges(
                &positions,
                &flat_weights,
                &kernel,
                SamplerAlgorithm::CellBased,
                &mut rng,
            )
        });
    });
    let pl = smallworld_models::PowerLaw::new(2.5, 1.0).expect("valid");
    let heavy_weights: Vec<f64> = (0..16_000).map(|_| pl.sample(&mut rng)).collect();
    group.bench_function("many_layers_power_law", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            smallworld_models::girg::sample_edges(
                &positions,
                &heavy_weights,
                &kernel,
                SamplerAlgorithm::CellBased,
                &mut rng,
            )
        });
    });
    group.finish();
}

fn bench_bfs_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let girg = GirgBuilder::<2>::new(100_000)
        .lambda(0.02)
        .sample(&mut rng)
        .expect("valid");
    let pairs: Vec<(NodeId, NodeId)> = (0..64)
        .map(|_| (girg.random_vertex(&mut rng), girg.random_vertex(&mut rng)))
        .collect();
    let mut group = c.benchmark_group("ablation_bfs_100k");
    group.sample_size(10);
    group.bench_function("bidirectional_pair_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            bfs_distance(girg.graph(), s, t)
        });
    });
    group.bench_function("unidirectional_full_sweep", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, _) = pairs[i % pairs.len()];
            i += 1;
            bfs_distances(girg.graph(), s)
        });
    });
    group.finish();
}

fn bench_morton(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_morton");
    group.bench_function("encode_decode_2d", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(97) & 0x7FFF;
            let code = morton::encode([x, x ^ 0x2AAA], 15);
            morton::decode::<2>(code, 15)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_ablation,
    bench_layering_ablation,
    bench_bfs_ablation,
    bench_morton
);
criterion_main!(benches);
