//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment of `DESIGN.md`'s index (E1–E14) lives in
//! [`experiments`] as a `run(scale)` function returning the tables it
//! prints; the `exp_*` binaries are thin wrappers, and `run_all` executes
//! the entire battery. [`harness`] provides deterministic seeding and a
//! `std::thread`-based parallel Monte-Carlo runner (no extra dependencies).
//!
//! Scale is controlled by the `SMALLWORLD_SCALE` environment variable
//! (`quick` or `full`) or a `--quick`/`--full` CLI flag; `quick` keeps every
//! experiment under a few seconds for CI, `full` reproduces the numbers
//! recorded in `EXPERIMENTS.md`.
//!
//! Passing `--json <path>` (or setting `SMALLWORLD_JSON`) to `run_all` or
//! any `exp_*` binary additionally writes a machine-readable JSONL
//! artifact — tables, per-suite timings, routing metrics, spans, and peak
//! RSS — via [`artifact::Artifact`].

pub mod artifact;
pub mod experiments;
pub mod harness;
pub mod mapped;

pub use artifact::{push_record, Artifact};
pub use harness::{parallel_map, split_seed, RoutingAggregate, Scale, TrialBatch, TrialOutcome};
pub use mapped::{mapped_trials, MappedTrials};
