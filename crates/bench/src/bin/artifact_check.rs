//! Validates a JSONL experiment artifact produced by `run_all` or any
//! `exp_*` binary.
//!
//! Usage: `cargo run -p smallworld-bench --bin artifact_check -- <path>`
//!
//! Checks that every line parses as JSON, that the record sequence is
//! well-formed (a `meta` record first, at least one `table` and one
//! `suite` record, exactly one `summary` record last), and that the
//! summary carries total wall-clock, peak RSS, and a metrics snapshot
//! with routing counters. Exits non-zero with a message on the first
//! violation, so CI can gate on it.
//!
//! Artifacts whose `meta` record carries `rss_source` are **v2** and are
//! held to the stricter telemetry schema additionally: exactly one
//! `report` record (phase tree + HDR quantiles + RSS source) immediately
//! before the summary, well-formed `net.timeline` records (strictly
//! increasing sample times), and internally consistent HDR quantile
//! objects wherever a metrics snapshot carries them. Artifacts from
//! before the telemetry schema (e.g. committed `BENCH_*.json` baselines)
//! have no `rss_source` and skip only those v2 checks.

use std::process::ExitCode;

use smallworld_obs::JsonValue;

const RSS_SOURCES: [&str; 3] = ["procfs", "rusage", "unavailable"];

/// Validates every HDR entry in a metrics snapshot: quantiles must exist
/// and be monotone (p50 <= p90 <= p99 <= p999 <= max) whenever the
/// histogram is non-empty.
fn check_hdr_metrics(line: usize, metrics: &JsonValue) -> Result<(), String> {
    let Some(JsonValue::Object(hdr)) = metrics.get("hdr") else {
        return Ok(());
    };
    for (name, h) in hdr {
        let count = h
            .get("count")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {line}: hdr metric {name:?} missing \"count\""))?;
        let quantiles = h
            .get("quantiles")
            .ok_or_else(|| format!("line {line}: hdr metric {name:?} missing \"quantiles\""))?;
        if count == 0.0 {
            continue;
        }
        let q = |key: &str| {
            quantiles.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                format!("line {line}: hdr metric {name:?} quantile {key:?} not numeric")
            })
        };
        let (p50, p90, p99, p999) = (q("p50")?, q("p90")?, q("p99")?, q("p999")?);
        let max = h
            .get("max")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {line}: hdr metric {name:?} missing numeric \"max\""))?;
        if !(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max) {
            return Err(format!(
                "line {line}: hdr metric {name:?} quantiles not monotone: \
                 p50={p50} p90={p90} p99={p99} p999={p999} max={max}"
            ));
        }
    }
    Ok(())
}

fn check(contents: &str) -> Result<String, String> {
    let mut records = Vec::new();
    for (i, line) in contents.lines().enumerate() {
        let record = JsonValue::parse(line)
            .map_err(|e| format!("line {}: does not parse as JSON: {e:?}", i + 1))?;
        let kind = record
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: record has no \"type\" string", i + 1))?
            .to_string();
        records.push((kind, record));
    }
    if records.is_empty() {
        return Err("artifact is empty".into());
    }
    if records[0].0 != "meta" {
        return Err(format!(
            "first record must be \"meta\", found {:?}",
            records[0].0
        ));
    }
    let (last_kind, last) = &records[records.len() - 1];
    if last_kind != "summary" {
        return Err(format!("last record must be \"summary\", found {last_kind:?}"));
    }

    // v2 artifacts (telemetry schema) stamp the RSS source into meta;
    // older committed baselines predate it and skip the v2-only checks
    let is_v2 = records[0].1.get("rss_source").is_some();

    let mut tables = 0usize;
    let mut suites = 0usize;
    let mut summaries = 0usize;
    let mut reports = 0usize;
    let mut timelines = 0usize;
    let mut timeline_samples = 0usize;
    let mut shard_records = 0usize;
    for (i, (kind, record)) in records.iter().enumerate() {
        let line = i + 1;
        match kind.as_str() {
            "meta" => {
                for key in ["binary", "scale"] {
                    if record.get(key).and_then(JsonValue::as_str).is_none() {
                        return Err(format!("line {line}: meta record missing {key:?}"));
                    }
                }
                if record.get("threads").and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("line {line}: meta record missing numeric \"threads\""));
                }
                if is_v2 {
                    let source = record
                        .get("rss_source")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("");
                    if !RSS_SOURCES.contains(&source) {
                        return Err(format!(
                            "line {line}: meta rss_source {source:?} not one of {RSS_SOURCES:?}"
                        ));
                    }
                }
            }
            "table" => {
                tables += 1;
                for key in ["suite", "headers", "rows"] {
                    if record.get(key).is_none() {
                        return Err(format!("line {line}: table record missing {key:?}"));
                    }
                }
                let headers = record
                    .get("headers")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {line}: table headers is not an array"))?;
                let rows = record
                    .get("rows")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {line}: table rows is not an array"))?;
                for row in rows {
                    let row = row
                        .as_array()
                        .ok_or_else(|| format!("line {line}: table row is not an array"))?;
                    if row.len() != headers.len() {
                        return Err(format!(
                            "line {line}: row has {} cells but table has {} headers",
                            row.len(),
                            headers.len()
                        ));
                    }
                }
                // traffic tables report rates in named columns; every cell
                // under one of them must be a number in [0, 1]
                let suite = record
                    .get("suite")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                if suite.contains("traffic") {
                    const RATE_COLUMNS: [&str; 5] =
                        ["delivered", "overflow", "dead end", "lost", "survivor frac"];
                    for (c, header) in headers.iter().enumerate() {
                        let Some(h) = header.as_str() else { continue };
                        if !RATE_COLUMNS.contains(&h) {
                            continue;
                        }
                        for row in rows {
                            let cell = row.as_array().and_then(|r| r[c].as_str()).ok_or_else(
                                || format!("line {line}: rate cell in {h:?} is not a string"),
                            )?;
                            let value: f64 = cell.parse().map_err(|_| {
                                format!("line {line}: rate cell {cell:?} in {h:?} is not numeric")
                            })?;
                            if !(0.0..=1.0).contains(&value) {
                                return Err(format!(
                                    "line {line}: rate {value} in column {h:?} outside [0, 1]"
                                ));
                            }
                        }
                    }
                }
            }
            "suite" => {
                suites += 1;
                if record.get("suite").and_then(JsonValue::as_str).is_none() {
                    return Err(format!("line {line}: suite record missing \"suite\""));
                }
                if record.get("wall_secs").and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("line {line}: suite record missing \"wall_secs\""));
                }
                for key in ["metrics", "spans"] {
                    if record.get(key).is_none() {
                        return Err(format!("line {line}: suite record missing {key:?}"));
                    }
                }
                if let Some(metrics) = record.get("metrics") {
                    check_hdr_metrics(line, metrics)?;
                }
            }
            "net.timeline" => {
                timelines += 1;
                for key in ["suite", "label"] {
                    if record.get(key).and_then(JsonValue::as_str).is_none() {
                        return Err(format!("line {line}: timeline record missing {key:?}"));
                    }
                }
                if record.get("interval").and_then(JsonValue::as_f64).map(|v| v > 0.0)
                    != Some(true)
                {
                    return Err(format!("line {line}: timeline interval not positive"));
                }
                let headers = record
                    .get("headers")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {line}: timeline headers is not an array"))?;
                let samples = record
                    .get("samples")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {line}: timeline samples is not an array"))?;
                let mut last_at = f64::NEG_INFINITY;
                for sample in samples {
                    let sample = sample
                        .as_array()
                        .ok_or_else(|| format!("line {line}: timeline sample is not an array"))?;
                    if sample.len() != headers.len() {
                        return Err(format!(
                            "line {line}: timeline sample has {} fields but {} headers",
                            sample.len(),
                            headers.len()
                        ));
                    }
                    let mut numbers = sample.iter().map(JsonValue::as_f64);
                    let at = numbers
                        .next()
                        .flatten()
                        .ok_or_else(|| format!("line {line}: timeline \"at\" is not numeric"))?;
                    if numbers.any(|v| v.is_none()) {
                        return Err(format!("line {line}: timeline sample has a non-number"));
                    }
                    if at <= last_at {
                        return Err(format!(
                            "line {line}: timeline sample times not strictly increasing \
                             ({at} after {last_at})"
                        ));
                    }
                    last_at = at;
                }
                timeline_samples += samples.len();
            }
            "net.shards" => {
                shard_records += 1;
                if record.get("suite").and_then(JsonValue::as_str).is_none() {
                    return Err(format!("line {line}: net.shards record missing \"suite\""));
                }
                if record
                    .get("threads")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v >= 1.0)
                    != Some(true)
                {
                    return Err(format!(
                        "line {line}: net.shards record missing positive \"threads\""
                    ));
                }
                let shards = record
                    .get("shards")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("line {line}: net.shards \"shards\" is not an array"))?;
                if shards.is_empty() {
                    return Err(format!("line {line}: net.shards \"shards\" is empty"));
                }
                for s in shards {
                    if s.as_f64().map(|v| v >= 1.0) != Some(true) {
                        return Err(format!(
                            "line {line}: net.shards entry {s} is not a positive count"
                        ));
                    }
                }
            }
            "report" => {
                reports += 1;
                for key in ["phases", "metrics", "rss_source"] {
                    if record.get(key).is_none() {
                        return Err(format!("line {line}: report record missing {key:?}"));
                    }
                }
                let source = record
                    .get("rss_source")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                if !RSS_SOURCES.contains(&source) {
                    return Err(format!(
                        "line {line}: report rss_source {source:?} not one of {RSS_SOURCES:?}"
                    ));
                }
                if record.get("phases").and_then(JsonValue::as_array).is_none() {
                    return Err(format!("line {line}: report phases is not an array"));
                }
                if let Some(metrics) = record.get("metrics") {
                    check_hdr_metrics(line, metrics)?;
                }
            }
            "summary" => {
                summaries += 1;
                if let Some(metrics) = record.get("metrics") {
                    check_hdr_metrics(line, metrics)?;
                }
            }
            other => return Err(format!("line {line}: unknown record type {other:?}")),
        }
    }
    if is_v2 {
        if reports != 1 {
            return Err(format!(
                "v2 artifact must have exactly one report record, found {reports}"
            ));
        }
        if records[records.len() - 2].0 != "report" {
            return Err("v2 artifact's report record must immediately precede the summary".into());
        }
    }
    if tables == 0 {
        return Err("artifact has no table records".into());
    }
    if suites == 0 {
        return Err("artifact has no suite records".into());
    }
    if summaries != 1 {
        return Err(format!("expected exactly one summary record, found {summaries}"));
    }

    if last.get("wall_secs").and_then(JsonValue::as_f64).is_none() {
        return Err("summary record missing \"wall_secs\"".into());
    }
    // peak_rss_bytes may legitimately be null off-Linux, but the key must
    // exist; on Linux (the CI platform) it must be a positive number
    let rss = last
        .get("peak_rss_bytes")
        .ok_or("summary record missing \"peak_rss_bytes\"")?;
    if cfg!(target_os = "linux") && rss.as_f64().map(|v| v > 0.0) != Some(true) {
        return Err(format!("summary peak_rss_bytes not positive: {rss}"));
    }
    let counters = last
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .ok_or("summary record missing metrics.counters")?;
    // the full battery must have routed packets; a single-suite artifact
    // may legitimately do no routing (e.g. pure structure measurements)
    let is_battery = records[0]
        .1
        .get("binary")
        .and_then(JsonValue::as_str)
        .map(|b| b == "run_all")
        .unwrap_or(false);
    if is_battery {
        for key in ["route.started", "route.hops"] {
            if counters.get(key).and_then(JsonValue::as_f64).map(|v| v > 0.0) != Some(true) {
                return Err(format!("summary counter {key:?} missing or zero"));
            }
        }
    }
    // a routing-throughput artifact must carry the throughput table with
    // positive rates, and a speedup column anchored at 1.000 for the
    // naive baseline row
    let is_bench_routing = records[0]
        .1
        .get("binary")
        .and_then(JsonValue::as_str)
        .map(|b| b == "bench_routing")
        .unwrap_or(false);
    if is_bench_routing {
        let throughput = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| {
                            h.iter().any(|c| c.as_str() == Some("hops/sec"))
                                && h.iter().any(|c| c.as_str() == Some("variant"))
                        })
            })
            .ok_or("bench_routing artifact has no throughput table")?;
        let headers = throughput.1.get("headers").and_then(JsonValue::as_array);
        let rows = throughput.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("throughput table malformed".into());
        };
        let column = |name: &str| {
            headers
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("throughput table missing column {name:?}"))
        };
        let cell = |row: &JsonValue, c: usize| -> Result<String, String> {
            row.as_array()
                .and_then(|r| r.get(c))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| "throughput cell is not a string".to_string())
        };
        let numeric = |v: &str| -> Result<f64, String> {
            v.parse()
                .map_err(|_| format!("throughput cell {v:?} is not numeric"))
        };
        for column_name in ["hops/sec", "speedup"] {
            let c = column(column_name)?;
            for row in rows {
                let value = numeric(&cell(row, c)?)?;
                if value <= 0.0 {
                    return Err(format!("throughput {column_name:?} value {value} not positive"));
                }
            }
        }
        let full_scale = records[0].1.get("scale").and_then(JsonValue::as_str) == Some("full");
        // the SoA-index variant is the tentpole: it must be present, and
        // at full scale it must clear the 5x acceptance bound over naive
        let (variant_c, speedup_c) = (column("variant")?, column("speedup")?);
        let mut soa_speedup = None;
        for row in rows {
            if cell(row, variant_c)? == "kernel+soa-index" {
                soa_speedup = Some(numeric(&cell(row, speedup_c)?)?);
            }
        }
        let soa_speedup =
            soa_speedup.ok_or("throughput table has no \"kernel+soa-index\" row")?;
        if full_scale && soa_speedup < 5.0 {
            return Err(format!(
                "kernel+soa-index speedup {soa_speedup} below the 5x acceptance bound"
            ));
        }
        // the thread-scaling table pins the batched path: identical hops
        // at every thread count, a unit baseline row, and (at full scale,
        // for thread counts the host can actually run in parallel) >= 0.7
        // parallel efficiency
        let scaling = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("efficiency")))
            })
            .ok_or("bench_routing artifact has no thread-scaling table (no \"efficiency\" column)")?;
        let sheaders = scaling.1.get("headers").and_then(JsonValue::as_array);
        let srows = scaling.1.get("rows").and_then(JsonValue::as_array);
        let (Some(sheaders), Some(srows)) = (sheaders, srows) else {
            return Err("thread-scaling table malformed".into());
        };
        let scolumn = |name: &str| {
            sheaders
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("thread-scaling table missing column {name:?}"))
        };
        let scell = |row: &JsonValue, c: usize| -> Result<String, String> {
            row.as_array()
                .and_then(|r| r.get(c))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| "thread-scaling cell is not a string".to_string())
        };
        let threads_c = scolumn("threads")?;
        let hops_c = scolumn("hops")?;
        let sspeedup_c = scolumn("speedup")?;
        let efficiency_c = scolumn("efficiency")?;
        let cores_c = scolumn("host cores")?;
        if srows.is_empty() {
            return Err("thread-scaling table has no rows".into());
        }
        let reference_hops = scell(&srows[0], hops_c)?;
        for row in srows {
            let hops = scell(row, hops_c)?;
            if hops != reference_hops {
                return Err(format!(
                    "thread-scaling hops {hops} differ from {reference_hops}: the batched path is not thread-count invariant"
                ));
            }
            let threads: f64 = numeric(&scell(row, threads_c)?)?;
            let speedup: f64 = numeric(&scell(row, sspeedup_c)?)?;
            let cores: f64 = numeric(&scell(row, cores_c)?)?;
            if threads == 1.0 && speedup != 1.0 {
                return Err(format!(
                    "thread-scaling baseline row has speedup {speedup}, expected exactly 1.000"
                ));
            }
            if full_scale && threads > 1.0 && threads <= cores {
                let efficiency: f64 = numeric(&scell(row, efficiency_c)?)?;
                if efficiency < 0.7 {
                    return Err(format!(
                        "parallel efficiency {efficiency} at {threads} threads below the 0.7 acceptance bound"
                    ));
                }
            }
        }
        if counters
            .get("route.started")
            .and_then(JsonValue::as_f64)
            .map(|v| v > 0.0)
            != Some(true)
        {
            return Err("bench_routing artifact routed nothing (route.started is zero)".into());
        }
    }

    // an analytics-engine artifact must carry the pair-distance table with
    // positive throughput, and at full scale the batched matrix-workload
    // row must meet the >= 3x acceptance bound over the per-pair baseline
    let is_bench_analytics = records[0]
        .1
        .get("binary")
        .and_then(JsonValue::as_str)
        .map(|b| b == "bench_analytics")
        .unwrap_or(false);
    if is_bench_analytics {
        let throughput = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("pairs/sec")))
            })
            .ok_or("bench_analytics artifact has no pair-distance table")?;
        let headers = throughput.1.get("headers").and_then(JsonValue::as_array);
        let rows = throughput.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("pair-distance table malformed".into());
        };
        let column = |name: &str| {
            headers
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("pair-distance table missing column {name:?}"))
        };
        let (workload_c, variant_c) = (column("workload")?, column("variant")?);
        let (rate_c, speedup_c) = (column("pairs/sec")?, column("speedup")?);
        let cell = |row: &JsonValue, c: usize| -> Result<String, String> {
            row.as_array()
                .and_then(|r| r.get(c))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| "pair-distance cell is not a string".to_string())
        };
        let mut matrix_batched_speedup = None;
        for row in rows {
            for c in [rate_c, speedup_c] {
                let v = cell(row, c)?;
                let value: f64 = v
                    .parse()
                    .map_err(|_| format!("pair-distance cell {v:?} is not numeric"))?;
                if value <= 0.0 {
                    return Err(format!("pair-distance value {value} not positive"));
                }
            }
            if cell(row, workload_c)?.starts_with("matrix") && cell(row, variant_c)? == "batched" {
                matrix_batched_speedup = cell(row, speedup_c)?.parse::<f64>().ok();
            }
        }
        let speedup =
            matrix_batched_speedup.ok_or("pair-distance table has no batched matrix row")?;
        let full_scale = records[0].1.get("scale").and_then(JsonValue::as_str) == Some("full");
        if full_scale && speedup < 3.0 {
            return Err(format!(
                "batched matrix-workload speedup {speedup} below the 3x acceptance bound"
            ));
        }
    }

    // a store-benchmark artifact must carry the compression table; every
    // row must compress below the raw CSR footprint, and at full scale the
    // mmap reload must clear the 10x acceptance bound over resampling
    let is_bench_store = records[0]
        .1
        .get("binary")
        .and_then(JsonValue::as_str)
        .map(|b| b == "bench_store")
        .unwrap_or(false);
    if is_bench_store {
        let store_table = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("swg B/edge")))
            })
            .ok_or("bench_store artifact has no compression table")?;
        let headers = store_table.1.get("headers").and_then(JsonValue::as_array);
        let rows = store_table.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("store compression table malformed".into());
        };
        if rows.is_empty() {
            return Err("store compression table has no rows".into());
        }
        let column = |name: &str| {
            headers
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("store table missing column {name:?}"))
        };
        let (raw_c, swg_c) = (column("raw B/edge")?, column("swg B/edge")?);
        let speedup_c = column("speedup")?;
        let number = |row: &JsonValue, c: usize| -> Result<f64, String> {
            let cell = row
                .as_array()
                .and_then(|r| r.get(c))
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "store table cell is not a string".to_string())?;
            cell.parse()
                .map_err(|_| format!("store table cell {cell:?} is not numeric"))
        };
        let full_scale = records[0].1.get("scale").and_then(JsonValue::as_str) == Some("full");
        for row in rows {
            let (raw, swg) = (number(row, raw_c)?, number(row, swg_c)?);
            if !(swg > 0.0 && raw > 0.0 && swg < raw) {
                return Err(format!(
                    "store row compresses to {swg} B/edge, not below the raw {raw} B/edge"
                ));
            }
            let speedup = number(row, speedup_c)?;
            if speedup <= 0.0 {
                return Err(format!("store reload speedup {speedup} not positive"));
            }
            if full_scale && speedup < 10.0 {
                return Err(format!(
                    "store reload speedup {speedup} below the 10x acceptance bound"
                ));
            }
        }

        // the decode-free routing comparison must be present; every variant
        // must route, at full scale the mapped row must clear the
        // 0.5x-of-decoded throughput bound, and the sharded row must have
        // actually handed routes across shard boundaries
        let routing_table = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("vs decoded")))
            })
            .ok_or("bench_store artifact has no mapped-vs-decoded routing table")?;
        let headers = routing_table.1.get("headers").and_then(JsonValue::as_array);
        let rows = routing_table.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("mapped-vs-decoded routing table malformed".into());
        };
        let column = |name: &str| {
            headers
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("routing table missing column {name:?}"))
        };
        let (variant_c, frac_c) = (column("variant")?, column("vs decoded")?);
        let (success_c, handoffs_c) = (column("success rate")?, column("handoffs")?);
        let cell = |row: &JsonValue, c: usize| -> Result<String, String> {
            row.as_array()
                .and_then(|r| r.get(c))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| "routing table cell is not a string".to_string())
        };
        let number = |row: &JsonValue, c: usize| -> Result<f64, String> {
            let cell = cell(row, c)?;
            cell.parse()
                .map_err(|_| format!("routing table cell {cell:?} is not numeric"))
        };
        let (mut saw_mapped, mut saw_sharded) = (false, false);
        for row in rows {
            let variant = cell(row, variant_c)?;
            let frac = number(row, frac_c)?;
            if number(row, success_c)? <= 0.0 {
                return Err(format!("routing variant {variant:?} delivered nothing"));
            }
            if frac <= 0.0 {
                return Err(format!("routing variant {variant:?} throughput not positive"));
            }
            if variant == "mapped" {
                saw_mapped = true;
                if full_scale && frac < 0.5 {
                    return Err(format!(
                        "mapped routing at {frac}x decoded, below the 0.5x acceptance bound"
                    ));
                }
            }
            if variant.starts_with("sharded") {
                saw_sharded = true;
                if full_scale && number(row, handoffs_c)? <= 0.0 {
                    return Err("sharded routing never crossed a shard boundary".into());
                }
            }
        }
        if !(saw_mapped && saw_sharded) {
            return Err("routing table is missing the mapped or sharded variant".into());
        }

        // the out-of-core ladder must keep every rung's streamed peak RSS
        // under the O(vertices) ceiling, and at full scale the streamed
        // sampler must peak at no more than 35% of the in-RAM sampler
        let ladder_table = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("within ceiling")))
            })
            .ok_or("bench_store artifact has no out-of-core sampling ladder")?;
        let headers = ladder_table.1.get("headers").and_then(JsonValue::as_array);
        let rows = ladder_table.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("out-of-core ladder table malformed".into());
        };
        if rows.is_empty() {
            return Err("out-of-core ladder table has no rows".into());
        }
        let column = |name: &str| {
            headers
                .iter()
                .position(|h| h.as_str() == Some(name))
                .ok_or_else(|| format!("ladder table missing column {name:?}"))
        };
        let (n_c, within_c, frac_c) = (
            column("vertices")?,
            column("within ceiling")?,
            column("rss frac")?,
        );
        for row in rows {
            let n = cell(row, n_c)?;
            if cell(row, within_c)? != "true" {
                return Err(format!(
                    "streamed sampling at n={n} exceeded its peak-RSS ceiling"
                ));
            }
            let frac = number(row, frac_c)?;
            if full_scale && frac > 0.35 {
                return Err(format!(
                    "streamed sampling at n={n} peaked at {frac} of in-RAM RSS, \
                     above the 0.35 acceptance bound"
                ));
            }
        }
    }

    // any artifact that ran a traffic suite must carry the simulator's
    // delivery/drop counters, with at least one packet injected
    let ran_traffic = records.iter().any(|(kind, record)| {
        kind == "suite"
            && record
                .get("suite")
                .and_then(JsonValue::as_str)
                .is_some_and(|s| s.contains("traffic"))
    });
    if ran_traffic {
        for key in [
            "net.injected",
            "net.delivered",
            "net.dead_end",
            "net.expired",
            "net.lost",
            "net.overflow",
        ] {
            if counters.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!(
                    "summary counter {key:?} missing after a traffic suite"
                ));
            }
        }
        if counters
            .get("net.injected")
            .and_then(JsonValue::as_f64)
            .map(|v| v > 0.0)
            != Some(true)
        {
            return Err("traffic suite ran but net.injected is zero".into());
        }
    }

    // a v2 artifact that ran the E15 experiment must carry its congestion
    // timelines with at least one sample (bench_traffic records no
    // timelines — it measures wall-clock, not congestion)
    let ran_e15 = records.iter().any(|(kind, record)| {
        kind == "suite"
            && record
                .get("suite")
                .and_then(JsonValue::as_str)
                .is_some_and(|s| s.contains("E15"))
    });
    if is_v2 && ran_e15 {
        if timelines == 0 {
            return Err("E15 traffic suite ran but artifact has no net.timeline records".into());
        }
        if timeline_samples == 0 {
            return Err("net.timeline records carry no samples".into());
        }
    }

    // a traffic-throughput artifact must carry the packets/sec table with
    // positive rates
    let is_bench_traffic = records[0]
        .1
        .get("binary")
        .and_then(JsonValue::as_str)
        .map(|b| b == "bench_traffic")
        .unwrap_or(false);
    if is_bench_traffic {
        let throughput = records
            .iter()
            .find(|(kind, record)| {
                kind == "table"
                    && record
                        .get("headers")
                        .and_then(JsonValue::as_array)
                        .is_some_and(|h| h.iter().any(|c| c.as_str() == Some("packets/sec")))
            })
            .ok_or("bench_traffic artifact has no throughput table")?;
        let headers = throughput.1.get("headers").and_then(JsonValue::as_array);
        let rows = throughput.1.get("rows").and_then(JsonValue::as_array);
        let (Some(headers), Some(rows)) = (headers, rows) else {
            return Err("traffic throughput table malformed".into());
        };
        let c = headers
            .iter()
            .position(|h| h.as_str() == Some("packets/sec"))
            .expect("column located above");
        if rows.is_empty() {
            return Err("traffic throughput table has no rows".into());
        }
        for row in rows {
            let cell = row
                .as_array()
                .and_then(|r| r[c].as_str())
                .ok_or("traffic throughput cell is not a string")?;
            let value: f64 = cell
                .parse()
                .map_err(|_| format!("traffic throughput cell {cell:?} is not numeric"))?;
            if value <= 0.0 {
                return Err(format!("traffic throughput {value} not positive"));
            }
        }
        // sharded-engine artifacts (those carrying a "shards" column)
        // must declare their shard counts in a net.shards record, use
        // positive counts, and — the determinism gate — report the SAME
        // delivered fraction for one scenario at every shard count
        if let Some(shards_c) = headers.iter().position(|h| h.as_str() == Some("shards")) {
            if shard_records == 0 {
                return Err("sharded bench_traffic artifact has no net.shards record".into());
            }
            let column = |name: &str| {
                headers
                    .iter()
                    .position(|h| h.as_str() == Some(name))
                    .ok_or_else(|| format!("traffic table missing column {name:?}"))
            };
            let (scenario_c, policy_c) = (column("scenario")?, column("policy")?);
            let delivered_c = column("delivered")?;
            let cell = |row: &JsonValue, c: usize| -> Result<String, String> {
                row.as_array()
                    .and_then(|r| r.get(c))
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| "traffic table cell is not a string".to_string())
            };
            let mut delivered_by_key: Vec<((String, String), String)> = Vec::new();
            for row in rows {
                let shards: f64 = cell(row, shards_c)?
                    .parse()
                    .map_err(|_| "traffic shards cell is not numeric".to_string())?;
                if shards < 1.0 {
                    return Err(format!("traffic shard count {shards} not positive"));
                }
                let key = (cell(row, scenario_c)?, cell(row, policy_c)?);
                let delivered = cell(row, delivered_c)?;
                match delivered_by_key.iter().find(|(k, _)| *k == key) {
                    Some((_, first)) if *first != delivered => {
                        return Err(format!(
                            "scenario {}/{} delivered {} at one shard count but {} at \
                             another — the sharded engine broke determinism",
                            key.0, key.1, first, delivered
                        ));
                    }
                    Some(_) => {}
                    None => delivered_by_key.push((key, delivered)),
                }
            }
        }
    }

    Ok(format!(
        "ok: {} records ({} tables, {} suites, {} timelines)",
        records.len(),
        tables,
        suites,
        timelines
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: artifact_check <artifact.jsonl>");
        return ExitCode::FAILURE;
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&contents) {
        Ok(report) => {
            println!("{path}: {report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
