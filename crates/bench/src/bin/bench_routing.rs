//! Routing-throughput benchmark: hops per second on a pre-sampled GIRG,
//! comparing the naive per-candidate score path against the prepared-kernel
//! hot path and the SoA routing index (with and without Morton-order
//! vertex relabeling), plus a thread-scaling matrix over the batched
//! `TrialBatch` path.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_routing -- \
//!     --json artifacts/BENCH_routing.json          # full: 100k vertices
//! cargo run --release -p smallworld-bench --bin bench_routing -- --quick
//! ```
//!
//! All four variants route the *same* source/target pairs and, by the
//! equivalence guarantees of `smallworld-core` (enforced in
//! `tests/kernel_equivalence.rs`), produce bitwise-identical routes — so
//! the hop totals must agree across variants and only the wall-clock may
//! differ. The benchmark asserts exactly that before reporting. The same
//! invariance holds across thread counts in the scaling table: trial RNG
//! is seeded per trial, so hops are identical at every row.
//!
//! Throughput trials run on one thread: the point there is per-hop cost,
//! and single-threaded wall-clock keeps the speedup column noise-free.
//! The scaling table then holds the fastest variant fixed and sweeps the
//! pool width.

use std::time::Instant;

use smallworld_analysis::Table;
use smallworld_bench::{Artifact, Scale, TrialBatch};
use smallworld_core::{
    GirgObjective, GreedyRouter, IndexedGirgObjective, NaiveObjective, Objective, RoutingIndex,
};
use smallworld_graph::Components;
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_par::Pool;

/// One measured variant: total hops routed and the wall-clock they took.
struct Measurement {
    variant: &'static str,
    hops: u64,
    wall_secs: f64,
}

impl Measurement {
    fn hops_per_sec(&self) -> f64 {
        self.hops as f64 / self.wall_secs
    }
}

/// Routes the batch once for warmup and once for measurement, summing the
/// hop counts of every trial (delivered or not — all hops are work done).
fn measure<O: Objective + Sync>(
    variant: &'static str,
    batch: &TrialBatch<'_>,
    objective: &O,
    seed: u64,
    pool: &Pool,
) -> Measurement {
    let router = GreedyRouter::new();
    let warmup = batch.run(&router, objective, seed, pool);
    std::hint::black_box(&warmup);
    let start = Instant::now();
    let trials = batch.run(&router, objective, seed, pool);
    let wall_secs = start.elapsed().as_secs_f64();
    let hops: u64 = trials.iter().map(|t| t.hops as u64).sum();
    eprintln!("{variant}: {hops} hops in {wall_secs:.3}s ({:.0} hops/s)", hops as f64 / wall_secs);
    Measurement {
        variant,
        hops,
        wall_secs,
    }
}

fn throughput_table(girg: &Girg<2>, pairs: usize, seed: u64) -> Vec<Table> {
    let pool = Pool::with_threads(1);
    let comps = Components::compute(girg.graph());
    let batch = TrialBatch::new(girg.graph(), &comps, pairs).connected_only(true);

    let index = RoutingIndex::for_girg(girg);
    let perm = girg.morton_permutation();
    let relabeled = girg.relabel(&perm);
    let comps_re = Components::compute(relabeled.graph());
    let index_re = RoutingIndex::for_girg(&relabeled);
    let batch_re = TrialBatch::new(relabeled.graph(), &comps_re, pairs)
        .connected_only(true)
        .with_id_map(&perm);

    let measurements = [
        measure(
            "naive",
            &batch,
            &NaiveObjective(GirgObjective::new(girg)),
            seed,
            &pool,
        ),
        measure("kernel", &batch, &GirgObjective::new(girg), seed, &pool),
        measure(
            "kernel+soa-index",
            &batch,
            &IndexedGirgObjective::new(GirgObjective::new(girg), &index),
            seed,
            &pool,
        ),
        measure(
            "kernel+soa-index+morton",
            &batch_re,
            &IndexedGirgObjective::new(GirgObjective::new(&relabeled), &index_re),
            seed,
            &pool,
        ),
    ];
    // every variant routes the same pairs through the same protocol; a hop
    // mismatch means an equivalence bug, not a benchmark artifact
    for m in &measurements[1..] {
        assert_eq!(
            m.hops, measurements[0].hops,
            "variant {:?} routed different hops than naive",
            m.variant
        );
    }

    let naive_rate = measurements[0].hops_per_sec();
    let mut table = Table::new(["variant", "pairs", "hops", "wall secs", "hops/sec", "speedup"])
        .title("greedy routing throughput (single thread)");
    for m in &measurements {
        table.row([
            m.variant.to_string(),
            pairs.to_string(),
            m.hops.to_string(),
            format!("{:.4}", m.wall_secs),
            format!("{:.0}", m.hops_per_sec()),
            format!("{:.3}", m.hops_per_sec() / naive_rate),
        ]);
    }

    // the scaling matrix holds the SoA-indexed variant fixed and sweeps
    // pool width over the batched TrialBatch path; trial seeding makes the
    // hop totals thread-count invariant, so only wall-clock may move
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let objective = IndexedGirgObjective::new(GirgObjective::new(girg), &index);
    let mut scaled = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::with_threads(threads);
        let m = measure("kernel+soa-index", &batch, &objective, seed, &pool);
        assert_eq!(
            m.hops, measurements[0].hops,
            "thread count {threads} changed the routed hops"
        );
        scaled.push((threads, m));
    }
    let base_rate = scaled[0].1.hops_per_sec();
    let mut scaling = Table::new([
        "threads",
        "pairs",
        "hops",
        "wall secs",
        "hops/sec",
        "speedup",
        "efficiency",
        "host cores",
    ])
    .title("batched trial scaling (kernel+soa-index)");
    for (threads, m) in &scaled {
        let speedup = m.hops_per_sec() / base_rate;
        scaling.row([
            threads.to_string(),
            pairs.to_string(),
            m.hops.to_string(),
            format!("{:.4}", m.wall_secs),
            format!("{:.0}", m.hops_per_sec()),
            format!("{:.3}", speedup),
            format!("{:.3}", speedup / *threads as f64),
            host_cores.to_string(),
        ]);
    }

    // weight lane is optional (satellite: positions-only objectives skip
    // it), so the memory table reports both layouts
    let lean = RoutingIndex::for_girg_positions_only(girg);
    let mut memory = Table::new(["layout", "vertices", "edge slots", "index bytes", "bytes/slot"])
        .title("routing index memory");
    for (layout, ix) in [("weighted", &index), ("positions-only", &lean)] {
        memory.row([
            layout.to_string(),
            ix.node_count().to_string(),
            ix.entry_count().to_string(),
            ix.bytes().to_string(),
            format!("{:.1}", ix.bytes() as f64 / ix.entry_count().max(1) as f64),
        ]);
    }

    vec![table, scaling, memory]
}

fn main() {
    let scale = Scale::from_env();
    let (n, pairs) = scale.pick((20_000, 2_000), (100_000, 20_000));
    let artifact = Artifact::open("bench_routing", scale);
    let (_, _) = artifact.run_suite("bench_routing", scale, |_| {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let girg = GirgBuilder::<2>::new(n)
            .beta(2.5)
            .alpha(2.0)
            .lambda(0.02)
            .sample(&mut rng)
            .expect("valid benchmark configuration");
        eprintln!(
            "sampled GIRG: {} vertices, {} edges",
            girg.node_count(),
            girg.graph().edge_count()
        );
        let tables = throughput_table(&girg, pairs, 0xBE7C);
        for t in &tables {
            println!("{t}");
        }
        tables
    });
    artifact.finish();
}
