//! Regenerates the `patching` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_patching [--quick|--full]`

use smallworld_bench::experiments::patching;
use smallworld_bench::Scale;

fn main() {
    let _ = patching::run(Scale::from_env());
}
