//! Regenerates the `patching` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_patching [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::patching;

fn main() {
    let _ = run_single_suite("exp_patching", "patching", patching::run);
}
