//! Regenerates the `geometric` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_geometric [--quick|--full]`

use smallworld_bench::experiments::geometric;
use smallworld_bench::Scale;

fn main() {
    let _ = geometric::run(Scale::from_env());
}
