//! Regenerates the `geometric` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_geometric [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::geometric;

fn main() {
    let _ = run_single_suite("exp_geometric", "geometric", geometric::run);
}
