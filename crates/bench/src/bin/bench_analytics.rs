//! Graph-analytics engine benchmark: batched shortest-path queries,
//! single-source sweeps, connected components and diameter on a
//! pre-sampled GIRG, comparing the serial kernels against the engine's
//! bit-parallel and thread-parallel ones.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_analytics -- \
//!     --json artifacts/BENCH_analytics.json         # full: 100k vertices
//! cargo run --release -p smallworld-bench --bin bench_analytics -- --quick
//! ```
//!
//! Every engine kernel is exact, so each variant pair must agree value for
//! value — distances, component labels, diameter — and only the wall-clock
//! may differ. The benchmark asserts exactly that before reporting. At full
//! scale it additionally asserts the headline acceptance bound: batched
//! multi-source BFS resolves pairs at ≥ 3× the per-pair bidirectional rate.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_analysis::Table;
use smallworld_bench::{Artifact, Scale};
use smallworld_graph::analytics::{pair_distances, par_bfs_distances, par_components, par_double_sweep_diameter};
use smallworld_graph::{
    bfs_distance, bfs_distances, double_sweep_diameter, Components, Graph, NodeId,
};
use smallworld_models::girg::GirgBuilder;
use smallworld_par::Pool;

/// Times `run` after one warmup pass, returning (result, wall seconds).
fn timed<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    std::hint::black_box(run());
    let start = Instant::now();
    let out = run();
    (out, start.elapsed().as_secs_f64())
}

/// Draws `pairs` random distinct-endpoint pairs from the giant component.
fn giant_pairs(
    graph: &Graph,
    comps: &Components,
    pairs: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let giant: Vec<NodeId> = graph.nodes().filter(|&v| comps.in_largest(v)).collect();
    assert!(giant.len() >= 2, "benchmark graph has no giant component");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(pairs);
    while out.len() < pairs {
        let s = giant[rng.gen_range(0..giant.len())];
        let t = giant[rng.gen_range(0..giant.len())];
        if s != t {
            out.push((s, t));
        }
    }
    out
}

/// Draws a distance-matrix workload from the giant component: `rows`
/// sources × `cols` targets, every (source, target) pair queried — the
/// all-targets-per-source shape MS-BFS lane sharing amortizes.
fn giant_matrix(
    graph: &Graph,
    comps: &Components,
    rows: usize,
    cols: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let giant: Vec<NodeId> = graph.nodes().filter(|&v| comps.in_largest(v)).collect();
    assert!(giant.len() >= rows + cols, "giant too small for the matrix workload");
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..rows).map(|_| giant[rng.gen_range(0..giant.len())]).collect();
    let targets: Vec<NodeId> = (0..cols).map(|_| giant[rng.gen_range(0..giant.len())]).collect();
    sources
        .iter()
        .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
        .collect()
}

/// Times the per-pair bidirectional baseline against one batched
/// [`pair_distances`] call over the same `queries`; asserts the distances
/// agree value for value before reporting throughput.
fn measure_pairs(graph: &Graph, queries: &[(NodeId, NodeId)]) -> (f64, f64, usize) {
    let (base, base_secs) = timed(|| {
        queries
            .iter()
            .map(|&(s, t)| bfs_distance(graph, s, t))
            .collect::<Vec<_>>()
    });
    let (batched, batched_secs) = timed(|| pair_distances(graph, queries));
    assert_eq!(base, batched, "batched distances diverge from per-pair bidirectional BFS");
    (base_secs, batched_secs, batched.iter().flatten().count())
}

/// Pair-distance throughput on the two workload shapes the adaptive
/// dispatcher distinguishes: a 64×N distance matrix (shared sweeps win)
/// and a same-size random pair set (per-pair bidirectional wins, and the
/// dispatcher must not regress it).
fn pair_distance_table(graph: &Graph, comps: &Components, pairs: usize, scale: Scale) -> Table {
    // 64 sources = one full lane word at full scale; quick keeps the
    // matrix small but still above the dispatcher's sweep threshold
    let rows = scale.pick(32, 64);
    let matrix = giant_matrix(graph, comps, rows, pairs / rows, 0xA11A);
    let random = giant_pairs(graph, comps, matrix.len(), 0xA11B);

    let mut table = Table::new([
        "workload", "variant", "pairs", "resolved", "wall secs", "pairs/sec", "speedup",
    ])
    .title("pair-distance throughput (single thread): batched vs per-pair");
    let mut matrix_speedup = 0.0;
    let matrix_label = format!("matrix {rows}x{}", pairs / rows);
    for (workload, queries) in [(matrix_label.as_str(), &matrix), ("random pairs", &random)] {
        let (base_secs, batched_secs, resolved) = measure_pairs(graph, queries);
        let base_rate = queries.len() as f64 / base_secs;
        let batched_rate = queries.len() as f64 / batched_secs;
        let speedup = batched_rate / base_rate;
        if workload.starts_with("matrix") {
            matrix_speedup = speedup;
        }
        eprintln!(
            "{workload}: bidir {base_rate:.0} pairs/s, batched {batched_rate:.0} pairs/s \
             ({speedup:.2}x)"
        );
        for (variant, secs, rate) in [
            ("bidir per-pair", base_secs, base_rate),
            ("batched", batched_secs, batched_rate),
        ] {
            table.row([
                workload.to_string(),
                variant.to_string(),
                queries.len().to_string(),
                resolved.to_string(),
                format!("{secs:.4}"),
                format!("{rate:.0}"),
                format!("{:.3}", rate / base_rate),
            ]);
        }
    }
    if scale == Scale::Full {
        assert!(
            matrix_speedup >= 3.0,
            "acceptance bound: batched MS-BFS must resolve matrix-workload pairs at \
             >= 3x the per-pair bidirectional rate at full scale, measured \
             {matrix_speedup:.2}x"
        );
    }
    table
}

/// Serial vs pool-parallel kernels: single-source sweeps, components,
/// double-sweep diameter. Each parallel result must equal its serial twin.
fn kernel_table(graph: &Graph, comps: &Components, sources: usize) -> Table {
    let pool = Pool::from_env();
    let sweep_sources: Vec<NodeId> = (0..sources)
        .map(|i| NodeId::from_index(i * graph.node_count() / sources))
        .collect();

    let (serial_sweeps, serial_secs) = timed(|| {
        sweep_sources
            .iter()
            .map(|&s| bfs_distances(graph, s))
            .collect::<Vec<_>>()
    });
    let (par_sweeps, par_secs) = timed(|| {
        sweep_sources
            .iter()
            .map(|&s| par_bfs_distances(graph, s, &pool))
            .collect::<Vec<_>>()
    });
    assert_eq!(serial_sweeps, par_sweeps, "parallel BFS distances diverge");

    let (serial_comps, comps_serial_secs) = timed(|| Components::compute(graph));
    let (par_comps, comps_par_secs) = timed(|| par_components(graph, &pool));
    assert_eq!(serial_comps.count(), par_comps.count());
    for v in graph.nodes() {
        assert_eq!(
            serial_comps.component_of(v),
            par_comps.component_of(v),
            "parallel component labels diverge at {v:?}"
        );
    }

    let start = graph
        .nodes()
        .find(|&v| comps.in_largest(v))
        .expect("giant component is non-empty");
    let (serial_diam, diam_serial_secs) = timed(|| double_sweep_diameter(graph, start));
    let (par_diam, diam_par_secs) = timed(|| par_double_sweep_diameter(graph, start, &pool));
    assert_eq!(serial_diam, par_diam, "parallel diameter estimate diverges");

    let mut table = Table::new(["kernel", "serial secs", "parallel secs", "speedup", "threads"])
        .title("serial vs pool-parallel analytics kernels");
    for (kernel, serial, parallel) in [
        ("sssp sweeps", serial_secs, par_secs),
        ("components", comps_serial_secs, comps_par_secs),
        ("diameter", diam_serial_secs, diam_par_secs),
    ] {
        table.row([
            kernel.to_string(),
            format!("{serial:.4}"),
            format!("{parallel:.4}"),
            format!("{:.3}", serial / parallel),
            pool.threads().to_string(),
        ]);
    }
    table
}

fn main() {
    let scale = Scale::from_env();
    let (n, pairs, sources) = scale.pick((20_000, 1_024, 4), (100_000, 8_192, 16));
    let artifact = Artifact::open("bench_analytics", scale);
    let (_, _) = artifact.run_suite("bench_analytics", scale, |_| {
        let mut rng = StdRng::seed_from_u64(1);
        let girg = GirgBuilder::<2>::new(n)
            .beta(2.5)
            .alpha(2.0)
            .lambda(0.02)
            .sample(&mut rng)
            .expect("valid benchmark configuration");
        let graph = girg.graph();
        eprintln!(
            "sampled GIRG: {} vertices, {} edges",
            graph.node_count(),
            graph.edge_count()
        );
        let comps = Components::compute(graph);
        let tables = vec![
            pair_distance_table(graph, &comps, pairs, scale),
            kernel_table(graph, &comps, sources),
        ];
        for t in &tables {
            println!("{t}");
        }
        tables
    });
    artifact.finish();
}
