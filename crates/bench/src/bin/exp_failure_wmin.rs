//! Regenerates the `failure_wmin` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_failure_wmin [--quick|--full]`

use smallworld_bench::experiments::failure_wmin;
use smallworld_bench::Scale;

fn main() {
    let _ = failure_wmin::run(Scale::from_env());
}
