//! Regenerates the `failure_wmin` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_failure_wmin [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::failure_wmin;

fn main() {
    let _ = run_single_suite("exp_failure_wmin", "failure_wmin", failure_wmin::run);
}
