//! Regenerates the `hyperbolic` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_hyperbolic [--quick|--full]`

use smallworld_bench::experiments::hyperbolic;
use smallworld_bench::Scale;

fn main() {
    let _ = hyperbolic::run(Scale::from_env());
}
