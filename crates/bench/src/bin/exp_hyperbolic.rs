//! Regenerates the `hyperbolic` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_hyperbolic [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::hyperbolic;

fn main() {
    let _ = run_single_suite("exp_hyperbolic", "hyperbolic", hyperbolic::run);
}
