//! Regenerates the `kleinberg` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_kleinberg [--quick|--full]`

use smallworld_bench::experiments::kleinberg;
use smallworld_bench::Scale;

fn main() {
    let _ = kleinberg::run(Scale::from_env());
}
