//! Regenerates the `kleinberg` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_kleinberg [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::kleinberg;

fn main() {
    let _ = run_single_suite("exp_kleinberg", "kleinberg", kleinberg::run);
}
