//! Regenerates the `trajectory` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_trajectory [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::trajectory;

fn main() {
    let _ = run_single_suite("exp_trajectory", "trajectory", trajectory::run);
}
