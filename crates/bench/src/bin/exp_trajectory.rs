//! Regenerates the `trajectory` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_trajectory [--quick|--full]`

use smallworld_bench::experiments::trajectory;
use smallworld_bench::Scale;

fn main() {
    let _ = trajectory::run(Scale::from_env());
}
