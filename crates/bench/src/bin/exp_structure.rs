//! Regenerates the `structure` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_structure [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::structure;

fn main() {
    let _ = run_single_suite("exp_structure", "structure", structure::run);
}
