//! Regenerates the `structure` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_structure [--quick|--full]`

use smallworld_bench::experiments::structure;
use smallworld_bench::Scale;

fn main() {
    let _ = structure::run(Scale::from_env());
}
