//! Traffic-simulator throughput benchmark: packets per second of
//! wall-clock through the sharded discrete-event engine at fixed load
//! and fault settings.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_traffic -- \
//!     --json artifacts/BENCH_traffic.json          # full: 20k vertices
//! cargo run --release -p smallworld-bench --bin bench_traffic -- --quick
//! ```
//!
//! Scenarios on the *same* pre-sampled GIRG and the same offered load:
//! fault-free greedy (the event-loop fast path), greedy under 5% loss
//! with transient outages (retry + drop machinery engaged), and patching
//! under the same faults (exploration overhead) — each at 1, 2, and 4
//! shards of the conservative virtual-time engine — plus a `firehose`
//! row that streams ≥10M packets (full scale) through summary mode to
//! measure sustained event-loop throughput with O(in-flight) memory.
//!
//! Simulation results are a pure function of the seeds *and independent
//! of the shard count*: the `delivered` column must agree exactly across
//! the shard rows of one scenario (`artifact_check` gates on this), and
//! only the wall-clock columns move between machines or thread settings.
//! `swreport --diff` against the committed baseline surfaces both kinds
//! of drift.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_bench::{push_record, Artifact, Scale};
use smallworld_core::{GirgObjective, PreparedObjective};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_net::{
    nodes_from_mask, FaultPlan, FaultSpec, GreedyPolicy, PatchingPolicy, SimBuilder, SimConfig,
    SimSummary, UniformPairs,
};
use smallworld_obs::JsonValue;

/// Shard counts every scenario is measured at. The results must be
/// bitwise identical across them; only wall-clock may differ.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct Measurement {
    scenario: &'static str,
    policy: &'static str,
    shards: usize,
    packets: usize,
    delivered_frac: f64,
    wall_secs: f64,
}

impl Measurement {
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
}

/// Runs one scenario once for warmup and once for measurement (the
/// `firehose` caller skips warmup by passing `warmup = false`). The
/// fault plan and workload derive from `seed` exactly as in E15, so the
/// delivered fraction matches what the experiment would report. Summary
/// mode keeps memory O(in-flight) no matter the packet count.
#[allow(clippy::too_many_arguments)]
fn measure(
    girg: &Girg<2>,
    scenario: &'static str,
    policy: &'static str,
    shards: usize,
    spec: FaultSpec,
    config: SimConfig,
    packets: usize,
    load: f64,
    seed: u64,
    warmup: bool,
) -> Measurement {
    let run = || -> SimSummary {
        let plan = FaultPlan::new(spec, smallworld_par::split_seed(seed, 0));
        let eligible = nodes_from_mask(&plan.survivor_mask(girg.graph()));
        let workload = UniformPairs::new(packets, load, smallworld_par::split_seed(seed, 1));
        let obj = GirgObjective::new(girg);
        let score = PreparedObjective::new(&obj);
        match policy {
            "greedy" => SimBuilder::new(girg.graph(), GreedyPolicy::new(score))
                .faults(plan)
                .config(config)
                .shards(shards)
                .build()
                .expect("valid benchmark sim")
                .run_summary(workload.over(&eligible)),
            "patching" => SimBuilder::new(girg.graph(), PatchingPolicy::new(score))
                .faults(plan)
                .config(config)
                .shards(shards)
                .build()
                .expect("valid benchmark sim")
                .run_summary(workload.over(&eligible)),
            other => unreachable!("unknown policy {other:?}"),
        }
    };
    if warmup {
        std::hint::black_box(run());
    }
    let start = Instant::now();
    let summary = run();
    let wall_secs = start.elapsed().as_secs_f64();
    let delivered_frac = summary.delivery_rate();
    eprintln!(
        "{scenario}/{policy} x{shards}: {packets} packets in {wall_secs:.3}s \
         ({:.0} packets/s, {delivered_frac:.3} delivered)",
        packets as f64 / wall_secs
    );
    Measurement {
        scenario,
        policy,
        shards,
        packets,
        delivered_frac,
        wall_secs,
    }
}

fn throughput_table(girg: &Girg<2>, packets: usize, firehose_packets: usize, seed: u64) -> Vec<Table> {
    let lossy = FaultSpec {
        loss_rate: 0.05,
        node_fail_rate: 0.1,
        fail_window: 100,
        repair_after: Some(50),
        ..FaultSpec::none()
    };
    let bounded = SimConfig {
        queue_capacity: Some(8),
        ..SimConfig::default()
    };
    let retrying = SimConfig {
        max_retries: 3,
        ..SimConfig::default()
    };
    let mut measurements = Vec::new();
    for shards in SHARD_COUNTS {
        measurements.push(measure(
            girg,
            "fault_free",
            "greedy",
            shards,
            FaultSpec::none(),
            bounded,
            packets,
            1.0,
            seed,
            true,
        ));
    }
    for shards in SHARD_COUNTS {
        measurements.push(measure(
            girg, "lossy", "greedy", shards, lossy, retrying, packets, 1.0, seed, true,
        ));
    }
    for shards in SHARD_COUNTS {
        measurements.push(measure(
            girg, "lossy", "patching", shards, lossy, retrying, packets, 1.0, seed, true,
        ));
    }
    // the sustained-throughput row: tens of millions of packets streamed
    // through summary mode, injected fast enough to keep queues busy.
    // One timed run, no warmup — at this size the event loop dwarfs any
    // cache-warming effect.
    measurements.push(measure(
        girg,
        "firehose",
        "greedy",
        1,
        FaultSpec::none(),
        SimConfig::default(),
        firehose_packets,
        32.0,
        seed ^ 0xF1DE,
        false,
    ));

    // every (scenario, policy) must deliver the same fraction at every
    // shard count — the bench doubles as an invariance check
    for m in &measurements {
        let base = measurements
            .iter()
            .find(|b| b.scenario == m.scenario && b.policy == m.policy)
            .expect("at least itself");
        assert!(
            (base.delivered_frac - m.delivered_frac).abs() < f64::EPSILON,
            "{}/{}: delivered fraction differs across shard counts",
            m.scenario,
            m.policy
        );
    }

    push_record(JsonValue::object([
        ("type", JsonValue::from("net.shards")),
        ("suite", JsonValue::from("bench_traffic")),
        (
            "threads",
            JsonValue::from(smallworld_par::thread_count() as u64),
        ),
        (
            "shards",
            JsonValue::array(SHARD_COUNTS.map(|s| JsonValue::from(s as u64))),
        ),
    ]));

    let mut table = Table::new([
        "scenario",
        "policy",
        "shards",
        "packets",
        "delivered",
        "wall secs",
        "packets/sec",
    ])
    .title("traffic simulator throughput (sharded virtual-time engine)");
    for m in &measurements {
        table.row([
            m.scenario.to_string(),
            m.policy.to_string(),
            m.shards.to_string(),
            m.packets.to_string(),
            fmt_f64(m.delivered_frac, 3),
            format!("{:.4}", m.wall_secs),
            format!("{:.0}", m.packets_per_sec()),
        ]);
    }
    vec![table]
}

fn main() {
    let scale = Scale::from_env();
    let (n, packets, firehose) = scale.pick((5_000, 1_000, 50_000), (20_000, 10_000, 10_000_000));
    let artifact = Artifact::open("bench_traffic", scale);
    let (_, _) = artifact.run_suite("bench_traffic", scale, |_| {
        let mut rng = StdRng::seed_from_u64(2);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample(&mut rng)
                .expect("valid benchmark configuration")
        };
        eprintln!(
            "sampled GIRG: {} vertices, {} edges",
            girg.node_count(),
            girg.graph().edge_count()
        );
        let _span = smallworld_obs::Span::enter("bench_traffic");
        let tables = throughput_table(&girg, packets, firehose, 0xBE7F);
        for t in &tables {
            println!("{t}");
        }
        tables
    });
    artifact.finish();
}
