//! Traffic-simulator throughput benchmark: packets per second of
//! wall-clock through the discrete-event engine at fixed load and fault
//! settings.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_traffic -- \
//!     --json artifacts/BENCH_traffic.json          # full: 20k vertices
//! cargo run --release -p smallworld-bench --bin bench_traffic -- --quick
//! ```
//!
//! Three scenarios on the *same* pre-sampled GIRG and the same offered
//! load: fault-free greedy (the event-loop fast path), greedy under 5%
//! loss with transient outages (retry + drop machinery engaged), and
//! patching under the same faults (exploration overhead). Simulation
//! results are a pure function of the seeds, so the delivered fraction in
//! the artifact is reproducible; only the wall-clock columns move between
//! machines. `swreport --diff` against the committed baseline surfaces
//! both kinds of drift.
//!
//! Runs on one thread: the point is per-event cost, not pool scaling.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_bench::{Artifact, Scale};
use smallworld_core::{GirgObjective, PreparedObjective};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_net::{
    nodes_from_mask, FaultPlan, FaultSpec, GreedyPolicy, PatchingPolicy, SimConfig, SimReport,
    Simulation, Workload,
};

struct Measurement {
    scenario: &'static str,
    policy: &'static str,
    packets: usize,
    delivered_frac: f64,
    wall_secs: f64,
}

impl Measurement {
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs
    }
}

/// Runs one scenario once for warmup and once for measurement. The fault
/// plan and workload derive from `seed` exactly as in E15, so the
/// delivered fraction matches what the experiment would report.
#[allow(clippy::too_many_arguments)]
fn measure(
    girg: &Girg<2>,
    scenario: &'static str,
    policy: &'static str,
    spec: FaultSpec,
    config: SimConfig,
    packets: usize,
    load: f64,
    seed: u64,
) -> Measurement {
    let run = || -> SimReport {
        let plan = FaultPlan::new(spec, smallworld_par::split_seed(seed, 0));
        let eligible = nodes_from_mask(&plan.survivor_mask(girg.graph()));
        let injections =
            Workload::new(packets, load, smallworld_par::split_seed(seed, 1)).injections(&eligible);
        let obj = GirgObjective::new(girg);
        let score = PreparedObjective::new(&obj);
        match policy {
            "greedy" => Simulation::new(girg.graph(), GreedyPolicy::new(score))
                .with_faults(plan)
                .with_config(config)
                .run(&injections),
            "patching" => Simulation::new(girg.graph(), PatchingPolicy::new(score))
                .with_faults(plan)
                .with_config(config)
                .run(&injections),
            other => unreachable!("unknown policy {other:?}"),
        }
    };
    std::hint::black_box(run());
    let start = Instant::now();
    let report = run();
    let wall_secs = start.elapsed().as_secs_f64();
    let delivered_frac = report.delivery_rate();
    eprintln!(
        "{scenario}/{policy}: {packets} packets in {wall_secs:.3}s \
         ({:.0} packets/s, {delivered_frac:.3} delivered)",
        packets as f64 / wall_secs
    );
    Measurement {
        scenario,
        policy,
        packets,
        delivered_frac,
        wall_secs,
    }
}

fn throughput_table(girg: &Girg<2>, packets: usize, seed: u64) -> Vec<Table> {
    let lossy = FaultSpec {
        loss_rate: 0.05,
        node_fail_rate: 0.1,
        fail_window: 100,
        repair_after: Some(50),
        ..FaultSpec::none()
    };
    let bounded = SimConfig {
        queue_capacity: Some(8),
        ..SimConfig::default()
    };
    let retrying = SimConfig {
        max_retries: 3,
        ..SimConfig::default()
    };
    let measurements = [
        measure(
            girg,
            "fault_free",
            "greedy",
            FaultSpec::none(),
            bounded,
            packets,
            1.0,
            seed,
        ),
        measure(girg, "lossy", "greedy", lossy, retrying, packets, 1.0, seed),
        measure(girg, "lossy", "patching", lossy, retrying, packets, 1.0, seed),
    ];

    let mut table = Table::new([
        "scenario",
        "policy",
        "packets",
        "delivered",
        "wall secs",
        "packets/sec",
    ])
    .title("traffic simulator throughput (single thread)");
    for m in &measurements {
        table.row([
            m.scenario.to_string(),
            m.policy.to_string(),
            m.packets.to_string(),
            fmt_f64(m.delivered_frac, 3),
            format!("{:.4}", m.wall_secs),
            format!("{:.0}", m.packets_per_sec()),
        ]);
    }
    vec![table]
}

fn main() {
    let scale = Scale::from_env();
    let (n, packets) = scale.pick((5_000, 1_000), (20_000, 10_000));
    let artifact = Artifact::open("bench_traffic", scale);
    let (_, _) = artifact.run_suite("bench_traffic", scale, |_| {
        let mut rng = StdRng::seed_from_u64(2);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample(&mut rng)
                .expect("valid benchmark configuration")
        };
        eprintln!(
            "sampled GIRG: {} vertices, {} edges",
            girg.node_count(),
            girg.graph().edge_count()
        );
        let _span = smallworld_obs::Span::enter("bench_traffic");
        let tables = throughput_table(&girg, packets, 0xBE7F);
        for t in &tables {
            println!("{t}");
        }
        tables
    });
    artifact.finish();
}
