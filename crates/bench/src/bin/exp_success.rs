//! Regenerates the `success` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_success [--quick|--full]`

use smallworld_bench::experiments::success;
use smallworld_bench::Scale;

fn main() {
    let _ = success::run(Scale::from_env());
}
