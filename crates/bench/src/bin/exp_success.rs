//! Regenerates the `success` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_success [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::success;

fn main() {
    let _ = run_single_suite("exp_success", "success", success::run);
}
