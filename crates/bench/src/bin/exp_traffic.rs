//! Regenerates the `traffic` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_traffic [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::traffic;

fn main() {
    let _ = run_single_suite("exp_traffic", "traffic", traffic::run);
}
