//! Regenerates the `robustness` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_robustness [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::robustness;

fn main() {
    let _ = run_single_suite("exp_robustness", "robustness", robustness::run);
}
