//! Regenerates the `robustness` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_robustness [--quick|--full]`

use smallworld_bench::experiments::robustness;
use smallworld_bench::Scale;

fn main() {
    let _ = robustness::run(Scale::from_env());
}
