//! Regenerates the `stretch` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_stretch [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::stretch;

fn main() {
    let _ = run_single_suite("exp_stretch", "stretch", stretch::run);
}
