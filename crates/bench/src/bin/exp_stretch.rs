//! Regenerates the `stretch` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_stretch [--quick|--full]`

use smallworld_bench::experiments::stretch;
use smallworld_bench::Scale;

fn main() {
    let _ = stretch::run(Scale::from_env());
}
