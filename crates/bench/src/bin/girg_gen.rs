//! Command-line GIRG generator: sample a graph and save it in the
//! `smallworld-models::io` text format (or print summary statistics).
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin girg_gen -- \
//!     --n 100000 --beta 2.5 --alpha 2.0 --degree 10 --seed 42 --out girg.txt
//! ```
//!
//! Omit `--out` to print statistics only. `--degree` calibrates λ via the
//! Lemma 7.1 marginal; pass `--lambda` instead for a raw kernel constant.

use std::io::BufWriter;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::Table;
use smallworld_bench::{Artifact, Scale};
use smallworld_core::theory::lambda_for_average_degree;
use smallworld_graph::Components;
use smallworld_models::girg::GirgBuilder;
use smallworld_models::io::write_girg;
use smallworld_models::Alpha;
use smallworld_obs::Span;

struct Options {
    n: u64,
    beta: f64,
    alpha: f64,
    lambda: Option<f64>,
    degree: Option<f64>,
    wmin: f64,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        n: 10_000,
        beta: 2.5,
        alpha: 2.0,
        lambda: None,
        degree: None,
        wmin: 1.0,
        seed: 1,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        if flag.starts_with("--json=") {
            // consumed by the artifact sink (smallworld_obs::sink)
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |e: &str| format!("bad value for {flag}: {e}");
        match flag {
            "--n" => opts.n = value.parse().map_err(|_| bad(value))?,
            "--beta" => opts.beta = value.parse().map_err(|_| bad(value))?,
            "--alpha" => {
                opts.alpha = if value == "inf" {
                    f64::INFINITY
                } else {
                    value.parse().map_err(|_| bad(value))?
                }
            }
            "--lambda" => opts.lambda = Some(value.parse().map_err(|_| bad(value))?),
            "--degree" => opts.degree = Some(value.parse().map_err(|_| bad(value))?),
            "--wmin" => opts.wmin = value.parse().map_err(|_| bad(value))?,
            "--seed" => opts.seed = value.parse().map_err(|_| bad(value))?,
            "--out" => opts.out = Some(value.clone()),
            "--json" => {} // consumed by the artifact sink (smallworld_obs::sink)
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if opts.lambda.is_some() && opts.degree.is_some() {
        return Err("--lambda and --degree are mutually exclusive".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "girg_gen: sample a 2-dimensional GIRG\n\
         flags: --n <u64> --beta <f64 in (2,3)> --alpha <f64 or inf> \
         [--lambda <f64> | --degree <f64>] [--wmin <f64>] [--seed <u64>] [--out <path>] \
         [--json <path>]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let lambda = opts.lambda.unwrap_or_else(|| {
        let degree = opts.degree.unwrap_or(10.0);
        lambda_for_average_degree(degree, opts.alpha, 2, opts.beta, opts.wmin)
    });

    let artifact = Artifact::open("girg_gen", Scale::Full);
    let mut exit = ExitCode::SUCCESS;
    let (_, _) = artifact.run_suite("girg_gen", Scale::Full, |_| {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let start = std::time::Instant::now();
        let girg = {
            let _span = Span::enter("sample_girg");
            GirgBuilder::<2>::new(opts.n)
                .beta(opts.beta)
                .alpha(Alpha::from(opts.alpha))
                .wmin(opts.wmin)
                .lambda(lambda)
                .sample(&mut rng)
        };
        let girg = match girg {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                exit = ExitCode::FAILURE;
                return Vec::new();
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        let comps = Components::compute(girg.graph());
        eprintln!(
            "sampled {} vertices, {} edges in {elapsed:.2}s (avg degree {:.2}, giant {:.1}%)",
            girg.node_count(),
            girg.graph().edge_count(),
            girg.graph().average_degree(),
            100.0 * comps.giant_fraction()
        );
        let mut table = Table::new([
            "n", "beta", "alpha", "lambda", "seed", "vertices", "edges", "avg degree",
            "giant frac", "sample secs",
        ])
        .title("girg_gen: sampled graph");
        table.row([
            opts.n.to_string(),
            format!("{}", opts.beta),
            format!("{}", opts.alpha),
            format!("{lambda}"),
            opts.seed.to_string(),
            girg.node_count().to_string(),
            girg.graph().edge_count().to_string(),
            format!("{:.3}", girg.graph().average_degree()),
            format!("{:.4}", comps.giant_fraction()),
            format!("{elapsed:.3}"),
        ]);

        if let Some(path) = &opts.out {
            let _span = Span::enter("write_girg");
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot create {path}: {e}");
                    exit = ExitCode::FAILURE;
                    return vec![table];
                }
            };
            if let Err(e) = write_girg(&girg, BufWriter::new(file)) {
                eprintln!("error: writing {path}: {e}");
                exit = ExitCode::FAILURE;
                return vec![table];
            }
            eprintln!("wrote {path}");
        }
        vec![table]
    });
    artifact.finish();
    exit
}
