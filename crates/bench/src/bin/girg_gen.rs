//! Command-line graph generator: sample any model behind
//! [`smallworld_models::GraphModel`] and print summary statistics, with
//! optional greedy-routing trials and (for GIRGs) a saved graph.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin girg_gen -- \
//!     --n 100000 --beta 2.5 --alpha 2.0 --degree 10 --seed 42 --out girg.swg
//! cargo run --release -p smallworld-bench --bin girg_gen -- \
//!     --load girg.swg --seed 42 --route 200 --json reload.json
//! ```
//!
//! `--model` picks the generator (`girg`, `hrg`, `kleinberg`, `chung-lu`);
//! every model is driven through the same `GraphModel::sample_seeded` entry
//! point, so adding a model here is one match arm. `--route <pairs>` runs
//! that many greedy Monte-Carlo trials on the shared thread pool
//! (`SMALLWORLD_THREADS` workers) — deterministic in `--seed` at any thread
//! count. Omit `--out` to print statistics only. `--degree` calibrates λ via
//! the Lemma 7.1 marginal; pass `--lambda` instead for a raw kernel constant.
//!
//! `--out` saves a sampled GIRG through `smallworld-store`: a `.swg` path
//! writes the compressed binary store (add `--shards <k>` to embed a
//! geometric shard partition), any other extension writes the legacy text
//! format. `--load` replaces sampling with a store read — the loaded graph,
//! geometry, params, and greedy routes are bitwise those of the generating
//! run, so the report tables match modulo the wall-clock columns (`swreport
//! --diff --ignore "sample secs,route secs"` verifies this in CI).
//! `--mapped` goes one step further: it routes and analyzes **without
//! decoding the adjacency at all** — components and greedy trials stream
//! per-vertex neighbor lists on demand through the mapped store's LRU
//! cursor, scoring straight off the flat geometry lanes. Its tables are
//! cell-for-cell those of `--load` (CI diffs all three runs), and it prints
//! the peak RSS plus the decode-free open time to stderr.

use std::path::Path;
use std::process::ExitCode;

use smallworld_analysis::Table;
use smallworld_bench::{mapped_trials, Artifact, RoutingAggregate, Scale, TrialBatch};
use smallworld_core::theory::lambda_for_average_degree;
use smallworld_core::{
    GirgObjective, GreedyRouter, HyperbolicObjective, KleinbergObjective, Objective,
    PackedGirgObjective,
};
use smallworld_graph::analytics::par_components;
use smallworld_graph::{Components, Graph};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_models::hyperbolic::HrgBuilder;
use smallworld_models::{Alpha, ChungLuBuilder, GraphInstance, GraphModel, KleinbergLatticeBuilder};
use smallworld_obs::Span;
use smallworld_par::Pool;
use smallworld_store::{GraphStore, MappedGraph};

struct Options {
    model: String,
    n: u64,
    beta: f64,
    alpha: f64,
    lambda: Option<f64>,
    degree: Option<f64>,
    wmin: f64,
    seed: u64,
    route: usize,
    out: Option<String>,
    load: Option<String>,
    mapped: Option<String>,
    shards: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        model: "girg".into(),
        n: 10_000,
        beta: 2.5,
        alpha: 2.0,
        lambda: None,
        degree: None,
        wmin: 1.0,
        seed: 1,
        route: 0,
        out: None,
        load: None,
        mapped: None,
        shards: 1,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        if flag.starts_with("--json=") {
            // consumed by the artifact sink (smallworld_obs::sink)
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |e: &str| format!("bad value for {flag}: {e}");
        match flag {
            "--model" => opts.model = value.clone(),
            "--n" => opts.n = value.parse().map_err(|_| bad(value))?,
            "--beta" => opts.beta = value.parse().map_err(|_| bad(value))?,
            "--alpha" => {
                opts.alpha = if value == "inf" {
                    f64::INFINITY
                } else {
                    value.parse().map_err(|_| bad(value))?
                }
            }
            "--lambda" => opts.lambda = Some(value.parse().map_err(|_| bad(value))?),
            "--degree" => opts.degree = Some(value.parse().map_err(|_| bad(value))?),
            "--wmin" => opts.wmin = value.parse().map_err(|_| bad(value))?,
            "--seed" => opts.seed = value.parse().map_err(|_| bad(value))?,
            "--route" => opts.route = value.parse().map_err(|_| bad(value))?,
            "--out" => opts.out = Some(value.clone()),
            "--load" => opts.load = Some(value.clone()),
            "--mapped" => opts.mapped = Some(value.clone()),
            "--shards" => {
                opts.shards = value.parse().map_err(|_| bad(value))?;
                if opts.shards == 0 {
                    return Err(bad("shard count must be positive"));
                }
            }
            "--json" => {} // consumed by the artifact sink (smallworld_obs::sink)
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if opts.lambda.is_some() && opts.degree.is_some() {
        return Err("--lambda and --degree are mutually exclusive".into());
    }
    if !matches!(opts.model.as_str(), "girg" | "hrg" | "kleinberg" | "chung-lu") {
        return Err(format!(
            "unknown model {:?} (choose girg, hrg, kleinberg, chung-lu)",
            opts.model
        ));
    }
    if opts.out.is_some() && opts.model != "girg" {
        return Err("--out is only supported for --model girg".into());
    }
    if opts.load.is_some() {
        if opts.model != "girg" {
            return Err("--load is only supported for --model girg".into());
        }
        if opts.out.is_some() {
            return Err("--load and --out are mutually exclusive".into());
        }
    }
    if opts.mapped.is_some() {
        if opts.model != "girg" {
            return Err("--mapped is only supported for --model girg".into());
        }
        if opts.out.is_some() || opts.load.is_some() {
            return Err("--mapped is mutually exclusive with --out and --load".into());
        }
    }
    if opts.route > 0 && opts.model == "chung-lu" {
        return Err("--route needs a geometric objective; chung-lu has none".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "girg_gen: sample a random graph model and report statistics\n\
         flags: [--model girg|hrg|kleinberg|chung-lu] --n <u64> \
         --beta <f64 in (2,3)> --alpha <f64 or inf> \
         [--lambda <f64> | --degree <f64>] [--wmin <f64>] [--seed <u64>] \
         [--route <pairs>] [--out <path>] [--load <path>] [--mapped <path>] \
         [--shards <k>] [--json <path>]\n\
         `.swg` paths use the smallworld-store binary format; other \
         extensions use the legacy text format"
    );
}

/// The GIRG parameter label shared by the sample and load paths: the loaded
/// run rebuilds it from the stored `GirgParams`, and `f64` `Display` prints
/// whole numbers without a decimal point and infinity as `inf`, so a reload
/// reproduces the generating run's label character for character.
fn girg_params_label(n: f64, beta: f64, alpha: f64, lambda: f64) -> String {
    format!("n={n} beta={beta} alpha={alpha} lambda={lambda}")
}

/// Builds the model-agnostic statistics table every generator (and the
/// store load and mapped paths) shares. Takes plain values rather than a
/// [`Graph`] so the decode-free mapped path — which never materializes a
/// CSR — fills the same cells from the store header.
#[allow(clippy::too_many_arguments)]
fn summary_table(
    name: &str,
    params: &str,
    seed: u64,
    vertices: usize,
    edges: usize,
    avg_degree: f64,
    giant_fraction: f64,
    elapsed: f64,
) -> Table {
    let mut table = Table::new([
        "model",
        "params",
        "seed",
        "vertices",
        "edges",
        "avg degree",
        "giant frac",
        "sample secs",
    ])
    .title("girg_gen: sampled graph");
    table.row([
        name.to_string(),
        params.to_string(),
        seed.to_string(),
        vertices.to_string(),
        edges.to_string(),
        format!("{avg_degree:.3}"),
        format!("{giant_fraction:.4}"),
        format!("{elapsed:.3}"),
    ]);
    table
}

/// Samples `model` through the [`GraphModel`] trait and summarizes it.
fn sample_and_summarize<M: GraphModel>(
    model: &M,
    params: &str,
    seed: u64,
) -> Result<(M::Instance, Components, Table), smallworld_models::ModelError> {
    let start = std::time::Instant::now();
    let instance = {
        let _span = Span::enter("sample_graph");
        model.sample_seeded(seed)?
    };
    let elapsed = start.elapsed().as_secs_f64();
    let graph = instance.graph();
    // top-level, idle pool: the parallel union–find kernel is safe to fan
    // out and produces the same labels as the serial path at any thread count
    let comps = par_components(graph, &Pool::from_env());
    eprintln!(
        "sampled {} ({params}): {} vertices, {} edges in {elapsed:.2}s \
         (avg degree {:.2}, giant {:.1}%)",
        model.name(),
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree(),
        100.0 * comps.giant_fraction()
    );
    let table = summary_table(
        model.name(),
        params,
        seed,
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree(),
        comps.giant_fraction(),
        elapsed,
    );
    Ok((instance, comps, table))
}

/// Loads a GIRG from a store file and summarizes it with the load time in
/// the `sample secs` column; the params label is rebuilt from the stored
/// parameters so the table matches the generating run's.
fn load_and_summarize(path: &str, seed: u64) -> Result<(Girg<2>, Components, Table), String> {
    let start = std::time::Instant::now();
    let girg: Girg<2> = {
        let _span = Span::enter("load_graph");
        smallworld_store::load_girg(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))?
    };
    let elapsed = start.elapsed().as_secs_f64();
    let graph = girg.graph();
    let comps = par_components(graph, &Pool::from_env());
    let p = girg.params();
    let alpha = match p.alpha {
        Alpha::Finite(a) => a,
        Alpha::Threshold => f64::INFINITY,
    };
    let params = girg_params_label(p.intensity, p.beta, alpha, p.lambda);
    eprintln!(
        "loaded girg ({params}) from {path}: {} vertices, {} edges in {elapsed:.3}s",
        graph.node_count(),
        graph.edge_count()
    );
    let table = summary_table(
        "girg",
        &params,
        seed,
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree(),
        comps.giant_fraction(),
        elapsed,
    );
    Ok((girg, comps, table))
}

/// Builds the routing-trial table both the decoded and mapped route phases
/// share; the cells must format identically so a `--mapped` rerun diffs
/// cleanly against the generating run under `swreport --diff`.
fn route_table(pairs: usize, threads: usize, agg: &RoutingAggregate, elapsed: f64) -> Table {
    let mut table = Table::new(["pairs", "threads", "success rate", "mean hops", "route secs"])
        .title("girg_gen: greedy routing trials");
    table.row([
        pairs.to_string(),
        threads.to_string(),
        format!("{:.4}", agg.success.rate()),
        format!("{:.3}", agg.hops.mean()),
        format!("{elapsed:.3}"),
    ]);
    table
}

/// Runs `pairs` greedy trials on the shared pool and tabulates the result;
/// deterministic in `seed` regardless of `SMALLWORLD_THREADS`.
fn route_phase<O: Objective + Sync>(
    graph: &Graph,
    comps: &Components,
    objective: &O,
    pairs: usize,
    seed: u64,
) -> Table {
    let pool = Pool::from_env();
    let start = std::time::Instant::now();
    let trials = {
        let _span = Span::enter("route_pairs");
        TrialBatch::new(graph, comps, pairs)
            .connected_only(true)
            .run(&GreedyRouter::new(), objective, seed, &pool)
    };
    let elapsed = start.elapsed().as_secs_f64();
    let agg = RoutingAggregate::from_trials(&trials);
    eprintln!(
        "routed {pairs} connected pairs on {} thread(s) in {elapsed:.2}s \
         (success {:.1}%, mean hops {:.2})",
        pool.threads(),
        100.0 * agg.success.rate(),
        agg.hops.mean()
    );
    route_table(pairs, pool.threads(), &agg, elapsed)
}

/// Routes `pairs` trials straight off the mapped store via
/// [`smallworld_bench::mapped_trials`] — outcome-for-outcome the decoded
/// [`route_phase`] run — and tabulates the result in its exact shape.
fn route_phase_mapped<const D: usize>(
    mapped: &MappedGraph<'_>,
    comps: &Components,
    objective: &PackedGirgObjective<'_, D>,
    pairs: usize,
    seed: u64,
) -> Table {
    let pool = Pool::from_env();
    let start = std::time::Instant::now();
    let trials = {
        let _span = Span::enter("route_pairs");
        mapped_trials(mapped, comps, objective, pairs, seed, &pool, false)
    };
    let elapsed = start.elapsed().as_secs_f64();
    let agg = RoutingAggregate::from_trials(&trials.outcomes);
    eprintln!(
        "routed {pairs} connected pairs decode-free on {} thread(s) in {elapsed:.2}s \
         (success {:.1}%, mean hops {:.2}, LRU {} hits / {} misses)",
        pool.threads(),
        100.0 * agg.success.rate(),
        agg.hops.mean(),
        trials.lru_hits,
        trials.lru_misses
    );
    route_table(pairs, pool.threads(), &agg, elapsed)
}

/// The `--mapped` path: open the store, route and analyze **without
/// decoding the adjacency** — components stream one vertex at a time
/// through the mapped cursor, and routing scores straight off the flat
/// POS/WEIGHT lanes. The tables match a `--load` run cell for cell modulo
/// the wall-clock columns (`swreport --diff --ignore "sample secs,route
/// secs"`), which CI pins.
fn run_mapped(path: &str, route: usize, seed: u64) -> Result<Vec<Table>, String> {
    let start = std::time::Instant::now();
    let store = {
        let _span = Span::enter("open_swg");
        GraphStore::open(Path::new(path)).map_err(|e| format!("opening {path}: {e}"))?
    };
    let mapped = store
        .mapped_graph()
        .map_err(|e| format!("mapping {path}: {e}"))?;
    let open_secs = start.elapsed().as_secs_f64();
    let comps = {
        let _span = Span::enter("components_view");
        let mut cursor = mapped.cursor();
        Components::compute_view(&mut cursor)
    };
    let (p, _) = store
        .params()
        .map_err(|e| format!("reading params from {path}: {e}"))?;
    let alpha = match p.alpha {
        Alpha::Finite(a) => a,
        Alpha::Threshold => f64::INFINITY,
    };
    let params = girg_params_label(p.intensity, p.beta, alpha, p.lambda);
    let (rss, rss_source) = smallworld_obs::peak_rss();
    eprintln!(
        "mapped girg ({params}) from {path}: {} vertices, {} edges, open {open_secs:.3}s \
         decode-free (peak RSS {} via {})",
        mapped.node_count(),
        mapped.edge_count(),
        rss.map(|b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
            .unwrap_or_else(|| "?".into()),
        rss_source.as_str(),
    );
    let avg_degree = if mapped.node_count() == 0 {
        0.0
    } else {
        mapped.target_count() as f64 / mapped.node_count() as f64
    };
    let table = summary_table(
        "girg",
        &params,
        seed,
        mapped.node_count(),
        mapped.edge_count(),
        avg_degree,
        comps.giant_fraction(),
        open_secs,
    );
    let mut tables = vec![table];
    if route > 0 {
        let positions = store
            .packed_positions()
            .map_err(|e| format!("reading positions from {path}: {e}"))?;
        let weights = store
            .packed_weights()
            .map_err(|e| format!("reading weights from {path}: {e}"))?;
        let packed = PackedGirgObjective::<2>::new(&positions, &weights, p.wmin * p.intensity);
        tables.push(route_phase_mapped(&mapped, &comps, &packed, route, seed));
    }
    Ok(tables)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let lambda = opts.lambda.unwrap_or_else(|| {
        let degree = opts.degree.unwrap_or(10.0);
        lambda_for_average_degree(degree, opts.alpha, 2, opts.beta, opts.wmin)
    });

    let artifact = Artifact::open("girg_gen", Scale::Full);
    let mut exit = ExitCode::SUCCESS;
    let (_, _) = artifact.run_suite("girg_gen", Scale::Full, |_| {
        macro_rules! try_sample {
            ($model:expr, $params:expr) => {
                match sample_and_summarize(&$model, &$params, opts.seed) {
                    Ok(parts) => parts,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit = ExitCode::FAILURE;
                        return Vec::new();
                    }
                }
            };
        }
        match opts.model.as_str() {
            "girg" => {
                if let Some(path) = &opts.mapped {
                    return match run_mapped(path, opts.route, opts.seed) {
                        Ok(tables) => tables,
                        Err(e) => {
                            eprintln!("error: {e}");
                            exit = ExitCode::FAILURE;
                            Vec::new()
                        }
                    };
                }
                let (girg, comps, table) = if let Some(path) = &opts.load {
                    match load_and_summarize(path, opts.seed) {
                        Ok(parts) => parts,
                        Err(e) => {
                            eprintln!("error: {e}");
                            exit = ExitCode::FAILURE;
                            return Vec::new();
                        }
                    }
                } else {
                    let model = GirgBuilder::<2>::new(opts.n)
                        .beta(opts.beta)
                        .alpha(Alpha::from(opts.alpha))
                        .wmin(opts.wmin)
                        .lambda(lambda);
                    let params =
                        girg_params_label(opts.n as f64, opts.beta, opts.alpha, lambda);
                    try_sample!(model, params)
                };
                let mut tables = vec![table];
                if opts.route > 0 {
                    let obj = GirgObjective::new(&girg);
                    tables.push(route_phase(girg.graph(), &comps, &obj, opts.route, opts.seed));
                }
                if let Some(path) = &opts.out {
                    let _span = Span::enter("write_girg");
                    match smallworld_store::save_girg(&girg, Path::new(path), opts.shards) {
                        Ok(Some(stats)) => eprintln!(
                            "wrote {path}: {} bytes ({} compressed / {} raw CSR bytes)",
                            stats.file_bytes, stats.compressed_csr_bytes, stats.raw_csr_bytes
                        ),
                        Ok(None) => eprintln!("wrote {path} (legacy text format)"),
                        Err(e) => {
                            eprintln!("error: writing {path}: {e}");
                            exit = ExitCode::FAILURE;
                        }
                    }
                }
                tables
            }
            "hrg" => {
                let model = HrgBuilder::new(opts.n as usize);
                let params = format!("n={}", opts.n);
                let (hrg, comps, table) = try_sample!(model, params);
                let mut tables = vec![table];
                if opts.route > 0 {
                    let obj = HyperbolicObjective::new(&hrg);
                    tables.push(route_phase(hrg.graph(), &comps, &obj, opts.route, opts.seed));
                }
                tables
            }
            "kleinberg" => {
                // --n means vertices for every model; the lattice is square
                let side = (opts.n as f64).sqrt().ceil().max(3.0) as u32;
                let model = KleinbergLatticeBuilder::new(side);
                let params = format!("side={side} r=2");
                let (lattice, comps, table) = try_sample!(model, params);
                let mut tables = vec![table];
                if opts.route > 0 {
                    let obj = KleinbergObjective::new(&lattice);
                    tables.push(route_phase(
                        lattice.graph(),
                        &comps,
                        &obj,
                        opts.route,
                        opts.seed,
                    ));
                }
                tables
            }
            "chung-lu" => {
                let model = ChungLuBuilder::new(opts.n as usize)
                    .beta(opts.beta)
                    .wmin(opts.wmin);
                let params = format!("n={} beta={} wmin={}", opts.n, opts.beta, opts.wmin);
                let (_cl, _comps, table) = try_sample!(model, params);
                vec![table]
            }
            _ => unreachable!("parse_args validates the model name"),
        }
    });
    artifact.finish();
    exit
}
