//! Renders a JSONL experiment artifact as markdown, or diffs two of them.
//!
//! Usage:
//!
//! * `swreport <artifact.jsonl>` — write a markdown run report to stdout:
//!   the run header, every results table, timeline excerpts, the phase
//!   tree with wall-clock timings, HDR quantiles, and the summary.
//! * `swreport --diff <a.jsonl> <b.jsonl> [--ignore "col1,col2"]` —
//!   compare two artifacts structurally (tables by suite/title, cell by
//!   cell; summary counters key by key) and print the differences.
//!   `--ignore` names table columns to exclude from the comparison —
//!   wall-clock columns like `sample secs` vary between runs of a
//!   deterministic experiment, so CI's generate-once/load-twice check
//!   passes `--ignore "sample secs,route secs"`. Exits 0 when equivalent,
//!   1 when they differ, 2 on malformed input — CI runs this non-gating
//!   against committed baselines to surface drift without blocking.
//!
//! Works on any artifact version: records with unknown types are listed
//! but not interpreted, so the tool never trails the schema.

use std::fmt::Write as _;
use std::process::ExitCode;

use smallworld_obs::JsonValue;

/// How many timeline samples to show before eliding the middle.
const TIMELINE_HEAD: usize = 24;

fn parse_artifact(contents: &str) -> Result<Vec<JsonValue>, String> {
    contents
        .lines()
        .enumerate()
        .map(|(i, line)| {
            JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

fn record_type(record: &JsonValue) -> &str {
    record.get("type").and_then(JsonValue::as_str).unwrap_or("?")
}

fn str_of(record: &JsonValue, key: &str) -> String {
    record
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_string()
}

fn num_of(record: &JsonValue, key: &str) -> Option<f64> {
    record.get(key).and_then(JsonValue::as_f64)
}

/// Formats a JSON number the way the artifact prints it (integers without
/// a decimal point), for cells that came in as numbers.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.3}")
    }
}

fn fmt_cell(v: &JsonValue) -> String {
    match v {
        JsonValue::String(s) => s.clone(),
        JsonValue::Number(x) => fmt_num(*x),
        JsonValue::Null => "-".into(),
        other => other.to_string(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", bytes / (1024.0 * 1024.0 * 1024.0))
    } else if bytes >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes / (1024.0 * 1024.0))
    } else {
        format!("{bytes:.0} B")
    }
}

/// Emits one markdown table: header row, separator, then rows.
fn markdown_table(out: &mut String, headers: &[String], rows: &[Vec<String>]) {
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| " --- ").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
}

fn json_table(record: &JsonValue) -> (Vec<String>, Vec<Vec<String>>) {
    let headers: Vec<String> = record
        .get("headers")
        .and_then(JsonValue::as_array)
        .map(|h| h.iter().map(fmt_cell).collect())
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = record
        .get("rows")
        .and_then(JsonValue::as_array)
        .map(|rows| {
            rows.iter()
                .map(|r| {
                    r.as_array()
                        .map(|cells| cells.iter().map(fmt_cell).collect())
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default();
    (headers, rows)
}

fn render_table(out: &mut String, record: &JsonValue) {
    let suite = str_of(record, "suite");
    let title = record
        .get("title")
        .and_then(JsonValue::as_str)
        .unwrap_or("(untitled)");
    let _ = writeln!(out, "## {suite} — {title}\n");
    let (headers, rows) = json_table(record);
    markdown_table(out, &headers, &rows);
    let _ = writeln!(out);
}

fn render_timeline(out: &mut String, record: &JsonValue) {
    let suite = str_of(record, "suite");
    let label = str_of(record, "label");
    let interval = num_of(record, "interval").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "## Timeline: {suite} [{label}] (every {} ticks)\n",
        fmt_num(interval)
    );
    let headers: Vec<String> = record
        .get("headers")
        .and_then(JsonValue::as_array)
        .map(|h| h.iter().map(fmt_cell).collect())
        .unwrap_or_default();
    let samples: Vec<Vec<String>> = record
        .get("samples")
        .and_then(JsonValue::as_array)
        .map(|rows| {
            rows.iter()
                .map(|r| {
                    r.as_array()
                        .map(|cells| cells.iter().map(fmt_cell).collect())
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default();
    if samples.len() > TIMELINE_HEAD + 1 {
        // long runs: show the opening ramp and the final state
        let shown: Vec<Vec<String>> = samples[..TIMELINE_HEAD]
            .iter()
            .cloned()
            .chain([vec!["…".to_string(); headers.len()]])
            .chain([samples[samples.len() - 1].clone()])
            .collect();
        markdown_table(out, &headers, &shown);
        let _ = writeln!(
            out,
            "\n({} samples total, {} elided)\n",
            samples.len(),
            samples.len() - TIMELINE_HEAD - 1
        );
    } else {
        markdown_table(out, &headers, &samples);
        let _ = writeln!(out);
    }
}

fn render_phase_tree(out: &mut String, nodes: &[JsonValue], depth: usize) {
    for node in nodes {
        let name = str_of(node, "name");
        let count = num_of(node, "count").unwrap_or(0.0);
        let total = num_of(node, "total_ns").unwrap_or(0.0);
        let self_ns = num_of(node, "self_ns").unwrap_or(0.0);
        let indent = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{indent}- **{name}** ×{} — total {}, self {}",
            fmt_num(count),
            fmt_ns(total),
            fmt_ns(self_ns)
        );
        if let Some(children) = node.get("children").and_then(JsonValue::as_array) {
            render_phase_tree(out, children, depth + 1);
        }
    }
}

fn render_hdr_metrics(out: &mut String, hdr: &JsonValue) {
    let JsonValue::Object(map) = hdr else { return };
    if map.is_empty() {
        return;
    }
    let _ = writeln!(out, "### Quantiles\n");
    let headers: Vec<String> = ["metric", "count", "mean", "p50", "p90", "p99", "p999", "max"]
        .map(String::from)
        .to_vec();
    let rows: Vec<Vec<String>> = map
        .iter()
        .map(|(name, h)| {
            let q = |k: &str| {
                h.get("quantiles")
                    .and_then(|qs| qs.get(k))
                    .map(fmt_cell)
                    .unwrap_or_else(|| "-".into())
            };
            vec![
                name.clone(),
                num_of(h, "count").map(fmt_num).unwrap_or_else(|| "-".into()),
                num_of(h, "mean").map(|m| format!("{m:.1}")).unwrap_or_else(|| "-".into()),
                q("p50"),
                q("p90"),
                q("p99"),
                q("p999"),
                h.get("max").map(fmt_cell).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    markdown_table(out, &headers, &rows);
    let _ = writeln!(out);
}

fn render_report(out: &mut String, record: &JsonValue) {
    let _ = writeln!(out, "## Run report\n");
    if let Some(phases) = record.get("phases").and_then(JsonValue::as_array) {
        if phases.is_empty() {
            let _ = writeln!(out, "(no spans recorded)\n");
        } else {
            let _ = writeln!(out, "### Phases\n");
            render_phase_tree(out, phases, 0);
            let _ = writeln!(out);
        }
    }
    if let Some(hdr) = record.get("metrics").and_then(|m| m.get("hdr")) {
        render_hdr_metrics(out, hdr);
    }
    let rss = record
        .get("peak_rss_bytes")
        .and_then(JsonValue::as_f64)
        .map(fmt_bytes)
        .unwrap_or_else(|| "unavailable".into());
    let _ = writeln!(
        out,
        "Peak RSS: {rss} (source: {})\n",
        str_of(record, "rss_source")
    );
}

fn render_summary(out: &mut String, record: &JsonValue) {
    let _ = writeln!(out, "## Summary\n");
    if let Some(wall) = num_of(record, "wall_secs") {
        let _ = writeln!(out, "- total wall-clock: {wall:.2}s");
    }
    if let Some(rss) = num_of(record, "peak_rss_bytes") {
        let _ = writeln!(out, "- peak RSS: {}", fmt_bytes(rss));
    }
    let counters = record
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .map(|c| match c {
            JsonValue::Object(map) => map.len(),
            _ => 0,
        })
        .unwrap_or(0);
    let _ = writeln!(out, "- metrics: {counters} counters\n");
}

fn render(records: &[JsonValue]) -> String {
    let mut out = String::new();
    for record in records {
        match record_type(record) {
            "meta" => {
                let _ = writeln!(
                    out,
                    "# {} — {} scale, {} thread(s)\n",
                    str_of(record, "binary"),
                    str_of(record, "scale"),
                    num_of(record, "threads").map(fmt_num).unwrap_or_else(|| "?".into()),
                );
            }
            "table" => render_table(&mut out, record),
            "net.timeline" => render_timeline(&mut out, record),
            "suite" => {
                let _ = writeln!(
                    out,
                    "*suite {} finished in {:.2}s*\n",
                    str_of(record, "suite"),
                    num_of(record, "wall_secs").unwrap_or(0.0)
                );
            }
            "report" => render_report(&mut out, record),
            "summary" => render_summary(&mut out, record),
            other => {
                let _ = writeln!(out, "*(unrecognized record type {other:?})*\n");
            }
        }
    }
    out
}

/// One table's identity inside an artifact: suite plus title. Artifacts
/// never repeat the pair, so this is a stable join key for diffing.
fn table_key(record: &JsonValue) -> String {
    format!(
        "{} — {}",
        str_of(record, "suite"),
        record
            .get("title")
            .and_then(JsonValue::as_str)
            .unwrap_or("(untitled)")
    )
}

fn tables_of(records: &[JsonValue]) -> Vec<(String, &JsonValue)> {
    records
        .iter()
        .filter(|r| record_type(r) == "table")
        .map(|r| (table_key(r), r))
        .collect()
}

/// Compares two artifacts; returns human-readable differences (empty when
/// equivalent). Tables are matched by suite+title and compared cell by
/// cell; summary counters key by key. Wall-clock fields and span timings
/// are machine-dependent and deliberately ignored, and columns named in
/// `ignore` are skipped cell-wise (headers must still agree).
fn diff(a: &[JsonValue], b: &[JsonValue], ignore: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let ta = tables_of(a);
    let tb = tables_of(b);
    for (key, _) in &ta {
        if !tb.iter().any(|(k, _)| k == key) {
            out.push(format!("table only in first artifact: {key}"));
        }
    }
    for (key, _) in &tb {
        if !ta.iter().any(|(k, _)| k == key) {
            out.push(format!("table only in second artifact: {key}"));
        }
    }
    for (key, ra) in &ta {
        let Some((_, rb)) = tb.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let (ha, rows_a) = json_table(ra);
        let (hb, rows_b) = json_table(rb);
        if ha != hb {
            out.push(format!(
                "{key}: headers differ ({} vs {})",
                ha.join("/"),
                hb.join("/")
            ));
            continue;
        }
        if rows_a.len() != rows_b.len() {
            out.push(format!(
                "{key}: {} rows vs {} rows",
                rows_a.len(),
                rows_b.len()
            ));
            continue;
        }
        for (i, (row_a, row_b)) in rows_a.iter().zip(&rows_b).enumerate() {
            for (c, (cell_a, cell_b)) in row_a.iter().zip(row_b).enumerate() {
                let col = ha.get(c).map(String::as_str).unwrap_or("?");
                if ignore.iter().any(|ig| ig == col) {
                    continue;
                }
                if cell_a != cell_b {
                    out.push(format!(
                        "{key}: row {} column {col:?}: {cell_a:?} vs {cell_b:?}",
                        i + 1
                    ));
                }
            }
        }
    }

    let counters = |records: &[JsonValue]| -> Vec<(String, f64)> {
        records
            .iter()
            .rev()
            .find(|r| record_type(r) == "summary")
            .and_then(|s| s.get("metrics"))
            .and_then(|m| m.get("counters"))
            .and_then(|c| match c {
                JsonValue::Object(map) => Some(
                    map.iter()
                        .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                        .collect(),
                ),
                _ => None,
            })
            .unwrap_or_default()
    };
    let ca = counters(a);
    let cb = counters(b);
    for (k, va) in &ca {
        match cb.iter().find(|(kb, _)| kb == k) {
            Some((_, vb)) if va != vb => {
                out.push(format!("counter {k}: {va} vs {vb}"));
            }
            Some(_) => {}
            None => out.push(format!("counter only in first artifact: {k}")),
        }
    }
    for (k, _) in &cb {
        if !ca.iter().any(|(ka, _)| ka == k) {
            out.push(format!("counter only in second artifact: {k}"));
        }
    }
    out
}

fn load(path: &str) -> Result<Vec<JsonValue>, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_artifact(&contents).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [path] => match load(path) {
            Ok(records) => {
                print!("{}", render(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        [flag, rest @ ..] if flag == "--diff" => {
            let (paths, ignore): (&[String], Vec<String>) = match rest {
                [_, _] => (rest, Vec::new()),
                [_, _, ig_flag, cols] if ig_flag == "--ignore" => (
                    &rest[..2],
                    cols.split(',')
                        .map(|c| c.trim().to_string())
                        .filter(|c| !c.is_empty())
                        .collect(),
                ),
                _ => {
                    eprintln!(
                        "usage: swreport --diff <a.jsonl> <b.jsonl> [--ignore \"col1,col2\"]"
                    );
                    return ExitCode::from(2);
                }
            };
            let (ra, rb) = match (load(&paths[0]), load(&paths[1])) {
                (Ok(ra), Ok(rb)) => (ra, rb),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let (a, b) = (&paths[0], &paths[1]);
            let differences = diff(&ra, &rb, &ignore);
            if differences.is_empty() {
                println!("{a} and {b}: equivalent (tables and counters match)");
                ExitCode::SUCCESS
            } else {
                println!("{a} vs {b}: {} difference(s)", differences.len());
                for d in &differences {
                    println!("  - {d}");
                }
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: swreport <artifact.jsonl>");
            eprintln!("       swreport --diff <a.jsonl> <b.jsonl> [--ignore \"col1,col2\"]");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact(delivered: &str) -> Vec<JsonValue> {
        let lines = [
            r#"{"type":"meta","binary":"exp_traffic","scale":"quick","threads":4,"rss_source":"procfs"}"#.to_string(),
            format!(
                r#"{{"type":"table","suite":"E15 traffic","title":"T","headers":["load","delivered"],"rows":[["0.50","{delivered}"]]}}"#
            ),
            r#"{"type":"net.timeline","suite":"E15 traffic","label":"load=0.50","interval":16,"headers":["at","queued","in_flight","delivered","dropped"],"samples":[[16,1,2,0,0],[32,0,0,3,0]]}"#.to_string(),
            r#"{"type":"suite","suite":"E15 traffic","wall_secs":0.5,"metrics":{"counters":{}},"spans":{}}"#.to_string(),
            r#"{"type":"report","phases":[{"name":"run","path":"run","count":1,"total_ns":5000000,"self_ns":1000000,"children":[]}],"metrics":{"counters":{},"histograms":{},"hdr":{"route.hops":{"count":2,"sum":10,"min":4,"max":6,"mean":5.0,"quantiles":{"p50":4,"p90":6,"p99":6,"p999":6},"buckets":[[4,1],[6,1]]}}},"peak_rss_bytes":1048576,"rss_source":"procfs"}"#.to_string(),
            r#"{"type":"summary","wall_secs":0.6,"peak_rss_bytes":1048576,"metrics":{"counters":{"net.injected":6}}}"#.to_string(),
        ];
        lines
            .iter()
            .map(|l| JsonValue::parse(l).expect("sample line parses"))
            .collect()
    }

    #[test]
    fn render_covers_every_record_type() {
        let md = render(&sample_artifact("0.900"));
        assert!(md.contains("# exp_traffic — quick scale, 4 thread(s)"));
        assert!(md.contains("## E15 traffic — T"));
        assert!(md.contains("| 0.50 | 0.900 |"));
        assert!(md.contains("## Timeline: E15 traffic [load=0.50]"));
        assert!(md.contains("| 16 | 1 | 2 | 0 | 0 |"));
        assert!(md.contains("### Phases"));
        assert!(md.contains("**run** ×1 — total 5.0ms, self 1.0ms"));
        assert!(md.contains("| route.hops | 2 |"));
        assert!(md.contains("Peak RSS: 1.0 MiB (source: procfs)"));
        assert!(md.contains("## Summary"));
    }

    #[test]
    fn diff_reports_cell_and_counter_changes() {
        let a = sample_artifact("0.900");
        let b = sample_artifact("0.950");
        assert!(diff(&a, &a, &[]).is_empty());
        let differences = diff(&a, &b, &[]);
        assert_eq!(differences.len(), 1);
        assert!(differences[0].contains("\"delivered\""));
        assert!(differences[0].contains("\"0.900\" vs \"0.950\""));
    }

    #[test]
    fn ignored_columns_are_skipped() {
        let a = sample_artifact("0.900");
        let b = sample_artifact("0.950");
        let ignore = vec!["delivered".to_string()];
        assert!(diff(&a, &b, &ignore).is_empty());
        // ignoring an unrelated column still reports the difference
        let other = vec!["load".to_string()];
        assert_eq!(diff(&a, &b, &other).len(), 1);
    }

    #[test]
    fn diff_reports_missing_tables() {
        let a = sample_artifact("0.900");
        let mut b = a.clone();
        b.retain(|r| record_type(r) != "table");
        let differences = diff(&a, &b, &[]);
        assert!(differences
            .iter()
            .any(|d| d.contains("only in first artifact")));
    }

    #[test]
    fn long_timelines_are_elided() {
        let samples: Vec<String> = (1..=40)
            .map(|i| format!("[{},0,0,{i},0]", i * 16))
            .collect();
        let line = format!(
            r#"{{"type":"net.timeline","suite":"S","label":"L","interval":16,"headers":["at","queued","in_flight","delivered","dropped"],"samples":[{}]}}"#,
            samples.join(",")
        );
        let record = JsonValue::parse(&line).unwrap();
        let mut out = String::new();
        render_timeline(&mut out, &record);
        assert!(out.contains("40 samples total"));
        assert!(out.contains("| … |"));
        // the final sample always survives elision
        assert!(out.contains("| 640 | 0 | 0 | 40 | 0 |"));
    }
}
