//! Runs every experiment in the DESIGN.md index (E1–E14) in sequence.
//!
//! Usage: `cargo run --release -p smallworld-bench --bin run_all [--quick|--full]`

use smallworld_bench::experiments;
use smallworld_bench::Scale;

type Suite = (&'static str, fn(Scale) -> Vec<smallworld_analysis::Table>);

fn main() {
    let scale = Scale::from_env();
    println!("=== smallworld experiment battery ({scale:?}) ===\n");
    let suites: [Suite; 12] = [
        ("E1  success probability", experiments::success::run),
        ("E2/E3 failure decay", experiments::failure_wmin::run),
        ("E4  path length", experiments::path_length::run),
        ("E5  stretch", experiments::stretch::run),
        ("E6  trajectory", experiments::trajectory::run),
        ("E7/E8 patching", experiments::patching::run),
        ("E9  relaxation", experiments::relaxation::run),
        ("E10 hyperbolic", experiments::hyperbolic::run),
        ("E11 geometric routing", experiments::geometric::run),
        ("E12 kleinberg", experiments::kleinberg::run),
        ("E13 robustness", experiments::robustness::run),
        ("E14 structure", experiments::structure::run),
    ];
    for (name, run) in suites {
        println!(">>> {name}");
        let start = std::time::Instant::now();
        let tables = run(scale);
        println!(
            "<<< {name}: {} table(s) in {:.1}s\n",
            tables.len(),
            start.elapsed().as_secs_f64()
        );
    }
}
