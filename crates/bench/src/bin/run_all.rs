//! Runs every experiment in the DESIGN.md index (E1–E15) in sequence.
//!
//! Usage:
//! `cargo run --release -p smallworld-bench --bin run_all [--quick|--full] [--json <path>]`
//!
//! With `--json <path>` (or `SMALLWORLD_JSON=<path>`) the battery also
//! writes a JSONL artifact: every suite's tables, wall-clock seconds,
//! metric deltas (routing hops, dead ends, …) and span timings, plus a
//! final summary with total runtime and peak RSS.

use smallworld_bench::experiments;
use smallworld_bench::{Artifact, Scale};

type Suite = (&'static str, fn(Scale) -> Vec<smallworld_analysis::Table>);

fn main() {
    let scale = Scale::from_env();
    println!("=== smallworld experiment battery ({scale:?}) ===\n");
    let artifact = Artifact::open("run_all", scale);
    if let Some(path) = artifact.path() {
        println!("writing JSONL artifact to {}\n", path.display());
    }
    let suites: [Suite; 13] = [
        ("E1  success probability", experiments::success::run),
        ("E2/E3 failure decay", experiments::failure_wmin::run),
        ("E4  path length", experiments::path_length::run),
        ("E5  stretch", experiments::stretch::run),
        ("E6  trajectory", experiments::trajectory::run),
        ("E7/E8 patching", experiments::patching::run),
        ("E9  relaxation", experiments::relaxation::run),
        ("E10 hyperbolic", experiments::hyperbolic::run),
        ("E11 geometric routing", experiments::geometric::run),
        ("E12 kleinberg", experiments::kleinberg::run),
        ("E13 robustness", experiments::robustness::run),
        ("E14 structure", experiments::structure::run),
        ("E15 traffic", experiments::traffic::run),
    ];
    for (name, run) in suites {
        println!(">>> {name}");
        let (tables, wall_secs) = artifact.run_suite(name, scale, run);
        println!("<<< {name}: {} table(s) in {wall_secs:.1}s\n", tables.len());
    }
    artifact.finish();
}
