//! Regenerates the `relaxation` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_relaxation [--quick|--full]`

use smallworld_bench::experiments::relaxation;
use smallworld_bench::Scale;

fn main() {
    let _ = relaxation::run(Scale::from_env());
}
