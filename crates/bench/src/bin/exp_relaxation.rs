//! Regenerates the `relaxation` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_relaxation [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::relaxation;

fn main() {
    let _ = run_single_suite("exp_relaxation", "relaxation", relaxation::run);
}
