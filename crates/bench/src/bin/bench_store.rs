//! On-disk store benchmark: compression ratio, write throughput, and
//! load-vs-resample wall time of the `.swg` graph store.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_store -- \
//!     --json artifacts/BENCH_store.json             # full: 1M vertices
//! SMALLWORLD_SCALE=quick cargo run --release -p smallworld-bench --bin bench_store
//! ```
//!
//! One GIRG is sampled (that wall time is the resample baseline every
//! experiment pays today), Morton-relabeled so neighbor id-gaps are small,
//! and written to a `.swg` store at each shard count. The store is then
//! reopened both ways — memory-mapped and through the read-into-buffer
//! fallback — and fully decoded back to a [`Girg`] (best of
//! [`LOAD_REPS`] repetitions, since loads are the amortized steady
//! state), asserting equality
//! with the original so the numbers can never come from a short-circuited
//! load.
//!
//! `artifact_check` gates the committed artifact: compressed adjacency
//! bytes must be strictly below the raw CSR footprint in every row, and at
//! full scale the mmap reload must be at least 10× faster than resampling
//! (the acceptance bar for replacing resample-per-experiment with
//! generate-once/load-many). Peak RSS lands in the summary record via the
//! usual artifact plumbing.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::Table;
use smallworld_bench::{Artifact, Scale};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_obs::Span;
use smallworld_store::GraphStore;

/// Shard counts each store is written at: the plain single-shard layout
/// and a partitioned one, to price the boundary tables in.
const SHARD_COUNTS: [usize; 2] = [1, 8];

/// Repetitions per load measurement; the minimum is reported, since the
/// store exists to amortize one write across many loads.
const LOAD_REPS: usize = 3;

struct Measurement {
    shards: usize,
    edges: usize,
    raw_bytes: usize,
    compressed_bytes: usize,
    file_bytes: u64,
    write_secs: f64,
    open_secs: f64,
    load_secs: f64,
    buffered_load_secs: f64,
    zero_copy: bool,
    boundary_edges: usize,
}

fn measure(girg: &Girg<2>, shards: usize, dir: &std::path::Path) -> Measurement {
    let path = dir.join(format!("bench-store-{shards}.swg"));

    let start = Instant::now();
    let stats = {
        let _span = Span::enter("write_swg");
        smallworld_store::save_girg(girg, &path, shards)
            .expect("writable temp dir")
            .expect(".swg path takes the binary format")
    };
    let write_secs = start.elapsed().as_secs_f64();

    // mmap open + full decode, min over a few repetitions: the target
    // workload is generate-once/load-MANY, so steady state is the number
    // that matters (the first iteration pays one-time page-fault and
    // allocator warm-up that every later load skips)
    let mut open_secs = f64::INFINITY;
    let mut load_secs = f64::INFINITY;
    let mut zero_copy = false;
    let mut boundary_edges = 0;
    for _ in 0..LOAD_REPS {
        let start = Instant::now();
        let store = {
            let _span = Span::enter("open_swg");
            GraphStore::open(&path).expect("own file reopens")
        };
        let this_open = start.elapsed().as_secs_f64();
        zero_copy = store.is_zero_copy();

        let start = Instant::now();
        let loaded: Girg<2> = {
            let _span = Span::enter("load_girg");
            store.load_girg().expect("own file loads")
        };
        let this_load = this_open + start.elapsed().as_secs_f64();
        assert_eq!(loaded.graph(), girg.graph(), "loaded adjacency must match");
        assert_eq!(loaded.weights(), girg.weights(), "loaded weights must match");
        if this_load < load_secs {
            (open_secs, load_secs) = (this_open, this_load);
        }

        boundary_edges = if shards > 1 {
            let sharded = store.load_shards().expect("shards were written");
            sharded.boundary_edge_count()
        } else {
            0
        };
    }

    // the portable fallback: full read into an owned buffer, same checks
    let mut buffered_load_secs = f64::INFINITY;
    for _ in 0..LOAD_REPS {
        let start = Instant::now();
        let buffered: Girg<2> = GraphStore::open_buffered(&path)
            .expect("own file reopens buffered")
            .load_girg()
            .expect("own file loads buffered");
        buffered_load_secs = buffered_load_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(buffered.graph(), girg.graph());
    }

    std::fs::remove_file(&path).ok();
    Measurement {
        shards,
        edges: girg.graph().edge_count(),
        raw_bytes: stats.raw_csr_bytes,
        compressed_bytes: stats.compressed_csr_bytes,
        file_bytes: stats.file_bytes,
        write_secs,
        open_secs,
        load_secs,
        buffered_load_secs,
        zero_copy,
        boundary_edges,
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(20_000, 1_000_000);
    let artifact = Artifact::open("bench_store", scale);
    let (_, _) = artifact.run_suite("bench_store", scale, |_| {
        let start = Instant::now();
        let girg = {
            let _span = Span::enter("sample_girg");
            let mut rng = StdRng::seed_from_u64(4);
            GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample(&mut rng)
                .expect("valid benchmark configuration")
        };
        let sample_secs = start.elapsed().as_secs_f64();
        // Morton relabeling is what makes delta+varint adjacency small; it
        // is part of the write path's cost, not the resample baseline
        let girg = girg.relabel(&girg.morton_permutation());
        eprintln!(
            "sampled GIRG: {} vertices, {} edges in {sample_secs:.2}s",
            girg.node_count(),
            girg.graph().edge_count()
        );

        let dir = std::env::temp_dir();
        let mut table = Table::new([
            "shards",
            "raw B/edge",
            "swg B/edge",
            "file MiB",
            "write MB/s",
            "sample secs",
            "load secs",
            "buffered load secs",
            "speedup",
            "zero copy",
            "boundary frac",
        ])
        .title("bench_store: compressed store vs resample");
        for shards in SHARD_COUNTS {
            let m = measure(&girg, shards, &dir);
            let speedup = sample_secs / m.load_secs;
            eprintln!(
                "shards={}: {:.2} -> {:.2} B/edge, write {:.1} MB/s, \
                 load {:.3}s (open {:.3}s, buffered {:.3}s), speedup {speedup:.1}x",
                m.shards,
                m.raw_bytes as f64 / m.edges as f64,
                m.compressed_bytes as f64 / m.edges as f64,
                m.file_bytes as f64 / 1e6 / m.write_secs,
                m.load_secs,
                m.open_secs,
                m.buffered_load_secs,
            );
            table.row([
                m.shards.to_string(),
                format!("{:.3}", m.raw_bytes as f64 / m.edges as f64),
                format!("{:.3}", m.compressed_bytes as f64 / m.edges as f64),
                format!("{:.2}", m.file_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", m.file_bytes as f64 / 1e6 / m.write_secs),
                format!("{sample_secs:.3}"),
                format!("{:.4}", m.load_secs),
                format!("{:.4}", m.buffered_load_secs),
                format!("{speedup:.2}"),
                m.zero_copy.to_string(),
                format!("{:.4}", m.boundary_edges as f64 / m.edges as f64),
            ]);
        }
        println!("{table}");
        vec![table]
    });
    artifact.finish();
}
