//! On-disk store benchmark: compression ratio, write throughput,
//! load-vs-resample wall time, decode-free routing throughput, and the
//! out-of-core sampling ladder of the `.swg` graph store.
//!
//! ```console
//! cargo run --release -p smallworld-bench --bin bench_store -- \
//!     --json artifacts/BENCH_store.json             # full: 1M vertices
//! SMALLWORLD_SCALE=quick cargo run --release -p smallworld-bench --bin bench_store
//! SMALLWORLD_FULLSCALE=1 cargo run --release -p smallworld-bench --bin bench_store
//! ```
//!
//! Three suites in one artifact:
//!
//! 1. **Compression** (unchanged): one GIRG is sampled (that wall time is
//!    the resample baseline), Morton-relabeled, written at each shard
//!    count, reopened both ways, and fully decoded back — asserting
//!    equality with the original so the numbers can never come from a
//!    short-circuited load.
//! 2. **Mapped vs decoded routing**: the same Monte-Carlo trial sequence is
//!    routed four ways — decoded CSR (`TrialBatch`), decode-free over the
//!    mapped store's LRU cursor, the eager-decode cursor (A/B), and
//!    shard-local with explicit handoff — asserting the outcomes are
//!    element-for-element identical before reporting throughput. The
//!    `vs decoded` column is the throughput fraction relative to the
//!    decoded baseline; `artifact_check` gates the mapped row at >= 0.5x
//!    at full scale.
//! 3. **Out-of-core sampling ladder**: each rung re-executes this binary
//!    as a `--ladder-child` subprocess (peak RSS via `VmHWM` is a
//!    process-wide high-water mark, so each measurement needs its own
//!    process) sampling the same seeded GIRG streamed (spill-and-merge,
//!    `sample_streamed` + `write_girg_swg_streamed`) and in-RAM
//!    (`sample` + relabel + `write_girg_swg`). Both children write
//!    byte-identical stores; the parent asserts the file sizes and edge
//!    counts agree, and reports the RSS ratio. Full scale climbs
//!    10⁶ → 10⁷, and `SMALLWORLD_FULLSCALE=1` adds the 10⁸ rung (streamed
//!    only — the in-RAM comparison would not fit the point of the
//!    exercise). `artifact_check` gates every rung's streamed peak RSS
//!    against the `O(vertices)` ceiling and, at full scale, the RSS
//!    fraction at <= 0.35.

use std::process::Command;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_analysis::Table;
use smallworld_bench::{
    mapped_trials, split_seed, Artifact, RoutingAggregate, Scale, TrialBatch, TrialOutcome,
};
use smallworld_core::greedy::DEFAULT_MAX_STEPS;
use smallworld_core::{
    route_sharded, GirgObjective, GreedyRouter, Objective, PackedGirgObjective, ShardSlice,
};
use smallworld_graph::{Components, Graph, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_obs::{JsonValue, Span};
use smallworld_par::Pool;
use smallworld_store::GraphStore;

/// Shard counts each store is written at: the plain single-shard layout
/// and a partitioned one, to price the boundary tables in.
const SHARD_COUNTS: [usize; 2] = [1, 8];

/// Repetitions per load measurement; the minimum is reported, since the
/// store exists to amortize one write across many loads.
const LOAD_REPS: usize = 3;

/// Shard count of the store the routing comparison runs against (the
/// sharded variant needs a partition to hand off across).
const ROUTE_SHARDS: usize = 8;

/// Sampling seed shared by every phase, so the ladder children reproduce
/// the exact graph the compression phase measured.
const SEED: u64 = 4;

/// Streamed-sampler RSS ceiling: per-vertex state (positions, weights,
/// Morton permutation, offsets index, plus transient copies) with a flat
/// allowance for the bounded run buffer, I/O buffering, and the runtime.
fn rss_ceiling_bytes(n: u64) -> u64 {
    120 * n + 192 * 1024 * 1024
}

struct Measurement {
    shards: usize,
    edges: usize,
    raw_bytes: usize,
    compressed_bytes: usize,
    file_bytes: u64,
    write_secs: f64,
    open_secs: f64,
    load_secs: f64,
    buffered_load_secs: f64,
    zero_copy: bool,
    boundary_edges: usize,
}

fn measure(girg: &Girg<2>, shards: usize, dir: &std::path::Path) -> Measurement {
    let path = dir.join(format!("bench-store-{shards}.swg"));

    let start = Instant::now();
    let stats = {
        let _span = Span::enter("write_swg");
        smallworld_store::save_girg(girg, &path, shards)
            .expect("writable temp dir")
            .expect(".swg path takes the binary format")
    };
    let write_secs = start.elapsed().as_secs_f64();

    // mmap open + full decode, min over a few repetitions: the target
    // workload is generate-once/load-MANY, so steady state is the number
    // that matters (the first iteration pays one-time page-fault and
    // allocator warm-up that every later load skips)
    let mut open_secs = f64::INFINITY;
    let mut load_secs = f64::INFINITY;
    let mut zero_copy = false;
    let mut boundary_edges = 0;
    for _ in 0..LOAD_REPS {
        let start = Instant::now();
        let store = {
            let _span = Span::enter("open_swg");
            GraphStore::open(&path).expect("own file reopens")
        };
        let this_open = start.elapsed().as_secs_f64();
        zero_copy = store.is_zero_copy();

        let start = Instant::now();
        let loaded: Girg<2> = {
            let _span = Span::enter("load_girg");
            store.load_girg().expect("own file loads")
        };
        let this_load = this_open + start.elapsed().as_secs_f64();
        assert_eq!(loaded.graph(), girg.graph(), "loaded adjacency must match");
        assert_eq!(loaded.weights(), girg.weights(), "loaded weights must match");
        if this_load < load_secs {
            (open_secs, load_secs) = (this_open, this_load);
        }

        boundary_edges = if shards > 1 {
            let sharded = store.load_shards().expect("shards were written");
            sharded.boundary_edge_count()
        } else {
            0
        };
    }

    // the portable fallback: full read into an owned buffer, same checks
    let mut buffered_load_secs = f64::INFINITY;
    for _ in 0..LOAD_REPS {
        let start = Instant::now();
        let buffered: Girg<2> = GraphStore::open_buffered(&path)
            .expect("own file reopens buffered")
            .load_girg()
            .expect("own file loads buffered");
        buffered_load_secs = buffered_load_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(buffered.graph(), girg.graph());
    }

    std::fs::remove_file(&path).ok();
    Measurement {
        shards,
        edges: girg.graph().edge_count(),
        raw_bytes: stats.raw_csr_bytes,
        compressed_bytes: stats.compressed_csr_bytes,
        file_bytes: stats.file_bytes,
        write_secs,
        open_secs,
        load_secs,
        buffered_load_secs,
        zero_copy,
        boundary_edges,
    }
}

/// Draws the trial endpoint sequence exactly as `TrialBatch` (and
/// `mapped_trials`) does: per-trial seeded RNG, connected-only redraws.
fn draw_connected_pairs(
    n: usize,
    comps: &Components,
    pairs: usize,
    master_seed: u64,
) -> Vec<(NodeId, NodeId)> {
    (0..pairs)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(split_seed(master_seed, i as u64));
            loop {
                let s = NodeId::from_index(rng.gen_range(0..n));
                let t = NodeId::from_index(rng.gen_range(0..n));
                if t == s {
                    continue;
                }
                if !comps.same_component(s, t) {
                    continue;
                }
                break (s, t);
            }
        })
        .collect()
}

/// Routes one trial sequence four ways — decoded, mapped (lazy LRU),
/// mapped (eager A/B), and shard-local with handoff — asserting the
/// outcomes identical, and reports throughput for each.
fn routing_table(girg: &Girg<2>, comps: &Components, scale: Scale, dir: &std::path::Path) -> Table {
    let path = dir.join("bench-store-routing.swg");
    smallworld_store::save_girg(girg, &path, ROUTE_SHARDS)
        .expect("writable temp dir")
        .expect(".swg path takes the binary format");
    let store = GraphStore::open(&path).expect("own file reopens");
    let mapped = store.mapped_graph().expect("own file maps");
    let positions = store.packed_positions().expect("geometry present");
    let weights = store.packed_weights().expect("weights present");
    let (params, _) = store.params().expect("params present");
    let packed = PackedGirgObjective::<2>::new(&positions, &weights, params.wmin * params.intensity);

    let pairs = scale.pick(2_000, 10_000);
    let seed = 11;
    let pool = Pool::from_env();

    let start = Instant::now();
    let decoded = {
        let _span = Span::enter("route_decoded");
        TrialBatch::new(girg.graph(), comps, pairs)
            .connected_only(true)
            .run(&GreedyRouter::new(), &GirgObjective::new(girg), seed, &pool)
    };
    let decoded_secs = start.elapsed().as_secs_f64();

    let mut variants: Vec<(&str, Vec<TrialOutcome>, f64, u64)> =
        vec![("decoded", decoded.clone(), decoded_secs, 0)];

    for (label, eager) in [("mapped", false), ("mapped eager", true)] {
        let start = Instant::now();
        let got = {
            let _span = Span::enter("route_mapped");
            mapped_trials(&mapped, comps, &packed, pairs, seed, &pool, eager)
        };
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            got.outcomes, decoded,
            "{label} routing diverged from the decoded baseline"
        );
        eprintln!(
            "{label}: LRU {} hits / {} misses",
            got.lru_hits, got.lru_misses
        );
        variants.push((label, got.outcomes, secs, 0));
    }

    // shard-local routing with explicit cross-shard handoff, over the
    // store's own partition
    let sharded_store = store.load_shards().expect("shards were written");
    let locals: Vec<Graph> = sharded_store
        .shards()
        .iter()
        .map(|s| s.local_graph().expect("shard decodes"))
        .collect();
    let mut slices: Vec<ShardSlice<'_, &Graph>> = sharded_store
        .shards()
        .iter()
        .zip(&locals)
        .map(|(s, local)| ShardSlice {
            start: s.spec().nodes.start,
            end: s.spec().nodes.end,
            local,
            boundary: s.boundary(),
        })
        .collect();
    let endpoints = draw_connected_pairs(girg.node_count(), comps, pairs, seed);
    let start = Instant::now();
    let mut handoffs = 0u64;
    let sharded: Vec<TrialOutcome> = {
        let _span = Span::enter("route_sharded");
        endpoints
            .iter()
            .map(|&(s, t)| {
                let kernel = packed.prepare(t);
                let route = route_sharded(&mut slices, &kernel, s, DEFAULT_MAX_STEPS);
                handoffs += route.handoffs;
                TrialOutcome {
                    success: route.record.is_success(),
                    hops: route.record.hops(),
                    stretch: None,
                    same_component: true,
                }
            })
            .collect()
    };
    let sharded_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        sharded, decoded,
        "sharded routing diverged from the decoded baseline"
    );
    variants.push((
        "sharded x8",
        sharded,
        sharded_secs,
        handoffs,
    ));

    std::fs::remove_file(&path).ok();

    let mut table = Table::new([
        "variant",
        "pairs",
        "success rate",
        "mean hops",
        "route secs",
        "routes/s",
        "vs decoded",
        "handoffs",
    ])
    .title("bench_store: mapped vs decoded routing");
    for (label, outcomes, secs, handoffs) in &variants {
        let agg = RoutingAggregate::from_trials(outcomes.iter());
        let frac = decoded_secs / secs;
        eprintln!(
            "{label}: {pairs} pairs in {secs:.3}s ({:.0} routes/s, {frac:.2}x decoded, \
             {handoffs} handoffs)",
            pairs as f64 / secs,
        );
        table.row([
            label.to_string(),
            pairs.to_string(),
            format!("{:.4}", agg.success.rate()),
            format!("{:.3}", agg.hops.mean()),
            format!("{secs:.4}"),
            format!("{:.0}", pairs as f64 / secs),
            format!("{frac:.3}"),
            handoffs.to_string(),
        ]);
    }
    table
}

/// One ladder child's measurements, parsed from its JSON line.
struct ChildStats {
    secs: f64,
    peak_rss: u64,
    file_bytes: u64,
    spill_bytes: u64,
    edges: u64,
}

fn run_ladder_child(mode: &str, n: u64) -> ChildStats {
    let exe = std::env::current_exe().expect("own executable path");
    let out = Command::new(exe)
        .args(["--ladder-child", mode, &n.to_string(), &SEED.to_string()])
        .output()
        .expect("ladder child spawns");
    assert!(
        out.status.success(),
        "ladder child {mode} n={n} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    let v = JsonValue::parse(line).unwrap_or_else(|e| {
        panic!("ladder child {mode} n={n} printed invalid JSON {line:?}: {e}")
    });
    let field = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("ladder child output missing {name:?}"))
    };
    ChildStats {
        secs: field("secs"),
        peak_rss: field("peak_rss_bytes") as u64,
        file_bytes: field("file_bytes") as u64,
        spill_bytes: field("spill_bytes") as u64,
        edges: field("edges") as u64,
    }
}

/// The subprocess body behind `--ladder-child <mode> <n> <seed>`: samples
/// and persists one GIRG, prints one JSON line of measurements to stdout,
/// and exits. Runs in its own process so `VmHWM` reflects exactly one
/// sampling strategy.
fn ladder_child(args: &[String]) -> ! {
    let usage = "usage: bench_store --ladder-child <streamed|inram> <n> <seed>";
    let (mode, n, seed) = match args {
        [mode, n, seed] => (
            mode.as_str(),
            n.parse::<u64>().expect(usage),
            seed.parse::<u64>().expect(usage),
        ),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "swladder-{}-{mode}-{n}.swg",
        std::process::id()
    ));
    let start = Instant::now();
    let (file_bytes, spill_bytes, edges) = match mode {
        "streamed" => {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample = GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample_streamed(&mut rng, &dir)
                .expect("valid ladder configuration");
            let spill_bytes = sample.spill_bytes();
            let edges = sample.edge_count() as u64;
            let stats = smallworld_store::write_girg_swg_streamed(&sample, &path)
                .expect("writable temp dir");
            (stats.file_bytes, spill_bytes, edges)
        }
        "inram" => {
            let mut rng = StdRng::seed_from_u64(seed);
            let girg = GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample(&mut rng)
                .expect("valid ladder configuration");
            let girg = girg.relabel(&girg.morton_permutation());
            let stats = smallworld_store::save_girg(&girg, &path, 1)
                .expect("writable temp dir")
                .expect(".swg path takes the binary format");
            (stats.file_bytes, 0, girg.graph().edge_count() as u64)
        }
        other => {
            eprintln!("unknown ladder mode {other:?}; {usage}");
            std::process::exit(2);
        }
    };
    let secs = start.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();
    let peak = smallworld_obs::peak_rss_bytes().unwrap_or(0);
    println!(
        "{}",
        JsonValue::object([
            ("mode", JsonValue::from(mode)),
            ("n", JsonValue::from(n)),
            ("secs", JsonValue::from(secs)),
            ("peak_rss_bytes", JsonValue::from(peak)),
            ("file_bytes", JsonValue::from(file_bytes)),
            ("spill_bytes", JsonValue::from(spill_bytes)),
            ("edges", JsonValue::from(edges)),
        ])
    );
    std::process::exit(0);
}

/// The out-of-core sampling ladder: streamed vs in-RAM peak RSS per rung,
/// measured in subprocesses. `SMALLWORLD_FULLSCALE=1` appends the 10⁸
/// rung, streamed only.
fn ladder_table(scale: Scale) -> Table {
    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    let mut rungs: Vec<(u64, bool)> = scale
        .pick(vec![100_000u64], vec![1_000_000, 10_000_000])
        .into_iter()
        .map(|n| (n, true))
        .collect();
    if std::env::var("SMALLWORLD_FULLSCALE").as_deref() == Ok("1") {
        rungs.push((100_000_000, false));
    }
    let mut table = Table::new([
        "vertices",
        "streamed secs",
        "streamed peak MiB",
        "in-RAM secs",
        "in-RAM peak MiB",
        "rss frac",
        "spill MiB",
        "file MiB",
        "ceiling MiB",
        "within ceiling",
    ])
    .title("bench_store: out-of-core sampling ladder");
    for (n, compare_in_ram) in rungs {
        eprintln!("ladder rung n={n}: sampling streamed (subprocess)...");
        let streamed = {
            let _span = Span::enter("ladder_streamed");
            run_ladder_child("streamed", n)
        };
        let inram = if compare_in_ram {
            eprintln!("ladder rung n={n}: sampling in-RAM (subprocess)...");
            let inram = {
                let _span = Span::enter("ladder_inram");
                run_ladder_child("inram", n)
            };
            // both children persist the same sample; the streamed writer is
            // byte-identical to the in-RAM one, so sizes must agree exactly
            assert_eq!(
                streamed.file_bytes, inram.file_bytes,
                "streamed and in-RAM stores differ at n={n}"
            );
            assert_eq!(streamed.edges, inram.edges, "edge counts differ at n={n}");
            Some(inram)
        } else {
            None
        };
        let ceiling = rss_ceiling_bytes(n);
        let within = streamed.peak_rss <= ceiling;
        let frac = inram
            .as_ref()
            .map(|i| streamed.peak_rss as f64 / i.peak_rss as f64)
            .unwrap_or(0.0);
        eprintln!(
            "ladder rung n={n}: streamed {:.1} MiB peak in {:.1}s vs in-RAM {} \
             (frac {frac:.2}, spill {:.1} MiB, ceiling {:.0} MiB, within={within})",
            mib(streamed.peak_rss),
            streamed.secs,
            inram
                .as_ref()
                .map(|i| format!("{:.1} MiB in {:.1}s", mib(i.peak_rss), i.secs))
                .unwrap_or_else(|| "(skipped)".into()),
            mib(streamed.spill_bytes),
            mib(ceiling),
        );
        table.row([
            n.to_string(),
            format!("{:.3}", streamed.secs),
            format!("{:.1}", mib(streamed.peak_rss)),
            inram
                .as_ref()
                .map(|i| format!("{:.3}", i.secs))
                .unwrap_or_else(|| "0.000".into()),
            inram
                .as_ref()
                .map(|i| format!("{:.1}", mib(i.peak_rss)))
                .unwrap_or_else(|| "0.0".into()),
            format!("{frac:.4}"),
            format!("{:.1}", mib(streamed.spill_bytes)),
            format!("{:.1}", mib(streamed.file_bytes)),
            format!("{:.0}", mib(ceiling)),
            within.to_string(),
        ]);
    }
    table
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--ladder-child") {
        ladder_child(&args[1..]);
    }

    let scale = Scale::from_env();
    let n = scale.pick(20_000, 1_000_000);
    let artifact = Artifact::open("bench_store", scale);
    let (_, _) = artifact.run_suite("bench_store", scale, |_| {
        let start = Instant::now();
        let girg = {
            let _span = Span::enter("sample_girg");
            let mut rng = StdRng::seed_from_u64(SEED);
            GirgBuilder::<2>::new(n)
                .beta(2.5)
                .alpha(2.0)
                .sample(&mut rng)
                .expect("valid benchmark configuration")
        };
        let sample_secs = start.elapsed().as_secs_f64();
        // Morton relabeling is what makes delta+varint adjacency small; it
        // is part of the write path's cost, not the resample baseline
        let girg = girg.relabel(&girg.morton_permutation());
        eprintln!(
            "sampled GIRG: {} vertices, {} edges in {sample_secs:.2}s",
            girg.node_count(),
            girg.graph().edge_count()
        );

        let dir = std::env::temp_dir();
        let mut table = Table::new([
            "shards",
            "raw B/edge",
            "swg B/edge",
            "file MiB",
            "write MB/s",
            "sample secs",
            "load secs",
            "buffered load secs",
            "speedup",
            "zero copy",
            "boundary frac",
        ])
        .title("bench_store: compressed store vs resample");
        for shards in SHARD_COUNTS {
            let m = measure(&girg, shards, &dir);
            let speedup = sample_secs / m.load_secs;
            eprintln!(
                "shards={}: {:.2} -> {:.2} B/edge, write {:.1} MB/s, \
                 load {:.3}s (open {:.3}s, buffered {:.3}s), speedup {speedup:.1}x",
                m.shards,
                m.raw_bytes as f64 / m.edges as f64,
                m.compressed_bytes as f64 / m.edges as f64,
                m.file_bytes as f64 / 1e6 / m.write_secs,
                m.load_secs,
                m.open_secs,
                m.buffered_load_secs,
            );
            table.row([
                m.shards.to_string(),
                format!("{:.3}", m.raw_bytes as f64 / m.edges as f64),
                format!("{:.3}", m.compressed_bytes as f64 / m.edges as f64),
                format!("{:.2}", m.file_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", m.file_bytes as f64 / 1e6 / m.write_secs),
                format!("{sample_secs:.3}"),
                format!("{:.4}", m.load_secs),
                format!("{:.4}", m.buffered_load_secs),
                format!("{speedup:.2}"),
                m.zero_copy.to_string(),
                format!("{:.4}", m.boundary_edges as f64 / m.edges as f64),
            ]);
        }
        println!("{table}");

        let comps = Components::compute(girg.graph());
        let routing = routing_table(&girg, &comps, scale, &dir);
        println!("{routing}");

        let ladder = ladder_table(scale);
        println!("{ladder}");

        vec![table, routing, ladder]
    });
    artifact.finish();
}
