//! Regenerates the `path_length` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_path_length [--quick|--full]`

use smallworld_bench::experiments::path_length;
use smallworld_bench::Scale;

fn main() {
    let _ = path_length::run(Scale::from_env());
}
