//! Regenerates the `path_length` experiment tables (see DESIGN.md's index).
//!
//! Usage: `cargo run --release -p smallworld-bench --bin exp_path_length [--quick|--full] [--json <path>]`

use smallworld_bench::artifact::run_single_suite;
use smallworld_bench::experiments::path_length;

fn main() {
    let _ = run_single_suite("exp_path_length", "path_length", path_length::run);
}
