//! Decode-free Monte-Carlo routing trials over a memory-mapped store.
//!
//! [`mapped_trials`] is the [`TrialBatch`](crate::TrialBatch) twin for a
//! [`MappedGraph`]: trial `i`'s endpoint pair and route are the same pure
//! function of `(store, master_seed, i)` that the decoded batch computes —
//! identical per-trial RNG seeding ([`split_seed`]), identical
//! connected-only redraws, and the same first-best argmax (the packed φ
//! kernel is bitwise the point kernel, and [`ViewRouter`] runs the
//! identical greedy loop) — so the outcome vector equals the decoded run's
//! element for element while the adjacency never leaves the mmap. Both
//! `girg_gen --mapped` and `bench_store`'s throughput comparison route
//! through this one function, and `bench_store` asserts the equality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_core::{MetricsRouteObserver, Objective, PackedGirgObjective, RouteScratch, ViewRouter};
use smallworld_graph::{Components, NodeId};
use smallworld_par::{chunk_ranges, Pool};
use smallworld_store::MappedGraph;

use crate::harness::{split_seed, TrialOutcome};

/// The result of a decode-free trial batch: the outcomes (bitwise those of
/// the decoded [`TrialBatch`](crate::TrialBatch) run) plus the mapped
/// cursor's LRU cache activity summed over all worker chunks.
#[derive(Clone, Debug)]
pub struct MappedTrials {
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<TrialOutcome>,
    /// Adjacency blocks served from the decode LRU.
    pub lru_hits: u64,
    /// Adjacency blocks decoded on demand.
    pub lru_misses: u64,
}

/// Routes `pairs` connected-only trials straight off `mapped`, fanned out
/// over `pool` in per-trial-seeded chunks exactly like
/// [`TrialBatch::run`](crate::TrialBatch::run). With `eager` set, each
/// worker pre-decodes the full adjacency once (the A/B baseline); otherwise
/// neighbor lists decode on demand through the per-worker LRU cursor.
///
/// # Panics
///
/// Panics if the graph has fewer than two vertices, if no two vertices
/// share a component, or (with `eager`) if the mapped adjacency fails to
/// decode — all sampler/store bugs, not caller errors.
pub fn mapped_trials<const D: usize>(
    mapped: &MappedGraph<'_>,
    comps: &Components,
    objective: &PackedGirgObjective<'_, D>,
    pairs: usize,
    master_seed: u64,
    pool: &Pool,
    eager: bool,
) -> MappedTrials {
    let n = mapped.node_count();
    assert!(n >= 2, "need at least two vertices to route");
    assert!(
        comps.largest_size() >= 2,
        "no two vertices share a component"
    );
    let chunks = chunk_ranges(pairs, pool.threads().saturating_mul(4));
    let per_chunk = pool.map_items(chunks, |_, range| {
        let mut cursor = if eager {
            mapped.cursor_eager().expect("mapped adjacency decodes")
        } else {
            mapped.cursor()
        };
        let mut scratch = RouteScratch::with_path_capacity(32);
        let mut obs = MetricsRouteObserver::new();
        let hop_hdr = smallworld_obs::metrics::hdr("route.hops");
        let router = ViewRouter::new();
        // draw every trial's endpoints exactly as TrialBatch does: the
        // RNG stream per trial is untouched by chunking or threading
        let endpoints: Vec<(NodeId, NodeId)> = range
            .clone()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(split_seed(master_seed, i as u64));
                loop {
                    let s = NodeId::from_index(rng.gen_range(0..n));
                    let t = NodeId::from_index(rng.gen_range(0..n));
                    if t == s {
                        continue;
                    }
                    if !comps.same_component(s, t) {
                        continue;
                    }
                    break (s, t);
                }
            })
            .collect();
        let prepared = objective.prepare_batch(endpoints.iter().map(|&(_, t)| t));
        let mut out = Vec::with_capacity(range.len());
        for (k, &(s, _)) in endpoints.iter().enumerate() {
            let record = router.route_view(&mut cursor, prepared.kernel(k), s, &mut obs, &mut scratch);
            if record.is_success() {
                hop_hdr.record(record.hops() as u64);
            }
            out.push(TrialOutcome {
                success: record.is_success(),
                hops: record.hops(),
                stretch: None,
                same_component: true,
            });
            scratch.recycle(record.path);
        }
        (out, cursor.hits(), cursor.misses())
    });
    let mut outcomes = Vec::with_capacity(pairs);
    let (mut lru_hits, mut lru_misses) = (0u64, 0u64);
    for (chunk, hits, misses) in per_chunk {
        outcomes.extend(chunk);
        lru_hits += hits;
        lru_misses += misses;
    }
    MappedTrials {
        outcomes,
        lru_hits,
        lru_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrialBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smallworld_core::{GirgObjective, GreedyRouter};
    use smallworld_models::girg::GirgBuilder;
    use smallworld_store::GraphStore;

    /// The headline equivalence: decode-free trials over a mapped store
    /// equal the decoded TrialBatch run element for element, lazy and
    /// eager, at 1 and 3 threads.
    #[test]
    fn mapped_trials_match_decoded_trial_batch() {
        let mut rng = StdRng::seed_from_u64(41);
        let girg = GirgBuilder::<2>::new(1_500).sample(&mut rng).unwrap();
        let girg = girg.relabel(&girg.morton_permutation());
        let path = std::env::temp_dir().join(format!(
            "smallworld-bench-mapped-trials-{}.swg",
            std::process::id()
        ));
        smallworld_store::save_girg(&girg, &path, 1).unwrap();
        let store = GraphStore::open(&path).unwrap();
        let mapped = store.mapped_graph().unwrap();
        let comps = Components::compute(girg.graph());
        let positions = store.packed_positions().unwrap();
        let weights = store.packed_weights().unwrap();
        let (params, _) = store.params().unwrap();
        let packed =
            PackedGirgObjective::<2>::new(&positions, &weights, params.wmin * params.intensity);

        let decoded = TrialBatch::new(girg.graph(), &comps, 80)
            .connected_only(true)
            .run(
                &GreedyRouter::new(),
                &GirgObjective::new(&girg),
                13,
                &Pool::with_threads(1),
            );
        for threads in [1, 3] {
            let pool = Pool::with_threads(threads);
            for eager in [false, true] {
                let got = mapped_trials(&mapped, &comps, &packed, 80, 13, &pool, eager);
                assert_eq!(
                    got.outcomes, decoded,
                    "threads={threads} eager={eager}"
                );
                if eager {
                    assert_eq!(got.lru_misses, 0, "eager cursor never decodes on demand");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
