//! Deterministic seeding, parallel Monte-Carlo, and routing aggregates.

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

use smallworld_analysis::{Proportion, Summary};
use smallworld_core::{stretch, NoopObserver, Objective, RouteObserver, Router};
use smallworld_graph::{Components, Graph};

/// Experiment size: `Quick` for smoke tests / CI, `Full` for the numbers
/// recorded in `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs with reduced `n` and repetition counts.
    Quick,
    /// The full parameter grid.
    #[default]
    Full,
}

impl Scale {
    /// Parses a scale name, case-insensitively: `"quick"` or `"full"`.
    pub fn parse(value: &str) -> Option<Scale> {
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Reads the scale from the process environment and CLI arguments
    /// (`--quick` / `--full` take precedence over `SMALLWORLD_SCALE`).
    ///
    /// An unrecognized `SMALLWORLD_SCALE` value falls back to
    /// [`Scale::Full`] with a warning on stderr, instead of being silently
    /// treated as the full battery.
    pub fn from_env() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        match std::env::var("SMALLWORLD_SCALE") {
            Ok(value) => Scale::parse(&value).unwrap_or_else(|| {
                eprintln!(
                    "warning: unrecognized SMALLWORLD_SCALE={value:?} \
                     (expected \"quick\" or \"full\"); running at full scale"
                );
                Scale::Full
            }),
            Err(_) => Scale::Full,
        }
    }

    /// Picks `quick` or `full` value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// SplitMix64: derives independent per-task seeds from a master seed.
///
/// # Examples
///
/// ```
/// use smallworld_bench::split_seed;
///
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, split_seed(42, 0)); // deterministic
/// ```
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `tasks` independent jobs across available cores and collects the
/// results in task order. Each job receives its index and a seed derived
/// deterministically from `master_seed`, so runs are reproducible regardless
/// of thread scheduling.
///
/// Each task's wall-clock time is recorded in the `harness.task_ns` metrics
/// histogram (with a matching `harness.tasks` counter), so artifacts show
/// the Monte-Carlo load distribution for free.
pub fn parallel_map<T, F>(tasks: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(tasks.max(1));
    let mut results: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let task_counter = smallworld_obs::metrics::counter("harness.tasks");
    let task_timings = smallworld_obs::metrics::histogram("harness.task_ns");
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let started = std::time::Instant::now();
                    out.push((i, f(i, split_seed(master_seed, i as u64))));
                    task_counter.inc();
                    task_timings.record_duration(started.elapsed());
                }
                out
            }));
        }
        for handle in handles {
            for (i, value) in handle.join().expect("worker panicked") {
                results[i] = Some(value);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all tasks completed"))
        .collect()
}

/// The outcome of one routing trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether the packet was delivered.
    pub success: bool,
    /// Hops taken (only meaningful on success for failure-free analysis,
    /// but recorded either way).
    pub hops: usize,
    /// Stretch versus the BFS shortest path, when measured and delivered.
    pub stretch: Option<f64>,
    /// Whether source and target shared a connected component.
    pub same_component: bool,
}

/// Routes `pairs` uniformly random source/target pairs and records outcomes.
///
/// Pairs with `s == t` are redrawn. When `measure_stretch` is set, each
/// successful route also runs a bidirectional BFS.
pub fn route_random_pairs<R, O>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
{
    route_random_pairs_observed(
        graph,
        objective,
        router,
        components,
        pairs,
        measure_stretch,
        rng,
        &mut NoopObserver,
    )
}

/// Like [`route_random_pairs`], but reports every routing event to `obs`.
///
/// The observer receives the concatenated event streams of all `pairs`
/// routes, in trial order. Trial outcomes are bitwise-identical to the
/// unobserved variant for the same `rng` state.
#[allow(clippy::too_many_arguments)]
pub fn route_random_pairs_observed<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    route_pairs_impl(graph, objective, router, components, pairs, measure_stretch, false, rng, obs)
}

/// Like [`route_random_pairs`], but only pairs within one component are
/// drawn (redrawing until one is found).
///
/// Use this for backtracking patchers: on a cross-component pair they
/// correctly — but expensively — exhaust the source's component before
/// failing, which measures nothing the theorems speak about (Theorem 3.4 is
/// conditional on a shared component).
///
/// # Panics
///
/// Panics if no two vertices share a component.
pub fn route_random_connected_pairs<R, O>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
{
    route_random_connected_pairs_observed(
        graph,
        objective,
        router,
        components,
        pairs,
        measure_stretch,
        rng,
        &mut NoopObserver,
    )
}

/// Like [`route_random_connected_pairs`], but reports every routing event
/// to `obs`.
///
/// # Panics
///
/// Panics if no two vertices share a component.
#[allow(clippy::too_many_arguments)]
pub fn route_random_connected_pairs_observed<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    assert!(
        components.largest_size() >= 2,
        "no two vertices share a component"
    );
    route_pairs_impl(graph, objective, router, components, pairs, measure_stretch, true, rng, obs)
}

#[allow(clippy::too_many_arguments)]
fn route_pairs_impl<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    connected_only: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    let n = graph.node_count();
    assert!(n >= 2, "need at least two vertices to route");
    let mut out = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let (s, t) = loop {
            let s = smallworld_graph::NodeId::from_index(rng.gen_range(0..n));
            let t = smallworld_graph::NodeId::from_index(rng.gen_range(0..n));
            if t == s {
                continue;
            }
            if connected_only && !components.same_component(s, t) {
                continue;
            }
            break (s, t);
        };
        let record = router.route_observed(graph, objective, s, t, obs);
        let st = if measure_stretch {
            stretch(graph, &record)
        } else {
            None
        };
        out.push(TrialOutcome {
            success: record.is_success(),
            hops: record.hops(),
            stretch: st,
            same_component: components.same_component(s, t),
        });
    }
    out
}

/// Aggregate statistics over a set of [`TrialOutcome`]s.
#[derive(Clone, Debug, Default)]
pub struct RoutingAggregate {
    /// Delivery rate over all pairs.
    pub success: Proportion,
    /// Delivery rate conditioned on `s` and `t` sharing a component — the
    /// quantity the theorems bound.
    pub success_connected: Proportion,
    /// Hop counts of successful routes.
    pub hops: Summary,
    /// Stretch of successful routes (where measured).
    pub stretch: Summary,
}

impl RoutingAggregate {
    /// Aggregates trial outcomes.
    pub fn from_trials<'a>(trials: impl IntoIterator<Item = &'a TrialOutcome>) -> Self {
        let mut agg = RoutingAggregate::default();
        for t in trials {
            agg.success.push(t.success);
            if t.same_component {
                agg.success_connected.push(t.success);
            }
            if t.success {
                agg.hops.push(t.hops as f64);
                if let Some(s) = t.stretch {
                    agg.stretch.push(s);
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallworld_core::{GirgObjective, GreedyRouter};
    use smallworld_models::girg::GirgBuilder;

    #[test]
    fn split_seed_is_deterministic_and_spread() {
        let seeds: Vec<u64> = (0..100).map(|i| split_seed(7, i)).collect();
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 100);
        assert_eq!(seeds[3], split_seed(7, 3));
    }

    #[test]
    fn parallel_map_orders_results() {
        let out = parallel_map(50, 1, |i, seed| (i, seed));
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
            assert_eq!(*seed, split_seed(1, i as u64));
        }
    }

    #[test]
    fn parallel_map_zero_tasks() {
        let out: Vec<u64> = parallel_map(0, 1, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn scale_parse_accepts_both_names_case_insensitively() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
    }

    #[test]
    fn scale_parse_rejects_junk() {
        assert_eq!(Scale::parse(""), None);
        assert_eq!(Scale::parse("fast"), None);
        assert_eq!(Scale::parse("quick "), None);
        assert_eq!(Scale::parse("1"), None);
    }

    #[test]
    fn parallel_map_workers_share_metric_counters() {
        // every worker thread increments the same interned counter; the
        // sharded registry must not lose any increment
        let counter = smallworld_obs::metrics::counter("harness.test.parallel_incs");
        let before = counter.value();
        let tasks = 64;
        let per_task = 100u64;
        let c = &counter;
        parallel_map(tasks, 9, |_, _| {
            for _ in 0..per_task {
                c.inc();
            }
        });
        assert_eq!(counter.value() - before, tasks as u64 * per_task);
    }

    #[test]
    fn routing_trials_aggregate() {
        let mut rng = StdRng::seed_from_u64(5);
        let girg = GirgBuilder::<2>::new(1_000).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let trials = route_random_pairs(
            girg.graph(),
            &obj,
            &GreedyRouter::new(),
            &comps,
            100,
            true,
            &mut rng,
        );
        assert_eq!(trials.len(), 100);
        let agg = RoutingAggregate::from_trials(&trials);
        assert_eq!(agg.success.trials(), 100);
        assert!(agg.success_connected.trials() <= 100);
        // any successful multi-hop route has stretch >= 1
        assert!(agg.stretch.is_empty() || agg.stretch.min() >= 1.0);
    }
}
