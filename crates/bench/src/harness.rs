//! Deterministic seeding, parallel Monte-Carlo, and routing aggregates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_analysis::{Proportion, Summary};
use smallworld_core::{
    MetricsRouteObserver, NoopObserver, Objective, RouteObserver, RouteRecord, RouteScratch,
    Router,
};
use smallworld_graph::analytics::{pair_distances_with, MsBfsScratch};
use smallworld_graph::{Components, Graph, NodeId, Permutation};
use smallworld_par::{chunk_ranges, Pool};

/// Experiment size: `Quick` for smoke tests / CI, `Full` for the numbers
/// recorded in `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs with reduced `n` and repetition counts.
    Quick,
    /// The full parameter grid.
    #[default]
    Full,
}

impl Scale {
    /// Parses a scale name, case-insensitively: `"quick"` or `"full"`.
    pub fn parse(value: &str) -> Option<Scale> {
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Reads the scale from the process environment and CLI arguments
    /// (`--quick` / `--full` take precedence over `SMALLWORLD_SCALE`).
    ///
    /// An unrecognized `SMALLWORLD_SCALE` value falls back to
    /// [`Scale::Full`] with a warning on stderr, instead of being silently
    /// treated as the full battery.
    pub fn from_env() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        match std::env::var("SMALLWORLD_SCALE") {
            Ok(value) => Scale::parse(&value).unwrap_or_else(|| {
                eprintln!(
                    "warning: unrecognized SMALLWORLD_SCALE={value:?} \
                     (expected \"quick\" or \"full\"); running at full scale"
                );
                Scale::Full
            }),
            Err(_) => Scale::Full,
        }
    }

    /// Picks `quick` or `full` value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

pub use smallworld_par::split_seed;

/// Runs `tasks` independent jobs on the ambient thread pool and collects
/// the results in task order. Each job receives its index and a seed
/// derived deterministically from `master_seed` via [`split_seed`], so runs
/// are bitwise-reproducible regardless of thread scheduling — and of the
/// thread count: `SMALLWORLD_THREADS=1` produces the same results as the
/// default pool (see [`smallworld_par::Pool`]).
///
/// Each task's wall-clock time is recorded in the `harness.task_ns` metrics
/// histogram (with a matching `harness.tasks` counter), so artifacts show
/// the Monte-Carlo load distribution for free.
pub fn parallel_map<T, F>(tasks: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let task_counter = smallworld_obs::metrics::counter("harness.tasks");
    let task_timings = smallworld_obs::metrics::histogram("harness.task_ns");
    Pool::from_env().map_seeded(tasks, master_seed, |i, seed| {
        let started = std::time::Instant::now();
        let out = f(i, seed);
        task_counter.inc();
        task_timings.record_duration(started.elapsed());
        out
    })
}

/// The outcome of one routing trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether the packet was delivered.
    pub success: bool,
    /// Hops taken (only meaningful on success for failure-free analysis,
    /// but recorded either way).
    pub hops: usize,
    /// Stretch versus the BFS shortest path, when measured and delivered.
    pub stretch: Option<f64>,
    /// Whether source and target shared a connected component.
    pub same_component: bool,
}

/// Routes `pairs` uniformly random source/target pairs and records outcomes.
///
/// Pairs with `s == t` are redrawn. When `measure_stretch` is set, each
/// successful route also runs a bidirectional BFS.
pub fn route_random_pairs<R, O>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
{
    route_random_pairs_observed(
        graph,
        objective,
        router,
        components,
        pairs,
        measure_stretch,
        rng,
        &mut NoopObserver,
    )
}

/// Like [`route_random_pairs`], but reports every routing event to `obs`.
///
/// The observer receives the concatenated event streams of all `pairs`
/// routes, in trial order. Trial outcomes are bitwise-identical to the
/// unobserved variant for the same `rng` state.
#[allow(clippy::too_many_arguments)]
pub fn route_random_pairs_observed<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    route_pairs_impl(graph, objective, router, components, pairs, measure_stretch, false, rng, obs)
}

/// Like [`route_random_pairs`], but only pairs within one component are
/// drawn (redrawing until one is found).
///
/// Use this for backtracking patchers: on a cross-component pair they
/// correctly — but expensively — exhaust the source's component before
/// failing, which measures nothing the theorems speak about (Theorem 3.4 is
/// conditional on a shared component).
///
/// # Panics
///
/// Panics if no two vertices share a component.
pub fn route_random_connected_pairs<R, O>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
{
    route_random_connected_pairs_observed(
        graph,
        objective,
        router,
        components,
        pairs,
        measure_stretch,
        rng,
        &mut NoopObserver,
    )
}

/// Like [`route_random_connected_pairs`], but reports every routing event
/// to `obs`.
///
/// # Panics
///
/// Panics if no two vertices share a component.
#[allow(clippy::too_many_arguments)]
pub fn route_random_connected_pairs_observed<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    assert!(
        components.largest_size() >= 2,
        "no two vertices share a component"
    );
    route_pairs_impl(graph, objective, router, components, pairs, measure_stretch, true, rng, obs)
}

/// Like [`route_random_pairs_observed`], but both endpoints are drawn
/// uniformly from the **largest** connected component. Every drawn pair is
/// connected by construction, so a failed trial means the router got stuck
/// — disconnection is factored out entirely (report it separately, e.g. via
/// [`Components::giant_fraction`]).
///
/// # Panics
///
/// Panics if the largest component has fewer than two vertices.
#[allow(clippy::too_many_arguments)]
pub fn route_random_giant_pairs_observed<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    let giant: Vec<NodeId> = graph.nodes().filter(|&v| components.in_largest(v)).collect();
    assert!(
        giant.len() >= 2,
        "largest component has fewer than two vertices"
    );
    let mut out = Vec::with_capacity(pairs);
    let mut stretches = StretchBatch::new(measure_stretch);
    for _ in 0..pairs {
        let (s, t) = loop {
            let s = giant[rng.gen_range(0..giant.len())];
            let t = giant[rng.gen_range(0..giant.len())];
            if s != t {
                break (s, t);
            }
        };
        let record = router.route(graph, objective, s, t, obs);
        stretches.push(out.len(), &record);
        out.push(TrialOutcome {
            success: record.is_success(),
            hops: record.hops(),
            stretch: None,
            same_component: true,
        });
    }
    stretches.resolve(graph, &mut out);
    out
}

/// Deferred stretch measurement: successful routes queue their endpoints
/// here, and one [`pair_distances_with`] sweep resolves the whole batch
/// after routing. Distances are exact, so each filled-in stretch is
/// bitwise-identical to what a per-route [`stretch`] call would produce —
/// batch boundaries cannot change values.
struct StretchBatch {
    enabled: bool,
    /// `(outcome slot, hops)` aligned with `pairs`.
    slots: Vec<(usize, usize)>,
    pairs: Vec<(NodeId, NodeId)>,
}

impl StretchBatch {
    fn new(enabled: bool) -> Self {
        StretchBatch {
            enabled,
            slots: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Queues `record`'s endpoints for measurement, remembering which
    /// outcome slot the result belongs to. No-op when disabled or when the
    /// route has no defined stretch (failed or zero-hop).
    fn push(&mut self, slot: usize, record: &RouteRecord) {
        if self.enabled && record.is_success() && record.hops() > 0 {
            self.slots.push((slot, record.hops()));
            self.pairs.push((record.source(), record.last()));
        }
    }

    /// Resolves all queued distances in one MS-BFS pass and writes the
    /// stretches into `out`.
    fn resolve(self, graph: &Graph, out: &mut [TrialOutcome]) {
        let mut scratch = MsBfsScratch::new();
        self.resolve_each(graph, &mut scratch, |slot, st| out[slot].stretch = Some(st));
    }

    /// Resolves all queued distances and hands each `(slot, stretch)` to
    /// `apply`.
    fn resolve_each(
        self,
        graph: &Graph,
        scratch: &mut MsBfsScratch,
        mut apply: impl FnMut(usize, f64),
    ) {
        if self.pairs.is_empty() {
            return;
        }
        let dists = pair_distances_with(graph, &self.pairs, scratch);
        for (k, &(slot, hops)) in self.slots.iter().enumerate() {
            if let Some(d) = dists[k] {
                debug_assert!(d > 0, "distinct endpoints have positive distance");
                apply(slot, hops as f64 / d as f64);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn route_pairs_impl<R, O, Obs>(
    graph: &Graph,
    objective: &O,
    router: &R,
    components: &Components,
    pairs: usize,
    measure_stretch: bool,
    connected_only: bool,
    rng: &mut StdRng,
    obs: &mut Obs,
) -> Vec<TrialOutcome>
where
    R: Router,
    O: Objective,
    Obs: RouteObserver,
{
    let n = graph.node_count();
    assert!(n >= 2, "need at least two vertices to route");
    let mut out = Vec::with_capacity(pairs);
    let mut stretches = StretchBatch::new(measure_stretch);
    for _ in 0..pairs {
        let (s, t) = loop {
            let s = smallworld_graph::NodeId::from_index(rng.gen_range(0..n));
            let t = smallworld_graph::NodeId::from_index(rng.gen_range(0..n));
            if t == s {
                continue;
            }
            if connected_only && !components.same_component(s, t) {
                continue;
            }
            break (s, t);
        };
        let record = router.route(graph, objective, s, t, obs);
        stretches.push(out.len(), &record);
        out.push(TrialOutcome {
            success: record.is_success(),
            hops: record.hops(),
            stretch: None,
            same_component: components.same_component(s, t),
        });
    }
    stretches.resolve(graph, &mut out);
    out
}

/// A batched Monte-Carlo routing experiment fanned out over a thread pool.
///
/// Where [`route_random_pairs`] walks one RNG through all trials
/// sequentially, a batch derives an independent RNG per trial from the
/// master seed via [`split_seed`]: the drawn pair and the routing outcome of
/// trial `i` are a pure function of `(configuration, master_seed, i)`. The
/// result vector is therefore **bitwise-identical at any thread count** —
/// `SMALLWORLD_THREADS=1` reproduces the default pool exactly.
///
/// Per-hop probe counters land in the sharded global metrics registry
/// ([`smallworld_obs::metrics`]), so worker threads never contend on a
/// shared observer.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_bench::TrialBatch;
/// use smallworld_core::{GirgObjective, GreedyRouter};
/// use smallworld_graph::Components;
/// use smallworld_models::girg::GirgBuilder;
/// use smallworld_par::Pool;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let girg = GirgBuilder::<2>::new(500).sample(&mut rng)?;
/// let comps = Components::compute(girg.graph());
/// let trials = TrialBatch::new(girg.graph(), &comps, 50)
///     .run(&GreedyRouter::new(), &GirgObjective::new(&girg), 7, &Pool::from_env());
/// assert_eq!(trials.len(), 50);
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TrialBatch<'a> {
    graph: &'a Graph,
    components: &'a Components,
    pairs: usize,
    measure_stretch: bool,
    connected_only: bool,
    id_map: Option<&'a Permutation>,
}

impl<'a> TrialBatch<'a> {
    /// Configures a batch of `pairs` routing trials on `graph`.
    pub fn new(graph: &'a Graph, components: &'a Components, pairs: usize) -> Self {
        TrialBatch {
            graph,
            components,
            pairs,
            measure_stretch: false,
            connected_only: false,
            id_map: None,
        }
    }

    /// Also measure stretch (runs a BFS per successful route).
    pub fn measure_stretch(mut self, yes: bool) -> Self {
        self.measure_stretch = yes;
        self
    }

    /// Only draw pairs that share a connected component.
    pub fn connected_only(mut self, yes: bool) -> Self {
        self.connected_only = yes;
        self
    }

    /// Declares that `graph` (and the objective) live in a *relabeled* id
    /// space — typically `Girg::morton_permutation` — while reported results
    /// stay in the original one: pairs are drawn in original-id space (so
    /// the trial sequence matches an unrelabeled run seed-for-seed), mapped
    /// forward for routing, and every returned [`RouteRecord`] path is
    /// mapped back to original ids.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length mismatches the graph.
    pub fn with_id_map(mut self, perm: &'a Permutation) -> Self {
        assert_eq!(
            perm.len(),
            self.graph.node_count(),
            "permutation length must match node count"
        );
        self.id_map = Some(perm);
        self
    }

    /// Runs the batch on `pool`, collecting outcomes in trial order.
    ///
    /// Routing paths are recycled through per-worker [`RouteScratch`]
    /// buffers — steady state allocates nothing per trial. Use
    /// [`TrialBatch::run_recorded`] when the paths themselves are needed.
    ///
    /// # Panics
    ///
    /// Panics if the graph has fewer than two vertices, or if
    /// `connected_only` is set and no two vertices share a component.
    pub fn run<R, O>(
        &self,
        router: &R,
        objective: &O,
        master_seed: u64,
        pool: &Pool,
    ) -> Vec<TrialOutcome>
    where
        R: Router + Sync,
        O: Objective + Sync,
    {
        self.run_chunked(router, objective, master_seed, pool, false)
            .into_iter()
            .map(|(outcome, _)| outcome)
            .collect()
    }

    /// Like [`TrialBatch::run`], but also returns every full
    /// [`RouteRecord`] — the basis of the thread-count determinism tests.
    ///
    /// # Panics
    ///
    /// Panics as [`TrialBatch::run`] does.
    pub fn run_recorded<R, O>(
        &self,
        router: &R,
        objective: &O,
        master_seed: u64,
        pool: &Pool,
    ) -> Vec<(TrialOutcome, RouteRecord)>
    where
        R: Router + Sync,
        O: Objective + Sync,
    {
        self.run_chunked(router, objective, master_seed, pool, true)
            .into_iter()
            .map(|(outcome, record)| (outcome, record.expect("records were kept")))
            .collect()
    }

    /// Shared driver: trials are fanned out in contiguous chunks so each
    /// worker reuses one [`RouteScratch`] and one interned metrics observer
    /// across its whole chunk. Trial `i`'s RNG is still seeded from
    /// `(master_seed, i)` alone, so results are independent of both the
    /// thread count and the chunking.
    ///
    /// Each chunk draws all of its endpoint pairs up front and prepares the
    /// targets in one [`Objective::prepare_batch`] call; the routing loop
    /// then runs over the prepared kernels via [`Router::route_prepared`],
    /// amortizing per-target setup without touching the trial RNG stream.
    fn run_chunked<R, O>(
        &self,
        router: &R,
        objective: &O,
        master_seed: u64,
        pool: &Pool,
        keep_records: bool,
    ) -> Vec<(TrialOutcome, Option<RouteRecord>)>
    where
        R: Router + Sync,
        O: Objective + Sync,
    {
        let n = self.graph.node_count();
        assert!(n >= 2, "need at least two vertices to route");
        if self.connected_only {
            assert!(
                self.components.largest_size() >= 2,
                "no two vertices share a component"
            );
        }
        let chunks = chunk_ranges(self.pairs, pool.threads().saturating_mul(4));
        let per_chunk = pool.map_items(chunks, |_, range| {
            let mut scratch = RouteScratch::with_path_capacity(32);
            let mut msbfs = MsBfsScratch::new();
            let mut obs = MetricsRouteObserver::new();
            // interned once per chunk; successful hop counts feed the
            // artifact's p50/p90/p99/p999 quantiles
            let hop_hdr = smallworld_obs::metrics::hdr("route.hops");
            let mut out = Vec::with_capacity(range.len());
            let mut stretches = StretchBatch::new(self.measure_stretch);
            // phase 1: draw every trial's endpoints exactly as the scalar
            // path did — the RNG stream per trial is untouched, so the pair
            // sequence is bitwise-identical to pre-batched runs
            let endpoints: Vec<(NodeId, NodeId)> = range
                .clone()
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(split_seed(master_seed, i as u64));
                    loop {
                        let s = NodeId::from_index(rng.gen_range(0..n));
                        let t = NodeId::from_index(rng.gen_range(0..n));
                        if t == s {
                            continue;
                        }
                        let (s, t) = match self.id_map {
                            Some(perm) => (perm.forward(s), perm.forward(t)),
                            None => (s, t),
                        };
                        if self.connected_only && !self.components.same_component(s, t) {
                            continue;
                        }
                        break (s, t);
                    }
                })
                .collect();
            // phase 2: prepare all targets at once, then route each trial
            // against its prepared kernel
            let prepared = objective.prepare_batch(endpoints.iter().map(|&(_, t)| t));
            for (k, &(s, t)) in endpoints.iter().enumerate() {
                let record =
                    router.route_prepared(self.graph, prepared.kernel(k), s, &mut obs, &mut scratch);
                if record.is_success() {
                    hop_hdr.record(record.hops() as u64);
                }
                // stretch resolves after the chunk in one MS-BFS pass; the
                // endpoints queue in routed-id space so distances come from
                // the same graph the route walked
                stretches.push(out.len(), &record);
                let outcome = TrialOutcome {
                    success: record.is_success(),
                    hops: record.hops(),
                    stretch: None,
                    same_component: self.components.same_component(s, t),
                };
                let record = if keep_records {
                    Some(match self.id_map {
                        Some(perm) => {
                            let path = perm.path_to_original(&record.path);
                            scratch.recycle(record.path);
                            RouteRecord {
                                outcome: record.outcome,
                                path,
                            }
                        }
                        None => record,
                    })
                } else {
                    scratch.recycle(record.path);
                    None
                };
                out.push((outcome, record));
            }
            stretches.resolve_each(self.graph, &mut msbfs, |slot, st| {
                out[slot].0.stretch = Some(st);
            });
            out
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Aggregate statistics over a set of [`TrialOutcome`]s.
#[derive(Clone, Debug, Default)]
pub struct RoutingAggregate {
    /// Delivery rate over all pairs.
    pub success: Proportion,
    /// Delivery rate conditioned on `s` and `t` sharing a component — the
    /// quantity the theorems bound.
    pub success_connected: Proportion,
    /// Hop counts of successful routes.
    pub hops: Summary,
    /// Stretch of successful routes (where measured).
    pub stretch: Summary,
}

impl RoutingAggregate {
    /// Aggregates trial outcomes.
    pub fn from_trials<'a>(trials: impl IntoIterator<Item = &'a TrialOutcome>) -> Self {
        let mut agg = RoutingAggregate::default();
        for t in trials {
            agg.success.push(t.success);
            if t.same_component {
                agg.success_connected.push(t.success);
            }
            if t.success {
                agg.hops.push(t.hops as f64);
                if let Some(s) = t.stretch {
                    agg.stretch.push(s);
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallworld_core::{GirgObjective, GreedyRouter};
    use smallworld_models::girg::GirgBuilder;

    #[test]
    fn split_seed_is_deterministic_and_spread() {
        let seeds: Vec<u64> = (0..100).map(|i| split_seed(7, i)).collect();
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 100);
        assert_eq!(seeds[3], split_seed(7, 3));
    }

    #[test]
    fn parallel_map_orders_results() {
        let out = parallel_map(50, 1, |i, seed| (i, seed));
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
            assert_eq!(*seed, split_seed(1, i as u64));
        }
    }

    #[test]
    fn parallel_map_zero_tasks() {
        let out: Vec<u64> = parallel_map(0, 1, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn scale_parse_accepts_both_names_case_insensitively() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
    }

    #[test]
    fn scale_parse_rejects_junk() {
        assert_eq!(Scale::parse(""), None);
        assert_eq!(Scale::parse("fast"), None);
        assert_eq!(Scale::parse("quick "), None);
        assert_eq!(Scale::parse("1"), None);
    }

    #[test]
    fn parallel_map_workers_share_metric_counters() {
        // every worker thread increments the same interned counter; the
        // sharded registry must not lose any increment
        let counter = smallworld_obs::metrics::counter("harness.test.parallel_incs");
        let before = counter.value();
        let tasks = 64;
        let per_task = 100u64;
        let c = &counter;
        parallel_map(tasks, 9, |_, _| {
            for _ in 0..per_task {
                c.inc();
            }
        });
        assert_eq!(counter.value() - before, tasks as u64 * per_task);
    }

    #[test]
    fn routing_trials_aggregate() {
        let mut rng = StdRng::seed_from_u64(5);
        let girg = GirgBuilder::<2>::new(1_000).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let trials = route_random_pairs(
            girg.graph(),
            &obj,
            &GreedyRouter::new(),
            &comps,
            100,
            true,
            &mut rng,
        );
        assert_eq!(trials.len(), 100);
        let agg = RoutingAggregate::from_trials(&trials);
        assert_eq!(agg.success.trials(), 100);
        assert!(agg.success_connected.trials() <= 100);
        // any successful multi-hop route has stretch >= 1
        assert!(agg.stretch.is_empty() || agg.stretch.min() >= 1.0);
    }

    /// The tentpole determinism guarantee: one master seed produces
    /// bitwise-identical `RouteRecord`s at 1 thread and at N threads.
    #[test]
    fn trial_batch_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(5);
        let girg = GirgBuilder::<2>::new(1_000).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let batch = TrialBatch::new(girg.graph(), &comps, 120)
            .measure_stretch(true)
            .connected_only(true);
        let router = GreedyRouter::new();
        let sequential = batch.run_recorded(&router, &obj, 0xD15C, &Pool::with_threads(1));
        let parallel = batch.run_recorded(&router, &obj, 0xD15C, &Pool::with_threads(4));
        assert_eq!(sequential.len(), 120);
        assert_eq!(sequential, parallel);
        // and a different master seed gives a different trial sequence
        let other = batch.run_recorded(&router, &obj, 0xD15D, &Pool::with_threads(4));
        assert_ne!(sequential, other);
    }

    /// Morton-relabeled routing, viewed through `with_id_map`, must be
    /// observationally identical to routing the original graph: same trial
    /// outcomes and the *same original-id paths*, record for record.
    #[test]
    fn trial_batch_id_map_reports_original_ids() {
        let mut rng = StdRng::seed_from_u64(11);
        let girg = GirgBuilder::<2>::new(800).sample(&mut rng).unwrap();
        let perm = girg.morton_permutation();
        let relabeled = girg.relabel(&perm);

        let comps = Components::compute(girg.graph());
        let comps_re = Components::compute(relabeled.graph());
        let obj = GirgObjective::new(&girg);
        let obj_re = GirgObjective::new(&relabeled);
        let router = GreedyRouter::new();
        let pool = Pool::with_threads(3);

        let plain = TrialBatch::new(girg.graph(), &comps, 80)
            .measure_stretch(true)
            .run_recorded(&router, &obj, 0xA40, &pool);
        let mapped = TrialBatch::new(relabeled.graph(), &comps_re, 80)
            .measure_stretch(true)
            .with_id_map(&perm)
            .run_recorded(&router, &obj_re, 0xA40, &pool);
        assert_eq!(plain, mapped);
    }

    /// The routing index is pure mechanism: identical records with the
    /// index on or off, at any thread count.
    #[test]
    fn trial_batch_with_index_is_invariant() {
        use smallworld_core::{IndexedGirgObjective, RoutingIndex};
        let mut rng = StdRng::seed_from_u64(13);
        let girg = GirgBuilder::<2>::new(800).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let index = RoutingIndex::for_girg(&girg);
        let indexed = IndexedGirgObjective::new(GirgObjective::new(&girg), &index);
        let batch = TrialBatch::new(girg.graph(), &comps, 80).connected_only(true);
        let router = GreedyRouter::new();
        let plain = batch.run_recorded(&router, &obj, 0x1D5, &Pool::with_threads(1));
        let fast = batch.run_recorded(&router, &indexed, 0x1D5, &Pool::with_threads(4));
        assert_eq!(plain, fast);
    }

    /// The batched prepare-then-route path is thread-count invariant over
    /// the blocked SoA sweep: 1, 2, and 8 worker threads must produce
    /// bitwise-identical records (the per-trial RNG seeding makes the pair
    /// sequence independent of chunking).
    #[test]
    fn trial_batch_batched_path_is_invariant_at_1_2_and_8_threads() {
        use smallworld_core::{IndexedGirgObjective, RoutingIndex};
        let mut rng = StdRng::seed_from_u64(29);
        let girg = GirgBuilder::<2>::new(900).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let index = RoutingIndex::for_girg(&girg);
        let indexed = IndexedGirgObjective::new(GirgObjective::new(&girg), &index);
        let batch = TrialBatch::new(girg.graph(), &comps, 96)
            .measure_stretch(true)
            .connected_only(true);
        let router = GreedyRouter::new();
        let one = batch.run_recorded(&router, &indexed, 0xBA7C, &Pool::with_threads(1));
        let two = batch.run_recorded(&router, &indexed, 0xBA7C, &Pool::with_threads(2));
        let eight = batch.run_recorded(&router, &indexed, 0xBA7C, &Pool::with_threads(8));
        assert_eq!(one.len(), 96);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    /// Successful trials land their hop counts in the global `route.hops`
    /// HDR histogram, so run reports carry hop quantiles.
    #[test]
    fn trial_batch_records_hop_quantiles() {
        let mut rng = StdRng::seed_from_u64(7);
        let girg = GirgBuilder::<2>::new(500).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let batch = TrialBatch::new(girg.graph(), &comps, 60).connected_only(true);
        let before = smallworld_obs::metrics::hdr("route.hops").snapshot();
        let outcomes = batch.run(&GreedyRouter::new(), &obj, 21, &Pool::with_threads(2));
        let delta = smallworld_obs::metrics::hdr("route.hops")
            .snapshot()
            .since(&before);
        let successes = outcomes.iter().filter(|o| o.success).count() as u64;
        assert!(successes > 0, "seeded batch should deliver something");
        // other tests share the global histogram, so only a lower bound holds
        assert!(delta.count >= successes);
        assert!(delta.quantile(0.99) >= delta.quantile(0.50));
    }

    #[test]
    fn trial_batch_matches_its_recorded_variant() {
        let mut rng = StdRng::seed_from_u64(6);
        let girg = GirgBuilder::<2>::new(500).sample(&mut rng).unwrap();
        let comps = Components::compute(girg.graph());
        let obj = GirgObjective::new(&girg);
        let batch = TrialBatch::new(girg.graph(), &comps, 40);
        let router = GreedyRouter::new();
        let pool = Pool::with_threads(3);
        let outcomes = batch.run(&router, &obj, 9, &pool);
        let recorded = batch.run_recorded(&router, &obj, 9, &pool);
        assert_eq!(
            outcomes,
            recorded.iter().map(|(o, _)| *o).collect::<Vec<_>>()
        );
        for (outcome, record) in &recorded {
            assert_eq!(outcome.success, record.is_success());
            assert_eq!(outcome.hops, record.hops());
            assert!(outcome.same_component || !outcome.success);
        }
        let agg = RoutingAggregate::from_trials(outcomes.iter());
        assert_eq!(agg.success.trials(), 40);
    }
}
