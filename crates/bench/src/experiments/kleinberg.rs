//! E12 — §1.1: Kleinberg's model and its shortcomings.
//!
//! Part A reproduces the fragile-exponent phenomenon on the lattice model:
//! greedy routing needs `O(log² n)` steps exactly at `r = d = 2` and
//! polynomially many steps otherwise. The shape to check: at `r = 2` the
//! ratio `steps / log² n` is flat in `n`; at `r = 1.5` and `r = 2.5` it
//! grows.
//!
//! Part B reproduces the perfect-lattice shortcoming: replacing the lattice
//! by noisy (random) positions makes distance-greedy routing fail with high
//! probability — while GIRG greedy routing at the same scale succeeds with
//! constant probability. This is the paper's §1.1 argument for why
//! Kleinberg's result needs its unrealistic substrate.

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{DistanceObjective, GreedyRouter, KleinbergObjective};
use smallworld_models::{ContinuumKleinberg, KleinbergLattice};

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{parallel_map, route_random_pairs_observed, RoutingAggregate, Scale};

/// Runs E12 (parts A and B); prints/returns both tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![part_a(scale), part_b(scale)]
}

fn part_a(scale: Scale) -> Table {
    let sides: Vec<u32> = scale.pick(vec![32, 64], vec![32, 64, 128, 256, 512]);
    let exponents: Vec<f64> = scale.pick(vec![2.0, 2.5], vec![1.5, 2.0, 2.5]);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(60, 200);

    let mut table = Table::new(["r", "m (side)", "n", "succ", "mean steps", "steps/ln^2 n"])
        .title("E12a (§1.1): Kleinberg lattice — navigable only at r = d = 2");
    for &r in &exponents {
        for &side in &sides {
            let n = side as usize * side as usize;
            let outcomes = parallel_map(reps, 0xE12 ^ side as u64 ^ (r * 10.0) as u64, |_, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let kl = {
                    let _span = smallworld_obs::Span::enter("sample_kleinberg");
                    KleinbergLattice::sample(side, r, 1, &mut rng).expect("valid lattice")
                };
                let comps = super::worker_components(kl.graph());
                let obj = KleinbergObjective::new(&kl);
                let _span = smallworld_obs::Span::enter("route_pairs");
                route_random_pairs_observed(
                    kl.graph(),
                    &obj,
                    &GreedyRouter::new(),
                    &comps,
                    pairs,
                    false,
                    &mut rng,
                    &mut smallworld_core::MetricsRouteObserver::new(),
                )
            });
            let trials: Vec<_> = outcomes.into_iter().flatten().collect();
            let agg = RoutingAggregate::from_trials(&trials);
            let ln2 = (n as f64).ln().powi(2);
            table.row([
                fmt_f64(r, 1),
                side.to_string(),
                n.to_string(),
                fmt_f64(agg.success_connected.rate(), 3),
                fmt_f64(agg.hops.mean(), 1),
                fmt_f64(agg.hops.mean() / ln2, 4),
            ]);
        }
    }
    println!("{table}");
    table
}

fn part_b(scale: Scale) -> Table {
    let ns: Vec<u64> = scale.pick(vec![2_000], vec![4_000, 16_000, 64_000]);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(80, 300);

    let mut table = Table::new([
        "n",
        "noisy-Kleinberg succ|conn",
        "GIRG greedy succ|conn",
    ])
    .title("E12b (§1.1): noisy positions break Kleinberg greedy; GIRG greedy is robust");
    for &n in &ns {
        // continuum Kleinberg with distance-only greedy
        let outcomes = parallel_map(reps, 0xB12 ^ n, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let ck = {
                let _span = smallworld_obs::Span::enter("sample_kleinberg");
                ContinuumKleinberg::sample(n, 1.0, 1, 4.0, &mut rng).expect("valid model")
            };
            let comps = super::worker_components(ck.graph());
            let obj = DistanceObjective::for_continuum(&ck);
            let _span = smallworld_obs::Span::enter("route_pairs");
            route_random_pairs_observed(
                ck.graph(),
                &obj,
                &GreedyRouter::new(),
                &comps,
                pairs,
                false,
                &mut rng,
                &mut smallworld_core::MetricsRouteObserver::new(),
            )
        });
        let noisy: Vec<_> = outcomes.into_iter().flatten().collect();
        let noisy_agg = RoutingAggregate::from_trials(&noisy);

        // GIRG greedy at the same scale
        let girg_trials = run_girg_trials(
            GirgConfig {
                n,
                ..GirgConfig::default()
            },
            ObjectiveChoice::Girg,
            &GreedyRouter::new(),
            reps,
            pairs,
            false,
            0xC12 ^ n,
        );
        let girg_agg = RoutingAggregate::from_trials(&girg_trials);

        table.row([
            n.to_string(),
            fmt_f64(noisy_agg.success_connected.rate(), 3),
            fmt_f64(girg_agg.success_connected.rate(), 3),
        ]);
    }
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_parts() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].row_count() >= 4);
        assert!(tables[1].row_count() >= 1);
    }
}
