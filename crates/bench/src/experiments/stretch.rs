//! E5 — Theorem 3.3 / §4: the stretch of successful greedy routes tends
//! to 1.
//!
//! For each `n`, successful routes are compared against bidirectional-BFS
//! shortest paths. The shapes to check: the mean stretch is close to 1
//! already at moderate `n` (the experimental papers report values around
//! 1.0–1.1) and does not grow with `n`.

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::GreedyRouter;

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{RoutingAggregate, Scale};

/// Runs E5 and prints/returns its table.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns: Vec<u64> = scale.pick(vec![1_024, 8_192], vec![4_096, 16_384, 65_536, 262_144]);
    let betas: Vec<f64> = scale.pick(vec![2.5], vec![2.3, 2.5, 2.8]);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(60, 200);

    let mut table = Table::new(["beta", "n", "routes", "mean stretch", "max stretch", "frac ==1"])
        .title("E5 (Theorem 3.3, §4): stretch of successful greedy routes tends to 1");
    let router = GreedyRouter::new();
    for &beta in &betas {
        for &n in &ns {
            let config = GirgConfig {
                n,
                beta,
                ..GirgConfig::default()
            };
            let trials = run_girg_trials(
                config,
                ObjectiveChoice::Girg,
                &router,
                reps,
                pairs,
                true,
                0xE5 ^ n ^ (beta * 100.0) as u64,
            );
            let agg = RoutingAggregate::from_trials(&trials);
            let stretches: Vec<f64> = trials.iter().filter_map(|t| t.stretch).collect();
            let exactly_one = stretches.iter().filter(|&&s| s == 1.0).count();
            let frac_one = if stretches.is_empty() {
                f64::NAN
            } else {
                exactly_one as f64 / stretches.len() as f64
            };
            table.row([
                fmt_f64(beta, 1),
                n.to_string(),
                stretches.len().to_string(),
                fmt_f64(agg.stretch.mean(), 3),
                fmt_f64(agg.stretch.max(), 2),
                fmt_f64(frac_one, 3),
            ]);
        }
    }
    println!("{table}");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_stretch_near_one() {
        let tables = run(Scale::Quick);
        assert!(tables[0].row_count() >= 2);
    }
}
