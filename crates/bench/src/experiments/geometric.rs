//! E11 — §4: degree-agnostic geometric routing is inferior and fragile.
//!
//! On the *same* GIRGs, greedy routing with the paper's weight-aware φ is
//! compared against purely geometric routing (forward to the neighbor
//! closest to the target, ignoring weights — the protocol of Boguñá &
//! Krioukov the paper contrasts with in §4). The shape to check: the
//! geometric success rate is much lower and degrades as β grows towards 3,
//! while weight-aware greedy stays robust across the whole range.

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{GreedyRouter, LookaheadRouter};

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{RoutingAggregate, Scale};

/// Runs E11 and prints/returns its table.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(4_000, 50_000);
    let betas: Vec<f64> = scale.pick(vec![2.3, 2.8], vec![2.1, 2.3, 2.5, 2.7, 2.9]);
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(100, 400);

    let mut table = Table::new([
        "beta",
        "greedy phi",
        "geometric",
        "geo+lookahead",
        "greedy hops",
        "geo hops",
    ])
    .title("E11 (§4): weight-aware greedy vs degree-agnostic geometric routing (succ|conn)");
    let router = GreedyRouter::new();
    let lookahead = LookaheadRouter::new();
    for &beta in &betas {
        // calibrate λ per β so every row has average degree ≈ 10: the
        // comparison then isolates the objective, not graph density
        let config = GirgConfig::with_degree(n, beta, 2.0, 10.0);
        let seed = 0xE11 ^ (beta * 100.0) as u64;
        let greedy = RoutingAggregate::from_trials(&run_girg_trials(
            config,
            ObjectiveChoice::Girg,
            &router,
            reps,
            pairs,
            false,
            seed,
        ));
        let geometric = RoutingAggregate::from_trials(&run_girg_trials(
            config,
            ObjectiveChoice::Distance,
            &router,
            reps,
            pairs,
            false,
            seed,
        ));
        // one-hop lookahead ("know thy neighbor's neighbor") partially
        // rescues the geometric protocol, at the cost of 2-hop knowledge
        let geo_lookahead = RoutingAggregate::from_trials(&run_girg_trials(
            config,
            ObjectiveChoice::Distance,
            &lookahead,
            reps,
            pairs,
            false,
            seed,
        ));
        table.row([
            fmt_f64(beta, 1),
            fmt_f64(greedy.success_connected.rate(), 3),
            fmt_f64(geometric.success_connected.rate(), 3),
            fmt_f64(geo_lookahead.success_connected.rate(), 3),
            fmt_f64(greedy.hops.mean(), 2),
            fmt_f64(geometric.hops.mean(), 2),
        ]);
    }
    println!("{table}");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_compares_objectives() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].row_count(), 2);
    }
}
