//! E4 — Theorem 3.3: successful greedy paths have
//! `(2+o(1))/|log(β−2)| · log log n` hops.
//!
//! For each β the experiment sweeps `n` and reports the mean hop count of
//! successful routes next to the theory value
//! `2/|ln(β−2)| · ln ln n`. Two shapes to check: hop counts grow *doubly*
//! logarithmically (quadrupling n barely moves them), and the ordering in β
//! matches the constant `2/|ln(β−2)|` (β closer to 3 → longer paths).

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::{Summary, Table};
use smallworld_core::theory::{predicted_hops, ultra_small_distance};
use smallworld_core::{GirgObjective, GreedyRouter, Router};
use smallworld_geometry::Point;
use smallworld_graph::NodeId;
use smallworld_models::girg::GirgBuilder;

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{parallel_map, RoutingAggregate, Scale};

/// Runs E4 (random endpoints) and E4b (planted endpoints vs the refined
/// expression (1)); prints/returns both tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![random_endpoints(scale), planted_endpoints(scale)]
}

fn random_endpoints(scale: Scale) -> Table {
    let ns: Vec<u64> = scale.pick(
        vec![1_024, 8_192],
        vec![1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576],
    );
    let betas: Vec<f64> = scale.pick(vec![2.5], vec![2.3, 2.5, 2.8]);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(100, 300);

    let mut table = Table::new([
        "beta", "n", "succ routes", "mean hops", "p95", "theory 2/|ln(b-2)|*lnln n",
    ])
    .title("E4 (Theorem 3.3): greedy path length is ultra-small, Θ(log log n)");

    let router = GreedyRouter::new();
    for &beta in &betas {
        for &n in &ns {
            let config = GirgConfig {
                n,
                beta,
                ..GirgConfig::default()
            };
            let trials = run_girg_trials(
                config,
                ObjectiveChoice::Girg,
                &router,
                reps,
                pairs,
                false,
                0xE4 ^ n ^ (beta * 100.0) as u64,
            );
            let hops: Vec<f64> = trials
                .iter()
                .filter(|t| t.success)
                .map(|t| t.hops as f64)
                .collect();
            let agg = RoutingAggregate::from_trials(&trials);
            let p95 = smallworld_analysis::quantile(&hops, 0.95).unwrap_or(f64::NAN);
            table.row([
                fmt_f64(beta, 1),
                n.to_string(),
                hops.len().to_string(),
                fmt_f64(agg.hops.mean(), 2),
                fmt_f64(p95, 0),
                fmt_f64(ultra_small_distance(beta, n as f64), 2),
            ]);
        }
    }
    println!("{table}");
    table
}

/// E4b — the refined bound, expression (1) of Theorem 3.3: heavier planted
/// endpoints shorten the route, quantitatively as
/// `(1/|ln(β−2)|)(ln ln_{w_s} 1/φ(s) + ln ln_{w_t} 1/φ(s))`.
fn planted_endpoints(scale: Scale) -> Table {
    let n = scale.pick(8_000, 100_000);
    let reps = scale.pick(20, 120);
    let beta = 2.5;
    let ws: Vec<f64> = scale.pick(vec![2.0, 50.0], vec![2.0, 5.0, 15.0, 50.0, 200.0]);

    let mut table = Table::new([
        "w_s = w_t",
        "delivered",
        "mean hops",
        "expression (1)",
    ])
    .title("E4b (Theorem 3.3, expression (1)): heavy endpoints shorten routes");
    for &w in &ws {
        let outcomes = parallel_map(reps, 0xB4 ^ w as u64, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let girg = GirgBuilder::<2>::new(n)
                .beta(beta)
                .lambda(0.02)
                .plant(Point::new([0.1, 0.1]), w)
                .plant(Point::new([0.6, 0.6]), w)
                .sample(&mut rng)
                .expect("valid config");
            let obj = GirgObjective::new(&girg);
            let record = GreedyRouter::new().route_quiet(girg.graph(), &obj, NodeId::new(0), NodeId::new(1));
            record.is_success().then(|| record.hops() as f64)
        });
        let hops: Summary = outcomes.into_iter().flatten().collect();
        // φ(s) = w / (w_min · n · dist^2) with dist = 1/2
        let phi_s = w / (n as f64 * 0.25);
        let prediction = if phi_s < 1.0 && w > 1.0 {
            predicted_hops(beta, w, w, phi_s)
        } else {
            f64::NAN
        };
        table.row([
            fmt_f64(w, 0),
            format!("{}/{reps}", hops.count()),
            fmt_f64(hops.mean(), 2),
            fmt_f64(prediction, 2),
        ]);
    }
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].row_count() >= 2);
        assert_eq!(tables[1].row_count(), 2);
    }
}
