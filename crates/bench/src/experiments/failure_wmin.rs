//! E2/E3 — Theorem 3.2: the failure probability decays exponentially in
//! `w_min` (part A) and polynomially in `min(w_s, w_t)` (part B).
//!
//! Part A uses the threshold kernel (for which (EP3) holds at any λ), sweeps
//! `w_min` and fits `ln(failure)` against `w_min`: Theorem 3.2(i) predicts a
//! negative slope (failure `≤ e^{−w_min^{Ω(1)}}`).
//!
//! Part B plants a source and a target of equal weight `w` at torus distance
//! 1/2 and sweeps `w`: Theorem 3.2(ii) predicts failure
//! `≤ min(w_s,w_t)^{−Ω(1)}`, i.e. a negative slope of `ln(failure)` against
//! `ln w`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::{LinearFit, Table};
use smallworld_core::{GirgObjective, GreedyRouter, Router};
use smallworld_geometry::Point;
use smallworld_graph::NodeId;
use smallworld_models::girg::GirgBuilder;

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{parallel_map, RoutingAggregate, Scale};

/// Runs E2 (part A) and E3 (part B); prints/returns both tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![part_a(scale), part_b(scale)]
}

fn part_a(scale: Scale) -> Table {
    let n = scale.pick(4_000, 30_000);
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(150, 2_000);
    let wmins: Vec<f64> = scale.pick(vec![1.0, 2.0, 3.0], vec![1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0]);

    let mut table = Table::new(["wmin", "pairs(conn)", "failure", "ln(failure)"])
        .title("E2 (Theorem 3.2(i)): failure probability decays exponentially in wmin");
    let router = GreedyRouter::new();
    let mut points = Vec::new();
    for &wmin in &wmins {
        // threshold kernel: (EP3) holds by construction at any λ, and
        // λ = 0.3 keeps the graph sparse enough for failures to be visible
        let config = GirgConfig {
            n,
            wmin,
            alpha: f64::INFINITY,
            lambda: 0.2,
            ..GirgConfig::default()
        };
        let trials = run_girg_trials(
            config,
            ObjectiveChoice::Girg,
            &router,
            reps,
            pairs,
            false,
            0xE2 ^ (wmin * 10.0) as u64,
        );
        let agg = RoutingAggregate::from_trials(&trials);
        let failure = 1.0 - agg.success_connected.rate();
        if failure > 0.0 {
            points.push((wmin, failure));
        }
        table.row([
            fmt_f64(wmin, 1),
            agg.success_connected.trials().to_string(),
            fmt_f64(failure, 4),
            if failure > 0.0 {
                fmt_f64(failure.ln(), 2)
            } else {
                "-inf".to_string()
            },
        ]);
    }
    if let Some(fit) = LinearFit::fit_semilog(&points) {
        table.row([
            "fit".to_string(),
            String::new(),
            format!("slope {:.2}", fit.slope),
            format!("R2 {:.2}", fit.r_squared),
        ]);
    }
    println!("{table}");
    table
}

fn part_b(scale: Scale) -> Table {
    let n = scale.pick(4_000, 10_000);
    let reps = scale.pick(30, 400);
    let ws: Vec<f64> = scale.pick(
        vec![1.0, 4.0, 16.0],
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
    );

    let mut table = Table::new(["w_s=w_t", "trials(conn)", "disconnected", "failure"])
        .title("E3 (Theorem 3.2(ii)): failure decays polynomially in min(ws, wt)");
    let mut points = Vec::new();
    for &w in &ws {
        // each rep samples a fresh graph with planted s (id 0) and t (id 1);
        // disconnected plants are counted, not silently discarded — the
        // theorem conditions on connectivity, but the reader should see how
        // often that conditioning bites
        let outcomes = parallel_map(reps, 0xE3 ^ (w as u64), |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let girg = GirgBuilder::<2>::new(n)
                .alpha(f64::INFINITY)
                .lambda(0.2)
                .plant(Point::new([0.1, 0.1]), w)
                .plant(Point::new([0.6, 0.6]), w)
                .sample(&mut rng)
                .expect("valid config");
            let (s, t) = (NodeId::new(0), NodeId::new(1));
            let comps = super::worker_components(girg.graph());
            if !comps.same_component(s, t) {
                return None;
            }
            let obj = GirgObjective::new(&girg);
            Some(GreedyRouter::new().route_quiet(girg.graph(), &obj, s, t).is_success())
        });
        let disconnected = outcomes.iter().filter(|o| o.is_none()).count();
        let connected: Vec<bool> = outcomes.into_iter().flatten().collect();
        let trials = connected.len();
        let failures = connected.iter().filter(|&&ok| !ok).count();
        let failure = if trials == 0 {
            f64::NAN
        } else {
            failures as f64 / trials as f64
        };
        if failure > 0.0 {
            points.push((w, failure));
        }
        table.row([
            fmt_f64(w, 0),
            trials.to_string(),
            disconnected.to_string(),
            fmt_f64(failure, 4),
        ]);
    }
    if let Some(fit) = LinearFit::fit_loglog(&points) {
        table.row([
            "fit".to_string(),
            String::new(),
            String::new(),
            format!("log-log slope {:.2} (R2 {:.2})", fit.slope, fit.r_squared),
        ]);
    }
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].row_count() >= 3);
        assert!(tables[1].row_count() >= 3);
    }
}
