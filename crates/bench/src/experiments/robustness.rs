//! E13 — §1.1 "our results are robust in the model parameters".
//!
//! Sweeps the whole parameter cube: decay α ∈ {1.2, 2, 5, ∞}, power law
//! β ∈ {2.2, 2.5, 2.8}, dimension d ∈ {1, 2, 3}. The shape to check:
//! success probability stays bounded away from zero on every cell — no
//! fragile exponents anywhere, in contrast to Kleinberg's model (E12).

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{GirgObjective, GreedyRouter};
use smallworld_graph::Components;
use smallworld_models::girg::GirgBuilder;
use smallworld_models::Alpha;

use crate::harness::{parallel_map, route_random_pairs_observed, RoutingAggregate, Scale};

/// Samples and routes in dimension `D`.
fn run_cell<const D: usize>(
    n: u64,
    beta: f64,
    alpha: f64,
    reps: usize,
    pairs: usize,
    seed: u64,
) -> RoutingAggregate {
    // calibrate λ per (α, β, d) so every cell has average degree ≈ 10
    let lambda =
        smallworld_core::theory::lambda_for_average_degree(10.0, alpha, D as u32, beta, 1.0);
    let outcomes = parallel_map(reps, seed, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            GirgBuilder::<D>::new(n)
                .beta(beta)
                .alpha(Alpha::from(alpha))
                .lambda(lambda)
                .sample(&mut rng)
                .expect("valid parameters")
        };
        if girg.node_count() < 2 {
            return Vec::new();
        }
        let comps = super::worker_components(girg.graph());
        let obj = GirgObjective::new(&girg);
        let _span = smallworld_obs::Span::enter("route_pairs");
        route_random_pairs_observed(
            girg.graph(),
            &obj,
            &GreedyRouter::new(),
            &comps,
            pairs,
            false,
            &mut rng,
            &mut smallworld_core::MetricsRouteObserver::new(),
        )
    });
    let trials: Vec<_> = outcomes.into_iter().flatten().collect();
    RoutingAggregate::from_trials(&trials)
}

/// Runs E13 (parameter grid + edge-failure sweep); prints/returns both
/// tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let grid = parameter_grid(scale);
    let failures = edge_failures(scale);
    vec![grid, failures]
}

fn parameter_grid(scale: Scale) -> Table {
    let n = scale.pick(3_000, 30_000);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(80, 300);
    let alphas: Vec<f64> = scale.pick(vec![2.0, f64::INFINITY], vec![1.2, 2.0, 5.0, f64::INFINITY]);
    let betas: Vec<f64> = scale.pick(vec![2.5], vec![2.2, 2.5, 2.8]);
    let dims: Vec<u32> = scale.pick(vec![2], vec![1, 2, 3]);

    let mut table = Table::new(["d", "beta", "alpha", "succ|conn", "mean hops"])
        .title("E13 (§1.1): robustness across alpha, beta and dimension");
    for &d in &dims {
        for &beta in &betas {
            for &alpha in &alphas {
                let seed = 0xE13 ^ (d as u64) << 8 ^ (beta * 100.0) as u64 ^ alpha.to_bits();
                let agg = match d {
                    1 => run_cell::<1>(n, beta, alpha, reps, pairs, seed),
                    2 => run_cell::<2>(n, beta, alpha, reps, pairs, seed),
                    3 => run_cell::<3>(n, beta, alpha, reps, pairs, seed),
                    _ => unreachable!("dims fixed above"),
                };
                table.row([
                    d.to_string(),
                    fmt_f64(beta, 1),
                    if alpha.is_infinite() {
                        "inf".to_string()
                    } else {
                        fmt_f64(alpha, 1)
                    },
                    fmt_f64(agg.success_connected.rate(), 3),
                    fmt_f64(agg.hops.mean(), 2),
                ]);
            }
        }
    }
    println!("{table}");
    table
}

/// Probability that a uniformly random ordered pair of distinct vertices
/// lies in different components — the share of demand no router can serve.
fn disconnected_pair_fraction(comps: &Components, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut same = 0.0;
    for label in 0..comps.count() as u32 {
        let c = comps.size(label) as f64;
        same += c * (c - 1.0);
    }
    1.0 - same / (n as f64 * (n as f64 - 1.0))
}

/// Part B: bond percolation (edge failures) on a standard GIRG — the
/// Theorem 3.5 discussion's robustness claim. Pairs are drawn from the
/// giant component of the *percolated* graph, so "disconnected" (no path
/// exists — exact pair fraction from the component sizes) and "stuck"
/// (a path exists but greedy dead-ends) are separate columns instead of
/// being conflated into one success rate. Both should degrade smoothly,
/// not collapse, as edges fail.
fn edge_failures(scale: Scale) -> Table {
    use smallworld_graph::percolate;
    let n = scale.pick(5_000, 40_000);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(80, 300);
    let keeps: Vec<f64> = scale.pick(vec![1.0, 0.7], vec![1.0, 0.9, 0.8, 0.7, 0.5, 0.3]);

    let mut table = Table::new([
        "edges kept",
        "giant frac",
        "disconnected",
        "stuck",
        "succ|giant",
        "mean hops",
    ])
    .title("E13b: greedy routing under random edge failures (pairs from the giant)");
    for &keep in &keeps {
        let outcomes = parallel_map(reps, 0xB13 ^ (keep * 100.0) as u64, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let girg = {
                let _span = smallworld_obs::Span::enter("sample_girg");
                GirgBuilder::<2>::new(n)
                    .beta(2.5)
                    .lambda(0.02)
                    .sample(&mut rng)
                    .expect("valid")
            };
            let failed = percolate(girg.graph(), keep, &mut rng);
            let comps = super::worker_components(&failed);
            let obj = GirgObjective::new(&girg);
            let _span = smallworld_obs::Span::enter("route_pairs");
            let trials = crate::harness::route_random_giant_pairs_observed(
                &failed,
                &obj,
                &GreedyRouter::new(),
                &comps,
                pairs,
                false,
                &mut rng,
                &mut smallworld_core::MetricsRouteObserver::new(),
            );
            let disconnected = disconnected_pair_fraction(&comps, failed.node_count());
            (trials, comps.giant_fraction(), disconnected)
        });
        let mut trials = Vec::new();
        let mut giant_frac = 0.0;
        let mut disconnected = 0.0;
        let rep_count = outcomes.len().max(1) as f64;
        for (t, g, d) in outcomes {
            trials.extend(t);
            giant_frac += g / rep_count;
            disconnected += d / rep_count;
        }
        let agg = RoutingAggregate::from_trials(&trials);
        let succ = agg.success_connected.rate();
        table.row([
            fmt_f64(keep, 1),
            fmt_f64(giant_frac, 3),
            fmt_f64(disconnected, 3),
            fmt_f64(1.0 - succ, 3),
            fmt_f64(succ, 3),
            fmt_f64(agg.hops.mean(), 2),
        ]);
    }
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_grid() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 2);
        assert_eq!(tables[1].row_count(), 2);
    }
}
