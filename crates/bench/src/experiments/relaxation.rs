//! E9 — Theorem 3.5: relaxed objectives don't change the results.
//!
//! Greedy routing runs with the perturbed objective
//! `φ̃(v) = φ(v) · M_v^{ε·u_v}` (`u_v ∈ [−1,1]` fixed per vertex,
//! `M_v = min(w_v, 1/φ(v))`), sweeping the noise strength ε. The shapes to
//! check: success probability and hop counts stay essentially flat across
//! moderate ε — nodes only need *approximate* knowledge of their neighbors'
//! quality, as Milgram's participants had.

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::GreedyRouter;

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{RoutingAggregate, Scale};

/// Runs E9 and prints/returns its table.
pub fn run(scale: Scale) -> Vec<Table> {
    let config = GirgConfig {
        n: scale.pick(4_000, 50_000),
        ..GirgConfig::default()
    };
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(100, 400);
    let epsilons: Vec<f64> = scale.pick(
        vec![0.0, 0.25, 1.0],
        vec![0.0, 0.05, 0.1, 0.25, 0.5, 1.0],
    );

    let mut table = Table::new(["epsilon", "succ|conn", "mean hops", "mean stretch"])
        .title("E9 (Theorem 3.5): noisy objectives leave success and length intact");
    let router = GreedyRouter::new();
    for &eps in &epsilons {
        let trials = run_girg_trials(
            config,
            ObjectiveChoice::Relaxed(eps),
            &router,
            reps,
            pairs,
            true,
            0xE9, // same seed across ε: identical graphs and pairs
        );
        let agg = RoutingAggregate::from_trials(&trials);
        table.row([
            fmt_f64(eps, 2),
            fmt_f64(agg.success_connected.rate(), 3),
            fmt_f64(agg.hops.mean(), 2),
            fmt_f64(agg.stretch.mean(), 3),
        ]);
    }
    println!("{table}");

    // Part B: quantized ("rough") objectives — how few grades per e-factor
    // of φ still route well?
    let mut quant = Table::new(["levels per e-factor", "succ|conn", "mean hops", "mean stretch"])
        .title("E9b (Theorem 3.5): quantized objectives — rough grades suffice");
    let levels: Vec<f64> = scale.pick(vec![4.0, 1.0], vec![8.0, 4.0, 2.0, 1.0, 0.5]);
    for &k in &levels {
        let trials = run_girg_trials(
            config,
            ObjectiveChoice::Quantized(k),
            &router,
            reps,
            pairs,
            true,
            0xE9,
        );
        let agg = RoutingAggregate::from_trials(&trials);
        quant.row([
            fmt_f64(k, 1),
            fmt_f64(agg.success_connected.rate(), 3),
            fmt_f64(agg.hops.mean(), 2),
            fmt_f64(agg.stretch.mean(), 3),
        ]);
    }
    println!("{quant}");
    vec![table, quant]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_epsilons() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 3);
        assert_eq!(tables[1].row_count(), 2);
    }
}
