//! One module per experiment of the `DESIGN.md` index (E1–E15).
//!
//! Every module exposes `run(scale) -> Vec<Table>`: it prints its tables to
//! stdout (the "regenerated table/figure") and returns them so tests can
//! assert on the numbers. All experiments are deterministic given the
//! built-in master seeds.

pub mod failure_wmin;
pub mod geometric;
pub mod hyperbolic;
pub mod kleinberg;
pub mod patching;
pub mod path_length;
pub mod relaxation;
pub mod robustness;
pub mod stretch;
pub mod structure;
pub mod success;
pub mod traffic;
pub mod trajectory;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_core::{
    DistanceObjective, GirgObjective, IndexedGirgObjective, QuantizedObjective, RelaxedObjective,
    RouteObserver, Router, RoutingIndex,
};
use smallworld_graph::Components;
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_models::Alpha;
use smallworld_core::MetricsRouteObserver;

use crate::harness::{parallel_map, route_random_pairs_observed, TrialOutcome};

/// Parameters of one GIRG sampling configuration (dimension fixed to 2;
/// [`robustness`] instantiates other dimensions explicitly).
#[derive(Clone, Copy, Debug)]
pub struct GirgConfig {
    /// Expected number of vertices.
    pub n: u64,
    /// Power-law exponent `β ∈ (2, 3)`.
    pub beta: f64,
    /// Decay `α > 1`, `f64::INFINITY` for the threshold kernel.
    pub alpha: f64,
    /// Minimum weight.
    pub wmin: f64,
    /// Kernel constant λ.
    pub lambda: f64,
}

impl Default for GirgConfig {
    fn default() -> Self {
        GirgConfig {
            n: 10_000,
            beta: 2.5,
            alpha: 2.0,
            wmin: 1.0,
            // calibrated to an average degree near 10 (8·√λ·E[W]² for the
            // α=2, d=2 kernel at β=2.5), the regime of the experimental
            // greedy-routing literature; λ=1 would give degree ≈ 70
            lambda: 0.02,
        }
    }
}

impl GirgConfig {
    /// A configuration calibrated to a target average degree via
    /// [`smallworld_core::theory::lambda_for_average_degree`], so sweeps
    /// across α or β compare graphs of comparable density.
    pub fn with_degree(n: u64, beta: f64, alpha: f64, target_degree: f64) -> Self {
        GirgConfig {
            n,
            beta,
            alpha,
            wmin: 1.0,
            lambda: smallworld_core::theory::lambda_for_average_degree(
                target_degree,
                alpha,
                2,
                beta,
                1.0,
            ),
        }
    }

    /// Samples a GIRG with these parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (experiment configs are
    /// hard-coded and valid by construction).
    pub fn sample(&self, rng: &mut StdRng) -> Girg<2> {
        GirgBuilder::<2>::new(self.n)
            .beta(self.beta)
            .alpha(Alpha::from(self.alpha))
            .wmin(self.wmin)
            .lambda(self.lambda)
            .sample(rng)
            .expect("experiment configurations are valid")
    }
}

/// Whether the experiment battery routes through the edge-packed
/// [`RoutingIndex`] (`SMALLWORLD_INDEX=1` / `true` / `yes`, case-insensitive).
///
/// Purely a mechanism switch: the index produces bitwise-identical
/// [`smallworld_core::RouteRecord`]s (enforced by the equivalence tests), so
/// enabling it may only change throughput, never results.
pub fn routing_index_enabled() -> bool {
    parse_index_flag(std::env::var("SMALLWORLD_INDEX").ok().as_deref())
}

fn parse_index_flag(value: Option<&str>) -> bool {
    value.is_some_and(|v| {
        let v = v.trim().to_ascii_lowercase();
        v == "1" || v == "true" || v == "yes"
    })
}

/// Connected components for a graph sampled *inside* a [`parallel_map`]
/// worker.
///
/// Rep workers already saturate the [`smallworld_par::Pool`], so this stays
/// on the serial union–find kernel — fanning out
/// [`smallworld_graph::analytics::par_components`] here would oversubscribe
/// the machine (threads²) without speedup. Top-level call sites that analyse
/// one big graph on an idle pool (e.g. [`structure`]) call `par_components`
/// instead; the two produce identical labels by construction.
pub(crate) fn worker_components(graph: &smallworld_graph::Graph) -> Components {
    Components::compute(graph)
}

/// Which objective the router maximizes in a GIRG experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObjectiveChoice {
    /// The paper's φ (§2.2).
    Girg,
    /// Degree-agnostic geometric routing (§4).
    Distance,
    /// The relaxed φ̃ of Theorem 3.5 with the given noise strength ε.
    Relaxed(f64),
    /// φ quantized to `k` levels per factor of e — the "rough
    /// approximations suffice" reading of Theorem 3.5.
    Quantized(f64),
}

/// Samples `reps` independent GIRGs in parallel and routes `pairs` random
/// source/target pairs on each; returns all trial outcomes.
///
/// Every route reports to a fresh [`MetricsRouteObserver`], so the global
/// metrics registry (`route.hops`, `route.dead_ends`, …) reflects all
/// routing done by the experiments. The trial outcomes themselves are
/// independent of the observer — see
/// [`run_girg_trials_observed`] and the neutrality test.
pub fn run_girg_trials<R>(
    config: GirgConfig,
    objective: ObjectiveChoice,
    router: &R,
    reps: usize,
    pairs: usize,
    measure_stretch: bool,
    master_seed: u64,
) -> Vec<TrialOutcome>
where
    R: Router + Sync,
{
    run_girg_trials_observed(
        config,
        objective,
        router,
        reps,
        pairs,
        measure_stretch,
        master_seed,
        MetricsRouteObserver::new,
    )
}

/// Like [`run_girg_trials`], but each repetition observes its routes with a
/// fresh observer produced by `make_obs` (one observer per rep, called on
/// the worker thread).
///
/// Observers must not influence the trials: for any two factories, the
/// returned outcomes are identical given the same `master_seed`.
#[allow(clippy::too_many_arguments)]
pub fn run_girg_trials_observed<R, Obs, F>(
    config: GirgConfig,
    objective: ObjectiveChoice,
    router: &R,
    reps: usize,
    pairs: usize,
    measure_stretch: bool,
    master_seed: u64,
    make_obs: F,
) -> Vec<TrialOutcome>
where
    R: Router + Sync,
    Obs: RouteObserver,
    F: Fn() -> Obs + Sync,
{
    let per_rep = parallel_map(reps, master_seed, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            config.sample(&mut rng)
        };
        if girg.node_count() < 2 {
            return Vec::new();
        }
        let comps = {
            let _span = smallworld_obs::Span::enter("components");
            worker_components(girg.graph())
        };
        let mut obs = make_obs();
        let o = &mut obs;
        let _span = smallworld_obs::Span::enter("route_pairs");
        match objective {
            ObjectiveChoice::Girg if routing_index_enabled() => {
                let index = {
                    let _span = smallworld_obs::Span::enter("build_index");
                    RoutingIndex::for_girg(&girg)
                };
                let obj = IndexedGirgObjective::new(GirgObjective::new(&girg), &index);
                route_random_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, measure_stretch, &mut rng, o,
                )
            }
            ObjectiveChoice::Girg => {
                let obj = GirgObjective::new(&girg);
                route_random_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, measure_stretch, &mut rng, o,
                )
            }
            ObjectiveChoice::Distance => {
                let obj = DistanceObjective::for_girg(&girg);
                route_random_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, measure_stretch, &mut rng, o,
                )
            }
            ObjectiveChoice::Relaxed(eps) => {
                let obj = RelaxedObjective::new(GirgObjective::new(&girg), eps, seed);
                route_random_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, measure_stretch, &mut rng, o,
                )
            }
            ObjectiveChoice::Quantized(levels) => {
                let obj = QuantizedObjective::new(GirgObjective::new(&girg), levels);
                route_random_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, measure_stretch, &mut rng, o,
                )
            }
        }
    });
    per_rep.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The λ calibration of Lemma 7.1's marginal actually lands near the
    /// requested average degree on sampled graphs, across α including the
    /// threshold kernel.
    #[test]
    fn with_degree_calibration_is_accurate() {
        for &alpha in &[1.5f64, 2.0, 4.0, f64::INFINITY] {
            let config = GirgConfig::with_degree(30_000, 2.5, alpha, 10.0);
            let mut rng = StdRng::seed_from_u64(42 ^ alpha.to_bits());
            let girg = config.sample(&mut rng);
            let avg = girg.graph().average_degree();
            // the calibration ignores min(·,1) saturation, so it overshoots
            // the kernel mass and the sampled degree comes out below target;
            // it should still land within a factor ~1.7
            assert!(
                (6.0..=14.0).contains(&avg),
                "alpha={alpha}: degree {avg} far from target 10"
            );
        }
    }

    #[test]
    fn index_flag_parses_conventional_truths_only() {
        for on in ["1", "true", "yes", " TRUE ", "Yes"] {
            assert!(parse_index_flag(Some(on)), "{on:?} should enable");
        }
        for off in ["", "0", "false", "no", "2", "on"] {
            assert!(!parse_index_flag(Some(off)), "{off:?} should not enable");
        }
        assert!(!parse_index_flag(None));
    }

    #[test]
    fn run_girg_trials_is_deterministic() {
        let config = GirgConfig {
            n: 1_500,
            ..GirgConfig::default()
        };
        let router = smallworld_core::GreedyRouter::new();
        let a = run_girg_trials(config, ObjectiveChoice::Girg, &router, 2, 40, false, 7);
        let b = run_girg_trials(config, ObjectiveChoice::Girg, &router, 2, 40, false, 7);
        assert_eq!(a, b);
    }

    /// Instrumentation must be invisible to the science: the same seed
    /// yields bitwise-identical trial outcomes whether routes run with the
    /// no-op observer, an event-counting observer, or the metrics-registry
    /// observer used by the experiment battery.
    #[test]
    fn observers_do_not_change_trial_outcomes() {
        let config = GirgConfig {
            n: 1_200,
            ..GirgConfig::default()
        };
        let router = smallworld_core::HistoryRouter::new();
        let objective = ObjectiveChoice::Girg;
        let baseline = run_girg_trials_observed(
            config,
            objective,
            &router,
            2,
            30,
            true,
            13,
            || smallworld_core::NoopObserver,
        );
        let counted = run_girg_trials_observed(
            config,
            objective,
            &router,
            2,
            30,
            true,
            13,
            smallworld_core::CountingObserver::default,
        );
        let metered = run_girg_trials(config, objective, &router, 2, 30, true, 13);
        assert_eq!(baseline, counted);
        assert_eq!(baseline, metered);
        assert!(!baseline.is_empty());
    }
}
