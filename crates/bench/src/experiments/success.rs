//! E1 — Theorem 3.1: greedy routing succeeds with probability Ω(1).
//!
//! Sweeps `n` over three decades for several (β, α) combinations and
//! measures the delivery rate of plain greedy routing between uniformly
//! random pairs, both unconditioned and conditioned on source and target
//! sharing a component. The theorem predicts a rate bounded away from zero
//! *uniformly in n*; the table's shape to check is the flatness of each
//! (β, α) row group as `n` grows.

use smallworld_analysis::table::{fmt_ci, fmt_f64};
use smallworld_analysis::Table;
use smallworld_core::GreedyRouter;

use crate::experiments::{run_girg_trials, GirgConfig, ObjectiveChoice};
use crate::harness::{RoutingAggregate, Scale};

/// Runs E1 and prints/returns its table.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns: Vec<u64> = scale.pick(vec![1_024, 4_096], vec![1_024, 4_096, 16_384, 65_536, 262_144]);
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(100, 400);
    let combos: Vec<(f64, f64)> = vec![(2.3, 2.0), (2.5, 2.0), (2.8, 2.0), (2.5, f64::INFINITY)];

    let mut table = Table::new([
        "beta", "alpha", "n", "pairs", "success", "succ|conn", "95% CI (conn)",
    ])
    .title("E1 (Theorem 3.1): greedy success probability is Ω(1), flat in n");

    let router = GreedyRouter::new();
    for &(beta, alpha) in &combos {
        for &n in &ns {
            // calibrate λ so all (β, α) rows share an average degree ≈ 10
            let config = GirgConfig::with_degree(n, beta, alpha, 10.0);
            let seed = 0xE1 ^ n ^ (beta * 100.0) as u64 ^ alpha.to_bits();
            let trials = run_girg_trials(config, ObjectiveChoice::Girg, &router, reps, pairs, false, seed);
            let agg = RoutingAggregate::from_trials(&trials);
            let (lo, hi) = agg.success_connected.wilson_ci95();
            table.row([
                fmt_f64(beta, 1),
                if alpha.is_infinite() { "inf".into() } else { fmt_f64(alpha, 1) },
                n.to_string(),
                agg.success.trials().to_string(),
                fmt_f64(agg.success.rate(), 3),
                fmt_f64(agg.success_connected.rate(), 3),
                fmt_ci(lo, hi, 3),
            ]);
        }
    }
    println!("{table}");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_flat_positive_success() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].row_count() >= 8);
    }
}
