//! E10 — Corollary 3.6: geometric routing on hyperbolic random graphs.
//!
//! Sweeps `n`, `α_H` (i.e. β = 2α_H + 1) and the temperature. Routing is
//! purely geometric (forward to the neighbor of smallest hyperbolic
//! distance to the target, §11). The shapes to check: success rates bounded
//! away from zero and high at moderate average degree — the experimental
//! papers [11, 52, 61] report >90% with stretch ≈ 1 — plus 100% delivery
//! with Φ-DFS patching (Corollary 3.6's extension of Theorem 3.4).

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{GreedyRouter, HyperbolicObjective, PhiDfsRouter};
use smallworld_models::HrgBuilder;

use crate::harness::{
    parallel_map, route_random_connected_pairs_observed, route_random_pairs_observed,
    RoutingAggregate, Scale,
};

/// Runs E10 and prints/returns its table.
pub fn run(scale: Scale) -> Vec<Table> {
    let ns: Vec<usize> = scale.pick(vec![2_000], vec![5_000, 20_000, 80_000]);
    let alphas: Vec<f64> = scale.pick(vec![0.75], vec![0.65, 0.75, 0.9]);
    let temps: Vec<f64> = scale.pick(vec![0.0], vec![0.0, 0.5]);
    let reps = scale.pick(3, 6);
    let pairs = scale.pick(80, 300);

    let mut table = Table::new([
        "n", "alpha_H", "beta", "T", "succ|conn", "mean hops", "mean stretch", "patched succ",
    ])
    .title("E10 (Corollary 3.6): geometric routing on hyperbolic random graphs");
    for &n in &ns {
        for &alpha_h in &alphas {
            for &t in &temps {
                let outcomes = parallel_map(reps, 0xE10 ^ n as u64 ^ t.to_bits(), |_, seed| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (alpha_h * 100.0) as u64);
                    let hrg = {
                        let _span = smallworld_obs::Span::enter("sample_hrg");
                        HrgBuilder::new(n)
                            .alpha_h(alpha_h)
                            .temperature(t)
                            .radius_offset(-1.0) // denser disk: average degree ~10
                            .sample(&mut rng)
                            .expect("valid HRG parameters")
                    };
                    let comps = super::worker_components(hrg.graph());
                    let obj = HyperbolicObjective::new(&hrg);
                    let _span = smallworld_obs::Span::enter("route_pairs");
                    let mut obs = smallworld_core::MetricsRouteObserver::new();
                    let greedy = route_random_pairs_observed(
                        hrg.graph(),
                        &obj,
                        &GreedyRouter::new(),
                        &comps,
                        pairs,
                        true,
                        &mut rng,
                        &mut obs,
                    );
                    // connected pairs only: Φ-DFS would otherwise exhaust the
                    // giant on every cross-component pair
                    let patched = route_random_connected_pairs_observed(
                        hrg.graph(),
                        &obj,
                        &PhiDfsRouter::new(),
                        &comps,
                        pairs / 4,
                        false,
                        &mut rng,
                        &mut obs,
                    );
                    (greedy, patched)
                });
                let mut greedy_all = Vec::new();
                let mut patched_all = Vec::new();
                for (g, p) in outcomes {
                    greedy_all.extend(g);
                    patched_all.extend(p);
                }
                let agg = RoutingAggregate::from_trials(&greedy_all);
                let patched = RoutingAggregate::from_trials(&patched_all);
                table.row([
                    n.to_string(),
                    fmt_f64(alpha_h, 2),
                    fmt_f64(2.0 * alpha_h + 1.0, 1),
                    fmt_f64(t, 1),
                    fmt_f64(agg.success_connected.rate(), 3),
                    fmt_f64(agg.hops.mean(), 2),
                    fmt_f64(agg.stretch.mean(), 3),
                    fmt_f64(patched.success_connected.rate(), 3),
                ]);
            }
        }
    }
    println!("{table}");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_rows() {
        let tables = run(Scale::Quick);
        assert!(tables[0].row_count() >= 1);
    }
}
