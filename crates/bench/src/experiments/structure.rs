//! E14 — §2.1/§7.2 model validation: sampled GIRGs have the structural
//! properties the theory builds on.
//!
//! Checks on sampled graphs:
//!
//! * the degree tail follows a power law with the configured β
//!   (Hill/MLE estimate),
//! * `E[deg v] = Θ(w_v)` (Lemma 7.2): the ratio degree/weight is flat
//!   across weight bins,
//! * a giant component of linear size exists (Lemma 7.3),
//! * clustering is a constant, unlike the degree-matched Chung–Lu twin
//!   whose clustering vanishes (the geometric signature of §1.1),
//! * the average distance in the giant is near
//!   `2/|ln(β−2)| · ln ln n` (Lemma 7.3),
//! * `|V_{≥φ}| = Θ(1/φ)` (Lemma 7.5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::{hill_estimator, Summary, Table};
use smallworld_core::theory::ultra_small_distance;
use smallworld_core::GirgObjective;
use smallworld_graph::analytics::{pair_distances, par_components, par_double_sweep_diameter};
use smallworld_graph::{stats, NodeId};
use smallworld_models::chung_lu::ChungLu;
use smallworld_par::Pool;

use crate::experiments::GirgConfig;
use crate::harness::Scale;

/// Runs E14 and prints/returns its tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(8_000, 100_000);
    let betas: Vec<f64> = scale.pick(vec![2.5], vec![2.3, 2.5, 2.8]);

    let mut main = Table::new([
        "beta",
        "nodes",
        "avg deg",
        "beta-hat (deg tail)",
        "giant frac",
        "clustering",
        "CL clustering",
        "avg dist",
        "theory dist",
        "diam est",
    ])
    .title("E14 (§2.1, §7.2): structural validation of sampled GIRGs");

    let mut lemma75 = Table::new(["beta", "phi0", "|V>=phi|", "phi0 * |V>=phi|"])
        .title("E14 (Lemma 7.5): |V_{>=phi}| = Θ(1/phi)");

    for &beta in &betas {
        let mut rng = StdRng::seed_from_u64(0xE14 ^ (beta * 100.0) as u64);
        let config = GirgConfig {
            n,
            beta,
            ..GirgConfig::default()
        };
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            config.sample(&mut rng)
        };
        let graph = girg.graph();
        // top-level call site: the pool is idle here, so the parallel
        // engine kernels (components, pair distances, diameter) are safe to
        // fan out — results are bitwise-identical at any thread count
        let pool = Pool::from_env();
        let comps = par_components(graph, &pool);
        let _span = smallworld_obs::Span::enter("structure_stats");

        // degree power law
        let degrees: Vec<f64> = graph.nodes().map(|v| graph.degree(v) as f64).collect();
        let deg_mean = graph.average_degree();
        let beta_hat = hill_estimator(&degrees, deg_mean.max(2.0) * 2.0, 50).unwrap_or(f64::NAN);

        // clustering: GIRG vs degree-matched Chung–Lu twin
        let clustering = stats::sampled_average_clustering(graph, 2_000, &mut rng);
        let cl = ChungLu::from_weights(girg.weights().to_vec(), &mut rng)
            .expect("weights are valid");
        let cl_clustering = stats::sampled_average_clustering(cl.graph(), 2_000, &mut rng);

        // average distance within the giant: pairs are drawn exactly as
        // before (same rng consumption), then resolved in one batched
        // MS-BFS pass — distances are exact, so the summary is unchanged
        let mut dist = Summary::new();
        let giant: Vec<NodeId> = graph.nodes().filter(|&v| comps.in_largest(v)).collect();
        if giant.len() >= 2 {
            let mut sampled = Vec::new();
            for _ in 0..scale.pick(40, 150) {
                let s = giant[rng.gen_range(0..giant.len())];
                let t = giant[rng.gen_range(0..giant.len())];
                if s == t {
                    continue;
                }
                sampled.push((s, t));
            }
            for d in pair_distances(graph, &sampled).into_iter().flatten() {
                dist.push(d as f64);
            }
        }

        main.row([
            fmt_f64(beta, 1),
            graph.node_count().to_string(),
            fmt_f64(deg_mean, 1),
            fmt_f64(beta_hat, 2),
            fmt_f64(comps.giant_fraction(), 3),
            fmt_f64(clustering, 3),
            fmt_f64(cl_clustering, 4),
            fmt_f64(dist.mean(), 2),
            fmt_f64(ultra_small_distance(beta, graph.node_count() as f64), 2),
            giant
                .first()
                .map(|&v| par_double_sweep_diameter(graph, v, &pool).to_string())
                .unwrap_or_else(|| "-".into()),
        ]);

        // Lemma 7.5: count vertices of objective >= phi0 towards a random
        // target; expect phi0 * count ~ constant across phi0
        let target = girg.random_vertex(&mut rng);
        let obj = GirgObjective::new(&girg);
        for &phi0 in &[1e-3, 1e-2, 1e-1] {
            let count = graph
                .nodes()
                .filter(|&v| v != target && obj.phi(v, target) >= phi0)
                .count();
            lemma75.row([
                fmt_f64(beta, 1),
                format!("{phi0:.0e}"),
                count.to_string(),
                fmt_f64(phi0 * count as f64, 2),
            ]);
        }
    }
    println!("{main}");
    println!("{lemma75}");
    vec![main, lemma75]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].row_count() >= 1);
        assert_eq!(tables[1].row_count(), 3);
    }
}
