//! E7/E8 — Theorem 3.4 and §5: patching protocols.
//!
//! Part A compares four routers on the same graphs: plain greedy, the
//! paper's Algorithm 2 (Φ-DFS), the message-history protocol, and the
//! gravity–pressure heuristic. The shapes to check: both (P1)–(P3)
//! protocols deliver **100%** of same-component pairs while plain greedy
//! delivers a constant fraction, and their mean hop counts stay close to
//! greedy's (the `1 + o(1)` stretch of Theorem 3.4).
//!
//! Part B stresses sparse graphs (small λ), where the paper predicts the
//! gravity–pressure heuristic — which violates (P3) — can wander; the tail
//! (p99 / max steps) blows up relative to Φ-DFS.

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{
    GravityPressureRouter, GreedyRouter, HistoryRouter, PhiDfsRouter, Router, RouterKind,
};
use smallworld_core::GirgObjective;

use crate::experiments::GirgConfig;
use crate::harness::{
    parallel_map, route_random_connected_pairs_observed, RoutingAggregate, Scale, TrialOutcome,
};

fn routers() -> Vec<RouterKind> {
    vec![
        RouterKind::Greedy(GreedyRouter::new()),
        RouterKind::PhiDfs(PhiDfsRouter::new()),
        RouterKind::History(HistoryRouter::new()),
        RouterKind::GravityPressure(GravityPressureRouter::new()),
    ]
}

/// Runs E7 (part A) and E8 (part B); prints/returns both tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![part_a(scale), part_b(scale)]
}

/// Routes the same random pairs with every router on freshly sampled graphs.
fn compare_routers(
    config: GirgConfig,
    reps: usize,
    pairs: usize,
    seed: u64,
) -> Vec<(String, Vec<TrialOutcome>)> {
    let kinds = routers();
    let per_rep: Vec<Vec<Vec<TrialOutcome>>> = parallel_map(reps, seed, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            config.sample(&mut rng)
        };
        let comps = super::worker_components(girg.graph());
        let obj = GirgObjective::new(&girg);
        let _span = smallworld_obs::Span::enter("route_pairs");
        kinds
            .iter()
            .map(|router| {
                // reseed per router so every router sees the same pairs;
                // connected pairs only — Theorem 3.4 is conditional on a
                // shared component, and backtrackers would otherwise spend
                // the whole budget exhaustively failing cross-component pairs
                let mut pair_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
                let mut obs = smallworld_core::MetricsRouteObserver::new();
                route_random_connected_pairs_observed(
                    girg.graph(), &obj, router, &comps, pairs, false, &mut pair_rng, &mut obs,
                )
            })
            .collect()
    });
    let mut out: Vec<(String, Vec<TrialOutcome>)> = kinds
        .iter()
        .map(|k| (k.name().to_string(), Vec::new()))
        .collect();
    for rep in per_rep {
        for (i, trials) in rep.into_iter().enumerate() {
            out[i].1.extend(trials);
        }
    }
    out
}

fn hop_percentile(trials: &[TrialOutcome], q: f64) -> f64 {
    let hops: Vec<f64> = trials
        .iter()
        .filter(|t| t.success)
        .map(|t| t.hops as f64)
        .collect();
    smallworld_analysis::quantile(&hops, q).unwrap_or(f64::NAN)
}

fn part_a(scale: Scale) -> Table {
    let config = GirgConfig {
        n: scale.pick(4_000, 50_000),
        ..GirgConfig::default()
    };
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(100, 400);

    let mut table = Table::new([
        "router", "succ|conn", "mean hops", "p95 hops", "max hops",
    ])
    .title("E7 (Theorem 3.4): (P1)-(P3) patching delivers 100% at ~greedy cost");
    for (name, trials) in compare_routers(config, reps, pairs, 0xE7) {
        let agg = RoutingAggregate::from_trials(&trials);
        let max = trials
            .iter()
            .filter(|t| t.success)
            .map(|t| t.hops)
            .max()
            .unwrap_or(0);
        table.row([
            name,
            fmt_f64(agg.success_connected.rate(), 4),
            fmt_f64(agg.hops.mean(), 2),
            fmt_f64(hop_percentile(&trials, 0.95), 0),
            max.to_string(),
        ]);
    }
    println!("{table}");
    table
}

fn part_b(scale: Scale) -> Table {
    // sparse regime: a quarter of the default λ (average degree ≈ 5),
    // where dead ends are common and backtrackers have to work
    let config = GirgConfig {
        n: scale.pick(3_000, 20_000),
        lambda: 0.005,
        ..GirgConfig::default()
    };
    let reps = scale.pick(4, 8);
    let pairs = scale.pick(80, 300);

    let mut table = Table::new([
        "router", "succ|conn", "mean hops", "p99 hops", "max hops",
    ])
    .title("E8 (§5): sparse graphs — gravity-pressure (violates P3) grows heavy tails");
    for (name, trials) in compare_routers(config, reps, pairs, 0xE8) {
        let agg = RoutingAggregate::from_trials(&trials);
        let max = trials
            .iter()
            .filter(|t| t.success)
            .map(|t| t.hops)
            .max()
            .unwrap_or(0);
        table.row([
            name,
            fmt_f64(agg.success_connected.rate(), 4),
            fmt_f64(agg.hops.mean(), 2),
            fmt_f64(hop_percentile(&trials, 0.99), 0),
            max.to_string(),
        ]);
    }
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_routers() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 4);
        assert_eq!(tables[1].row_count(), 4);
    }
}
