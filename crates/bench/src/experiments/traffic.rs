//! E15 — live traffic on geometric networks (`smallworld-net`).
//!
//! The paper's §4 robustness discussion treats greedy routing as a live
//! protocol, not a single quiescent trajectory. This experiment runs many
//! concurrent packets through the discrete-event simulator and measures
//! what the theorems cannot see: delivery rate, hop stretch, and
//! virtual-time latency as functions of offered load (queueing) and of
//! failure rate (fault plans), plus a cross-model comparison
//! (GIRG / HRG / Kleinberg lattice) under identical traffic.
//!
//! Shapes to check:
//! * **E15a (load)** — with bounded queues, delivery stays near 1 below
//!   the service capacity and collapses via overflow beyond it, while
//!   virtual-time latency grows with load *before* the collapse.
//! * **E15b (faults)** — delivery degrades gracefully (no cliff) in the
//!   permanent-failure rate, and the patching policy dominates plain
//!   greedy at every rate on the *same* fault plan.
//! * **E15c (models)** — all three geometries carry the same offered load
//!   with comparable delivery; hop counts reflect each model's routing
//!   efficiency.
//!
//! Everything is bitwise reproducible at any `SMALLWORLD_THREADS`: reps
//! fan out through the deterministic pool, and the simulator itself is a
//! pure function of its seeds (see `smallworld-net`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::Table;
use smallworld_core::{
    GirgObjective, HyperbolicObjective, KleinbergObjective, Objective, PreparedObjective,
};
use smallworld_graph::Graph;
use smallworld_models::{HrgBuilder, KleinbergLatticeBuilder};
use smallworld_net::{
    nodes_from_mask, FaultPlan, FaultSpec, GreedyPolicy, PacketOutcome, PatchingPolicy,
    SimBuilder, SimConfig, SimReport, SimSummary, TimelineSample, UniformPairs,
};
use smallworld_obs::{HdrHistogram, HdrSnapshot};
use smallworld_par::{split_seed, Pool};

use crate::artifact::{push_record, timeline_record};
use crate::experiments::GirgConfig;
use crate::harness::Scale;

/// Virtual-time sampling interval for the E15a congestion timelines.
const TIMELINE_INTERVAL: smallworld_net::Time = 16;

/// Which forwarding policy a traffic run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Policy {
    Greedy,
    Patching,
}

impl Policy {
    fn label(self) -> &'static str {
        match self {
            Policy::Greedy => "greedy",
            Policy::Patching => "patching",
        }
    }
}

/// Aggregated outcome counts over the reps of one table cell.
#[derive(Clone, Debug, Default, PartialEq)]
struct Agg {
    injected: u64,
    delivered: u64,
    dead_end: u64,
    expired: u64,
    lost: u64,
    overflow: u64,
    hops_sum: u64,
    latency_sum: u64,
    eligible: u64,
    nodes: u64,
    /// Per-packet delivered latency, merged bucket-wise across reps —
    /// quantile extraction stays bitwise thread-count-invariant because
    /// the merge is commutative bucket addition over a deterministic
    /// sample multiset.
    latency_hdr: HdrSnapshot,
    /// Congestion timeline of the cell's *first* rep (reps fold in task
    /// order, so this is deterministic). Empty unless the rep's
    /// [`SimConfig::timeline_interval`] was set.
    timeline: Vec<TimelineSample>,
}

impl Agg {
    fn absorb(&mut self, report: &SimReport, eligible: usize, nodes: usize) {
        self.injected += report.packets.len() as u64;
        self.delivered += report.delivered() as u64;
        self.dead_end += report.count(PacketOutcome::DeadEnd) as u64;
        self.expired += report.count(PacketOutcome::Expired) as u64;
        self.lost += (report.count(PacketOutcome::LostLink)
            + report.count(PacketOutcome::LostNode)) as u64;
        self.overflow += report.count(PacketOutcome::Overflow) as u64;
        let latencies = HdrHistogram::new();
        for p in report.packets.iter().filter(|p| p.is_success()) {
            self.hops_sum += p.hops() as u64;
            self.latency_sum += p.latency();
            latencies.record(p.latency());
        }
        self.latency_hdr = self.latency_hdr.merge(&latencies.snapshot());
        if self.timeline.is_empty() {
            self.timeline = report.timeline.clone();
        }
        self.eligible += eligible as u64;
        self.nodes += nodes as u64;
    }

    fn merge(mut self, other: &Agg) -> Agg {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dead_end += other.dead_end;
        self.expired += other.expired;
        self.lost += other.lost;
        self.overflow += other.overflow;
        self.hops_sum += other.hops_sum;
        self.latency_sum += other.latency_sum;
        self.eligible += other.eligible;
        self.nodes += other.nodes;
        self.latency_hdr = self.latency_hdr.merge(&other.latency_hdr);
        if self.timeline.is_empty() {
            self.timeline.clone_from(&other.timeline);
        }
        self
    }

    /// A delivered-latency quantile in virtual-time ticks (0 when nothing
    /// was delivered).
    fn latency_quantile(&self, q: f64) -> u64 {
        self.latency_hdr.quantile(q).unwrap_or(0)
    }

    fn rate(&self, count: u64) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            count as f64 / self.injected as f64
        }
    }

    fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered as f64
        }
    }

    fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    fn survivor_frac(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.eligible as f64 / self.nodes as f64
        }
    }
}

/// Runs one traffic simulation on `graph` under `objective`: compiles the
/// fault plan from `seed` stream 0, draws the workload (restricted to the
/// plan's survivor giant) from stream 1, and absorbs the report into an
/// [`Agg`]. The fault plan depends only on seed stream 0, so greedy and
/// patching runs with the same `seed` face identical failures.
#[allow(clippy::too_many_arguments)]
fn traffic_rep<O: Objective>(
    graph: &Graph,
    objective: &O,
    policy: Policy,
    spec: FaultSpec,
    config: SimConfig,
    packets: usize,
    load: f64,
    seed: u64,
) -> Agg {
    let plan = FaultPlan::new(spec, split_seed(seed, 0));
    let eligible = nodes_from_mask(&plan.survivor_mask(graph));
    let mut agg = Agg::default();
    if eligible.len() < 2 {
        agg.nodes += graph.node_count() as u64;
        return agg;
    }
    let workload = UniformPairs::new(packets, load, split_seed(seed, 1));
    // prepared-kernel hop scoring: the simulator calls `prepare(target)`
    // once per forwarding decision instead of re-deriving the target's
    // geometry for every candidate neighbor
    let score = PreparedObjective::new(objective);
    let _span = smallworld_obs::Span::enter("traffic_sim");
    // reps already fan out across the pool, so each rep runs serially
    // (run_local also drops the Sync bound the generic objective lacks)
    let report = match policy {
        Policy::Greedy => SimBuilder::new(graph, GreedyPolicy::new(score))
            .faults(plan)
            .config(config)
            .shards(1)
            .build()
            .expect("traffic sim config is valid")
            .run_local(workload.over(&eligible)),
        Policy::Patching => SimBuilder::new(graph, PatchingPolicy::new(score))
            .faults(plan)
            .config(config)
            .shards(1)
            .build()
            .expect("traffic sim config is valid")
            .run_local(workload.over(&eligible)),
    };
    agg.absorb(&report, eligible.len(), graph.node_count());
    agg
}

/// GIRG cell: samples `reps` graphs on the pool and runs one traffic
/// simulation per graph.
#[allow(clippy::too_many_arguments)]
fn girg_traffic(
    pool: &Pool,
    config: GirgConfig,
    policy: Policy,
    spec: FaultSpec,
    sim: SimConfig,
    reps: usize,
    packets: usize,
    load: f64,
    master_seed: u64,
) -> Agg {
    pool.map_seeded(reps, master_seed, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            config.sample(&mut rng)
        };
        if girg.node_count() < 2 {
            return Agg::default();
        }
        let obj = GirgObjective::new(&girg);
        traffic_rep(girg.graph(), &obj, policy, spec, sim, packets, load, seed)
    })
    .iter()
    .fold(Agg::default(), Agg::merge)
}

/// Runs E15 (load sweep, fault sweep, model comparison) on the
/// environment-selected pool; prints/returns all three tables.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_pool(scale, &Pool::from_env())
}

/// [`run`] on an explicit pool — the thread-invariance tests call this
/// with one- and many-thread pools and assert bitwise-equal tables.
pub fn run_with_pool(scale: Scale, pool: &Pool) -> Vec<Table> {
    vec![
        load_sweep(scale, pool),
        fault_sweep(scale, pool),
        model_comparison(scale, pool),
        shard_equivalence(scale),
    ]
}

/// E15a: offered load vs delivery/latency with bounded queues.
fn load_sweep(scale: Scale, pool: &Pool) -> Table {
    let config = GirgConfig {
        n: scale.pick(2_000, 20_000),
        ..GirgConfig::default()
    };
    let reps = scale.pick(2, 4);
    let packets = scale.pick(300, 3_000);
    let loads: Vec<f64> = scale.pick(vec![0.5, 4.0], vec![0.25, 1.0, 4.0, 16.0, 64.0]);
    let queue_cap = 8;

    let mut table = Table::new([
        "load",
        "queue cap",
        "delivered",
        "overflow",
        "dead end",
        "mean hops",
        "mean vtime",
        "p50 vtime",
        "p99 vtime",
        "p999 vtime",
    ])
    .title("E15a: delivery and virtual-time latency vs offered load (GIRG, bounded queues)");
    for &load in &loads {
        let sim = SimConfig {
            queue_capacity: Some(queue_cap),
            timeline_interval: Some(TIMELINE_INTERVAL),
            ..SimConfig::default()
        };
        let agg = girg_traffic(
            pool,
            config,
            Policy::Greedy,
            FaultSpec::none(),
            sim,
            reps,
            packets,
            load,
            0xE15A ^ load.to_bits(),
        );
        push_record(timeline_record(
            "E15_traffic",
            &format!("load={}", fmt_f64(load, 2)),
            TIMELINE_INTERVAL,
            &agg.timeline,
        ));
        table.row([
            fmt_f64(load, 2),
            queue_cap.to_string(),
            fmt_f64(agg.rate(agg.delivered), 3),
            fmt_f64(agg.rate(agg.overflow), 3),
            fmt_f64(agg.rate(agg.dead_end), 3),
            fmt_f64(agg.mean_hops(), 2),
            fmt_f64(agg.mean_latency(), 2),
            agg.latency_quantile(0.50).to_string(),
            agg.latency_quantile(0.99).to_string(),
            agg.latency_quantile(0.999).to_string(),
        ]);
    }
    println!("{table}");
    table
}

/// E15b: permanent-failure sweep, greedy vs patching on the same plans.
fn fault_sweep(scale: Scale, pool: &Pool) -> Table {
    let config = GirgConfig {
        n: scale.pick(2_000, 20_000),
        ..GirgConfig::default()
    };
    let reps = scale.pick(2, 4);
    let packets = scale.pick(200, 2_000);
    let rates: Vec<f64> = scale.pick(vec![0.0, 0.15], vec![0.0, 0.05, 0.1, 0.2, 0.3]);
    // patching explores; give it room without letting loops run away
    let sim = SimConfig {
        ttl: 10_000,
        ..SimConfig::default()
    };

    let mut table = Table::new([
        "node fail",
        "policy",
        "survivor frac",
        "delivered",
        "dead end",
        "lost",
        "mean hops",
    ])
    .title("E15b: delivery under permanent node failures — greedy vs patching, same plans");
    for &rate in &rates {
        let spec = FaultSpec {
            node_fail_rate: rate,
            fail_window: 0,
            repair_after: None,
            ..FaultSpec::none()
        };
        for policy in [Policy::Greedy, Policy::Patching] {
            let agg = girg_traffic(
                pool,
                config,
                policy,
                spec,
                sim,
                reps,
                packets,
                1.0,
                0xE15B ^ (rate * 1000.0) as u64, // same seed for both policies
            );
            table.row([
                fmt_f64(rate, 2),
                policy.label().to_string(),
                fmt_f64(agg.survivor_frac(), 3),
                fmt_f64(agg.rate(agg.delivered), 3),
                fmt_f64(agg.rate(agg.dead_end), 3),
                fmt_f64(agg.rate(agg.lost), 3),
                fmt_f64(agg.mean_hops(), 2),
            ]);
        }
    }
    println!("{table}");
    table
}

/// E15c: the same traffic (load 1, mild transient faults + loss) across
/// GIRG, HRG, and the Kleinberg lattice.
fn model_comparison(scale: Scale, pool: &Pool) -> Table {
    let reps = scale.pick(2, 4);
    let packets = scale.pick(200, 2_000);
    let spec = FaultSpec {
        loss_rate: 0.05,
        node_fail_rate: 0.1,
        fail_window: 100,
        repair_after: Some(50),
        ..FaultSpec::none()
    };
    let sim = SimConfig {
        max_retries: 3,
        ..SimConfig::default()
    };

    let mut table = Table::new([
        "model",
        "n",
        "delivered",
        "lost",
        "mean hops",
        "mean vtime",
        "p50 vtime",
        "p99 vtime",
        "p999 vtime",
    ])
    .title("E15c: identical traffic across models (load 1, 5% loss, 10% transient outages)");

    // GIRG
    let girg_n = scale.pick(2_000, 20_000);
    let agg = girg_traffic(
        pool,
        GirgConfig {
            n: girg_n,
            ..GirgConfig::default()
        },
        Policy::Greedy,
        spec,
        sim,
        reps,
        packets,
        1.0,
        0xE15C,
    );
    push_model_row(&mut table, "girg", girg_n as usize, &agg);

    // HRG
    let hrg_n = scale.pick(2_000, 20_000);
    let agg = pool
        .map_seeded(reps, 0xE15C ^ 1, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let hrg = {
                let _span = smallworld_obs::Span::enter("sample_hrg");
                HrgBuilder::new(hrg_n)
                    .radius_offset(-1.0)
                    .sample(&mut rng)
                    .expect("valid HRG parameters")
            };
            let obj = HyperbolicObjective::new(&hrg);
            traffic_rep(hrg.graph(), &obj, Policy::Greedy, spec, sim, packets, 1.0, seed)
        })
        .iter()
        .fold(Agg::default(), Agg::merge);
    push_model_row(&mut table, "hrg", hrg_n, &agg);

    // Kleinberg lattice at r = d = 2 (its navigable point)
    let side = scale.pick(45, 140);
    let agg = pool
        .map_seeded(reps, 0xE15C ^ 2, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let lattice = {
                let _span = smallworld_obs::Span::enter("sample_kleinberg");
                KleinbergLatticeBuilder::new(side)
                    .sample(&mut rng)
                    .expect("valid lattice parameters")
            };
            let obj = KleinbergObjective::new(&lattice);
            traffic_rep(
                lattice.graph(),
                &obj,
                Policy::Greedy,
                spec,
                sim,
                packets,
                1.0,
                seed,
            )
        })
        .iter()
        .fold(Agg::default(), Agg::merge);
    push_model_row(&mut table, "kleinberg", (side * side) as usize, &agg);

    println!("{table}");
    table
}

/// E15d: shard-count invariance of the sharded event loop itself — one
/// GIRG, one lossy-fault workload, run at 1/2/4 shards through the
/// conservative-window engine. Every column is an exact integer or an
/// exact ratio of integers, and the rows must agree *bitwise*: the table
/// is identical at any `SMALLWORLD_THREADS`, which is exactly what the
/// CI thread-invariance job diffs.
fn shard_equivalence(scale: Scale) -> Table {
    let config = GirgConfig {
        n: scale.pick(2_000, 20_000),
        ..GirgConfig::default()
    };
    let packets = scale.pick(500, 5_000);
    let spec = FaultSpec {
        loss_rate: 0.05,
        node_fail_rate: 0.1,
        fail_window: 100,
        repair_after: Some(50),
        ..FaultSpec::none()
    };
    let sim_cfg = SimConfig {
        max_retries: 3,
        queue_capacity: Some(8),
        ..SimConfig::default()
    };
    let seed = 0xE15D;
    let mut rng = StdRng::seed_from_u64(seed);
    let girg = {
        let _span = smallworld_obs::Span::enter("sample_girg");
        config.sample(&mut rng)
    };
    let obj = GirgObjective::new(&girg);
    let plan = FaultPlan::new(spec, split_seed(seed, 0));
    let eligible = nodes_from_mask(&plan.survivor_mask(girg.graph()));
    let workload = UniformPairs::new(packets, 1.0, split_seed(seed, 1));

    // "delivered pkts": raw counts, not a rate — artifact_check holds any
    // traffic-suite column literally named "delivered" to [0, 1]
    let mut table = Table::new([
        "shards",
        "delivered pkts",
        "dropped pkts",
        "retries",
        "mean hops",
        "p99 vtime",
        "events",
        "final vtime",
        "matches serial",
    ])
    .title("E15d: sharded engine invariance — identical results at every shard count");
    let mut baseline: Option<SimSummary> = None;
    for shards in [1usize, 2, 4] {
        let summary = SimBuilder::new(girg.graph(), GreedyPolicy::new(PreparedObjective::new(&obj)))
            .faults(plan)
            .config(sim_cfg)
            .shards(shards)
            .build()
            .expect("shard-equivalence sim config is valid")
            .run_summary(workload.over(&eligible));
        let matches = baseline.as_ref().is_none_or(|b| *b == summary);
        table.row([
            shards.to_string(),
            summary.delivered.to_string(),
            summary.dropped().to_string(),
            summary.retries.to_string(),
            fmt_f64(summary.mean_delivered_hops().unwrap_or(0.0), 2),
            summary.latency_hdr.quantile(0.99).unwrap_or(0).to_string(),
            summary.events.to_string(),
            summary.final_time.to_string(),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
        baseline.get_or_insert(summary);
    }
    println!("{table}");
    table
}

fn push_model_row(table: &mut Table, model: &str, n: usize, agg: &Agg) {
    table.row([
        model.to_string(),
        n.to_string(),
        fmt_f64(agg.rate(agg.delivered), 3),
        fmt_f64(agg.rate(agg.lost), 3),
        fmt_f64(agg.mean_hops(), 2),
        fmt_f64(agg.mean_latency(), 2),
        agg.latency_quantile(0.50).to_string(),
        agg.latency_quantile(0.99).to_string(),
        agg.latency_quantile(0.999).to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallworld_core::{GreedyRouter, RouteOutcome, Router};
    use smallworld_graph::NodeId;
    use smallworld_net::{Simulation, SliceWorkload};

    #[test]
    fn quick_run_covers_all_tables() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].row_count(), 2, "load sweep rows");
        assert_eq!(tables[1].row_count(), 4, "fault sweep rows (2 rates x 2 policies)");
        assert_eq!(tables[2].row_count(), 3, "one row per model");
        assert_eq!(tables[3].row_count(), 3, "shard equivalence rows (1/2/4 shards)");
    }

    /// Acceptance: with zero faults, load 1, unbounded queues, the
    /// simulator's per-packet records match `GreedyRouter::route` exactly
    /// — same path, same outcome — for every packet.
    #[test]
    fn zero_fault_traffic_matches_greedy_router() {
        let config = GirgConfig {
            n: 1_500,
            ..GirgConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0xE15);
        let girg = config.sample(&mut rng);
        let obj = GirgObjective::new(&girg);
        let eligible: Vec<NodeId> = girg.graph().nodes().collect();
        let injections = UniformPairs::new(60, 1.0, 99).injections(&eligible);
        let sim = Simulation::new(girg.graph(), GreedyPolicy::new(PreparedObjective::new(&obj)));
        let report = sim.run(SliceWorkload::new(&injections));
        let router = GreedyRouter::new();
        for (inj, packet) in injections.iter().zip(&report.packets) {
            let record = router.route_quiet(girg.graph(), &obj, inj.source, inj.target);
            assert_eq!(packet.path, record.path, "{} -> {}", inj.source, inj.target);
            let expected = match record.outcome {
                RouteOutcome::Delivered => PacketOutcome::Delivered,
                RouteOutcome::DeadEnd => PacketOutcome::DeadEnd,
                RouteOutcome::MaxStepsExceeded => PacketOutcome::Expired,
            };
            assert_eq!(packet.outcome, expected);
        }
        assert!(report.delivery_rate() > 0.3, "sanity: some packets deliver");
    }

    /// Acceptance: on the same fault plans, the patching policy delivers
    /// at least as much as plain greedy at every rate, and strictly more
    /// in total.
    #[test]
    fn patching_beats_greedy_on_same_fault_plans() {
        let pool = Pool::with_threads(2);
        let config = GirgConfig {
            n: 1_500,
            ..GirgConfig::default()
        };
        let sim = SimConfig {
            ttl: 10_000,
            ..SimConfig::default()
        };
        let mut greedy_total = 0;
        let mut patching_total = 0;
        for &rate in &[0.1, 0.2] {
            let spec = FaultSpec {
                node_fail_rate: rate,
                fail_window: 0,
                repair_after: None,
                ..FaultSpec::none()
            };
            let seed = 0xBEEF ^ (rate * 100.0) as u64;
            let greedy = girg_traffic(
                &pool, config, Policy::Greedy, spec, sim, 2, 150, 1.0, seed,
            );
            let patching = girg_traffic(
                &pool, config, Policy::Patching, spec, sim, 2, 150, 1.0, seed,
            );
            assert_eq!(greedy.injected, patching.injected, "same workloads");
            assert!(
                patching.delivered >= greedy.delivered,
                "rate {rate}: patching {} < greedy {}",
                patching.delivered,
                greedy.delivered
            );
            greedy_total += greedy.delivered;
            patching_total += patching.delivered;
        }
        assert!(
            patching_total > greedy_total,
            "patching should strictly beat greedy overall ({patching_total} vs {greedy_total})"
        );
    }

    /// Delivery degrades gracefully: more permanent failures never help,
    /// and moderate failure rates do not collapse delivery to zero.
    #[test]
    fn delivery_degrades_gracefully_with_failures() {
        let pool = Pool::with_threads(2);
        let config = GirgConfig {
            n: 1_500,
            ..GirgConfig::default()
        };
        let mut rates = Vec::new();
        for &rate in &[0.0, 0.15, 0.4] {
            let spec = FaultSpec {
                node_fail_rate: rate,
                fail_window: 0,
                repair_after: None,
                ..FaultSpec::none()
            };
            let agg = girg_traffic(
                &pool,
                config,
                Policy::Patching,
                spec,
                SimConfig {
                    ttl: 10_000,
                    ..SimConfig::default()
                },
                2,
                150,
                1.0,
                0xD15,
            );
            rates.push(agg.rate(agg.delivered));
        }
        assert!(rates[0] > 0.9, "fault-free patching delivers: {rates:?}");
        assert!(rates[2] > 0.0, "no collapse at 40% failures: {rates:?}");
        assert!(
            rates[0] >= rates[1] && rates[1] >= rates[2],
            "delivery should be monotone in failure rate: {rates:?}"
        );
    }

    /// Acceptance: the whole experiment is bitwise identical at one
    /// thread and at many — the CI job asserts the same property on the
    /// emitted artifacts.
    #[test]
    fn tables_are_thread_invariant() {
        let one = run_with_pool(Scale::Quick, &Pool::with_threads(1));
        let many = run_with_pool(Scale::Quick, &Pool::with_threads(4));
        assert_eq!(one, many);
    }

    /// Congestion is real: the same packet batch injected faster spends
    /// more virtual time in queues.
    #[test]
    fn latency_grows_with_offered_load() {
        let config = GirgConfig {
            n: 1_500,
            ..GirgConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let girg = config.sample(&mut rng);
        let obj = GirgObjective::new(&girg);
        let eligible: Vec<NodeId> = girg.graph().nodes().collect();
        let latency_at = |load: f64| {
            let workload = UniformPairs::new(400, load, 5);
            let report =
                Simulation::new(girg.graph(), GreedyPolicy::new(PreparedObjective::new(&obj)))
                    .run(workload.over(&eligible));
            report.mean_delivered_latency().unwrap_or(0.0)
        };
        let slow = latency_at(0.5);
        let fast = latency_at(100.0);
        assert!(fast > slow, "burst load should queue: {fast} <= {slow}");
    }
}
