//! E6 — Figure 1 / §4: the typical trajectory of a greedy path.
//!
//! Successful routes are normalized to ten position buckets; within each
//! bucket the experiment averages `ln w` (weight profile) and the distance
//! to the target. The shapes to check against Figure 1:
//!
//! * the weight profile rises then falls (the peak sits in the interior),
//! * the distance to the target collapses mostly in the second half,
//! * the fraction of vertices classified into phase `V₂` rises along the
//!   path (the V₁ → V₂ transition of §7.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_analysis::table::fmt_f64;
use smallworld_analysis::{Summary, Table};
use smallworld_core::trajectory::{layer_revisits, layer_sequence, Phase};
use smallworld_core::{GirgObjective, GreedyRouter, Router, Trajectory};
use smallworld_graph::NodeId;

use crate::experiments::GirgConfig;
use crate::harness::{parallel_map, Scale};

const BUCKETS: usize = 10;

/// Plain per-bucket accumulators (mergeable across workers).
#[derive(Clone, Copy, Default)]
struct Bucket {
    log_weight_sum: f64,
    distance_sum: f64,
    phase2: usize,
    total: usize,
}

/// Per-worker result.
#[derive(Default)]
struct Partial {
    buckets: [Bucket; BUCKETS],
    /// normalized peak positions, one per analyzed route
    peaks: Vec<f64>,
    phase_reversions: usize,
    /// §8.1 layer revisits (Lemma 8.1 predicts ~0) and total layered hops
    layer_revisits: usize,
    layered_hops: usize,
}

/// Runs E6 and prints/returns its tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(8_000, 100_000);
    let reps = scale.pick(4, 8);
    let routes_per_rep = scale.pick(80, 400);
    let min_hops = 4;

    let config = GirgConfig {
        n,
        beta: 2.5,
        ..GirgConfig::default()
    };

    let results = parallel_map(reps, 0xE6, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let girg = {
            let _span = smallworld_obs::Span::enter("sample_girg");
            config.sample(&mut rng)
        };
        let obj = GirgObjective::new(&girg);
        let _span = smallworld_obs::Span::enter("route_pairs");
        let mut partial = Partial::default();
        let nverts = girg.node_count();
        for _ in 0..routes_per_rep {
            let s = NodeId::from_index(rng.gen_range(0..nverts));
            let t = NodeId::from_index(rng.gen_range(0..nverts));
            if s == t {
                continue;
            }
            let record = GreedyRouter::new().route(
                girg.graph(),
                &obj,
                s,
                t,
                &mut smallworld_core::MetricsRouteObserver::new(),
            );
            if !record.is_success() || record.hops() < min_hops {
                continue;
            }
            let traj = Trajectory::extract(&girg, &record);
            let len = traj.len();
            for (i, (&w, &d)) in traj.weights.iter().zip(traj.distances.iter()).enumerate() {
                let b = (i * BUCKETS / len).min(BUCKETS - 1);
                partial.buckets[b].log_weight_sum += w.ln();
                partial.buckets[b].distance_sum += d;
                partial.buckets[b].total += 1;
                if traj.phases[i] == Phase::ObjectiveDescent {
                    partial.buckets[b].phase2 += 1;
                }
            }
            partial
                .peaks
                .push(traj.peak_index().expect("non-empty") as f64 / (len - 1) as f64);
            // Lemma 8.1: at most one vertex per §8.1 layer (target excluded:
            // its objective is +inf)
            let layers = layer_sequence(&traj, girg.params().wmin, girg.params().beta);
            partial.layer_revisits += layer_revisits(&layers[..layers.len() - 1]);
            partial.layered_hops += layers.len() - 1;
            let mut seen2 = false;
            for &p in &traj.phases {
                match p {
                    Phase::ObjectiveDescent => seen2 = true,
                    Phase::WeightClimb if seen2 => {
                        partial.phase_reversions += 1;
                        break;
                    }
                    Phase::WeightClimb => {}
                }
            }
        }
        partial
    });

    // merge workers
    let mut buckets = [Bucket::default(); BUCKETS];
    let mut peaks: Vec<f64> = Vec::new();
    let mut reversions = 0usize;
    let mut revisits = 0usize;
    let mut layered_hops = 0usize;
    for partial in results {
        for (m, l) in buckets.iter_mut().zip(partial.buckets) {
            m.log_weight_sum += l.log_weight_sum;
            m.distance_sum += l.distance_sum;
            m.phase2 += l.phase2;
            m.total += l.total;
        }
        peaks.extend(partial.peaks);
        reversions += partial.phase_reversions;
        revisits += partial.layer_revisits;
        layered_hops += partial.layered_hops;
    }
    let route_count = peaks.len();

    let mut profile = Table::new(["position", "mean ln(w)", "mean dist to t", "frac in V2"])
        .title("E6 (Figure 1): averaged greedy-path profile (normalized position)");
    for (i, b) in buckets.iter().enumerate() {
        let (lw, dist, frac2) = if b.total == 0 {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                b.log_weight_sum / b.total as f64,
                b.distance_sum / b.total as f64,
                b.phase2 as f64 / b.total as f64,
            )
        };
        profile.row([
            format!("{:.2}", (i as f64 + 0.5) / BUCKETS as f64),
            fmt_f64(lw, 3),
            fmt_f64(dist, 4),
            fmt_f64(frac2, 3),
        ]);
    }
    println!("{profile}");

    let peak_summary: Summary = peaks.iter().copied().collect();
    let interior = peaks.iter().filter(|&&p| p > 0.0 && p < 1.0).count();
    let mut shape =
        Table::new(["quantity", "value"]).title("E6 (Figure 1): trajectory shape statistics");
    shape.row(["routes analyzed".to_string(), route_count.to_string()]);
    shape.row([
        "mean normalized weight-peak position".to_string(),
        fmt_f64(peak_summary.mean(), 3),
    ]);
    shape.row([
        "fraction of paths with interior peak".to_string(),
        fmt_f64(
            if route_count == 0 {
                f64::NAN
            } else {
                interior as f64 / route_count as f64
            },
            3,
        ),
    ]);
    shape.row([
        "paths reverting V2 -> V1".to_string(),
        format!("{reversions}/{route_count}"),
    ]);
    shape.row([
        "layer revisits per hop (Lemma 8.1: ~0)".to_string(),
        fmt_f64(
            if layered_hops == 0 {
                f64::NAN
            } else {
                revisits as f64 / layered_hops as f64
            },
            4,
        ),
    ]);
    println!("{shape}");

    vec![profile, shape]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_profile() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 10);
        assert_eq!(tables[1].row_count(), 5);
    }
}
