//! Machine-readable experiment artifacts.
//!
//! [`Artifact`] wraps one binary invocation's JSONL output: it opens the
//! sink selected by `--json <path>` / `SMALLWORLD_JSON` (doing nothing at
//! all when neither is given), stamps a `meta` record, and then records
//! each experiment suite — its tables, wall-clock time, and the metrics
//! and span deltas it produced — followed by a final `summary` with total
//! runtime and peak RSS. The schema is documented in `EXPERIMENTS.md` and
//! validated by the `artifact_check` binary.

use std::time::Instant;

use smallworld_analysis::Table;
use smallworld_obs::metrics::Registry;
use smallworld_obs::sink::{meta_record, suite_record, summary_record, table_record};
use smallworld_obs::{peak_rss_bytes, JsonlSink};

use crate::harness::Scale;

fn scale_name(scale: Scale) -> &'static str {
    scale.pick("quick", "full")
}

/// One binary invocation's artifact session.
///
/// Construct with [`Artifact::open`], funnel every suite through
/// [`Artifact::run_suite`], and end with [`Artifact::finish`]. All sink
/// I/O errors are reported to stderr and otherwise ignored: artifact
/// trouble must never abort an hour-long experiment run.
#[derive(Debug)]
pub struct Artifact {
    sink: Option<JsonlSink>,
    started: Instant,
}

impl Artifact {
    /// Opens the artifact selected by the invocation (if any) and writes
    /// the `meta` record. Also resets the global metrics registry and span
    /// table so the artifact accounts only for this run.
    pub fn open(binary: &str, scale: Scale) -> Artifact {
        Registry::global().reset();
        smallworld_obs::span::reset();
        let sink = match JsonlSink::from_invocation() {
            Ok(sink) => sink,
            Err(err) => {
                eprintln!("warning: cannot open JSON artifact: {err}");
                None
            }
        };
        let artifact = Artifact {
            sink,
            started: Instant::now(),
        };
        let threads = smallworld_par::thread_count() as u64;
        artifact.write(&meta_record(binary, scale_name(scale), threads));
        artifact
    }

    /// Where the artifact is written, when one was requested.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.sink.as_ref().map(JsonlSink::path)
    }

    /// Runs one experiment suite and records it: one `table` record per
    /// returned table, then a `suite` record with the wall-clock seconds
    /// and the metric/span activity the suite generated. Returns the
    /// tables and the elapsed seconds.
    pub fn run_suite(
        &self,
        name: &str,
        scale: Scale,
        run: impl FnOnce(Scale) -> Vec<Table>,
    ) -> (Vec<Table>, f64) {
        smallworld_obs::span::reset();
        let before = Registry::global().snapshot();
        let start = Instant::now();
        let tables = run(scale);
        let wall_secs = start.elapsed().as_secs_f64();
        let delta = Registry::global().snapshot().since(&before);
        let spans = smallworld_obs::span::snapshot();
        for table in &tables {
            self.write(&table_record(name, table));
        }
        self.write(&suite_record(name, wall_secs, &delta, &spans));
        (tables, wall_secs)
    }

    /// Writes the final `summary` record: total wall-clock, peak RSS, and
    /// the merged registry snapshot for the whole run.
    pub fn finish(self) {
        let wall_secs = self.started.elapsed().as_secs_f64();
        let metrics = Registry::global().snapshot();
        self.write(&summary_record(wall_secs, peak_rss_bytes(), &metrics));
    }

    fn write(&self, record: &smallworld_obs::JsonValue) {
        if let Some(sink) = &self.sink {
            if let Err(err) = sink.write(record) {
                eprintln!("warning: cannot write JSON artifact record: {err}");
            }
        }
    }
}

/// Runs a single-suite binary (the `exp_*` wrappers) end to end: open the
/// artifact, run the suite, summarize. This keeps every wrapper to one
/// line while giving it the same `--json` support as `run_all`.
pub fn run_single_suite(
    binary: &str,
    suite: &str,
    run: impl FnOnce(Scale) -> Vec<Table>,
) -> Vec<Table> {
    let scale = Scale::from_env();
    let artifact = Artifact::open(binary, scale);
    let (tables, _) = artifact.run_suite(suite, scale, run);
    artifact.finish();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallworld_obs::JsonValue;

    /// Artifact with no sink configured is inert (and must not panic).
    #[test]
    fn artifact_without_sink_is_silent() {
        // from_invocation sees the test binary's args, which have no
        // --json flag; SMALLWORLD_JSON is not set in the test environment
        let artifact = Artifact {
            sink: None,
            started: Instant::now(),
        };
        let (tables, wall) = artifact.run_suite("S", Scale::Quick, |_| {
            vec![Table::new(["a"]).title("t")]
        });
        assert_eq!(tables.len(), 1);
        assert!(wall >= 0.0);
        artifact.finish();
    }

    /// A full session against an explicit file produces the documented
    /// record sequence, every line parseable.
    #[test]
    fn artifact_emits_meta_tables_suite_summary() {
        let path = std::env::temp_dir().join("smallworld-bench-artifact-test.jsonl");
        let artifact = Artifact {
            sink: Some(JsonlSink::create(&path).unwrap()),
            started: Instant::now(),
        };
        artifact.write(&meta_record("test", "quick", 1));
        let (_, _) = artifact.run_suite("E0", Scale::Quick, |_| {
            smallworld_obs::metrics::counter("artifact.test.marker").inc();
            let mut t = Table::new(["x", "y"]).title("demo");
            t.row(["1", "2"]);
            vec![t]
        });
        artifact.finish();

        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let records: Vec<JsonValue> = contents
            .lines()
            .map(|l| JsonValue::parse(l).expect("line parses"))
            .collect();
        let types: Vec<&str> = records
            .iter()
            .map(|r| r.get("type").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(types, ["meta", "table", "suite", "summary"]);
        // the suite delta picked up the counter bumped inside the suite
        let suite_counters = records[2]
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("suite metrics");
        assert_eq!(
            suite_counters
                .get("artifact.test.marker")
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }
}
