//! Machine-readable experiment artifacts.
//!
//! [`Artifact`] wraps one binary invocation's JSONL output: it opens the
//! sink selected by `--json <path>` / `SMALLWORLD_JSON` (doing nothing at
//! all when neither is given), stamps a `meta` record, and then records
//! each experiment suite — its tables, wall-clock time, and the metrics
//! and span deltas it produced — followed by a final `summary` with total
//! runtime and peak RSS. The schema is documented in `EXPERIMENTS.md` and
//! validated by the `artifact_check` binary.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use smallworld_analysis::Table;
use smallworld_net::{Time, TimelineSample};
use smallworld_obs::metrics::Registry;
use smallworld_obs::sink::{
    meta_record, report_record, resolve_profile_target, suite_record, summary_record, table_record,
};
use smallworld_obs::span::SpanStats;
use smallworld_obs::{peak_rss_bytes, JsonValue, JsonlSink};

use crate::harness::Scale;

/// Extra records experiment suites queue for the artifact (e.g. the
/// `net.timeline` sections from E15). A suite runs as a plain
/// `Fn(Scale) -> Vec<Table>`, so this side channel is how non-table data
/// reaches the sink; [`Artifact::run_suite`] drains it after the suite's
/// tables, preserving push order.
static EXTRA: Mutex<Vec<JsonValue>> = Mutex::new(Vec::new());

/// Queues one extra record for the current suite. See [`Artifact::run_suite`].
pub fn push_record(record: JsonValue) {
    EXTRA.lock().expect("extra records poisoned").push(record);
}

fn drain_extra() -> Vec<JsonValue> {
    std::mem::take(&mut *EXTRA.lock().expect("extra records poisoned"))
}

/// Builds a `net.timeline` record: the congestion timeline of one traffic
/// simulation, as `[at, queued, in_flight, delivered, dropped]` sample
/// rows in virtual time.
pub fn timeline_record(
    suite: &str,
    label: &str,
    interval: Time,
    samples: &[TimelineSample],
) -> JsonValue {
    JsonValue::object([
        ("type", JsonValue::from("net.timeline")),
        ("suite", JsonValue::from(suite)),
        ("label", JsonValue::from(label)),
        ("interval", JsonValue::from(interval)),
        (
            "headers",
            JsonValue::array(
                ["at", "queued", "in_flight", "delivered", "dropped"].map(JsonValue::from),
            ),
        ),
        (
            "samples",
            JsonValue::array(samples.iter().map(|s| {
                JsonValue::array([
                    JsonValue::from(s.at),
                    JsonValue::from(s.queued),
                    JsonValue::from(s.in_flight),
                    JsonValue::from(s.delivered),
                    JsonValue::from(s.dropped),
                ])
            })),
        ),
    ])
}

fn scale_name(scale: Scale) -> &'static str {
    scale.pick("quick", "full")
}

/// One binary invocation's artifact session.
///
/// Construct with [`Artifact::open`], funnel every suite through
/// [`Artifact::run_suite`], and end with [`Artifact::finish`]. All sink
/// I/O errors are reported to stderr and otherwise ignored: artifact
/// trouble must never abort an hour-long experiment run.
#[derive(Debug)]
pub struct Artifact {
    sink: Option<JsonlSink>,
    started: Instant,
    /// Span stats accumulated across every suite (the global span table
    /// resets per suite), feeding the final `report` phase tree and the
    /// optional `--profile` folded-stack output.
    spans: Mutex<BTreeMap<String, SpanStats>>,
}

impl Artifact {
    /// Opens the artifact selected by the invocation (if any) and writes
    /// the `meta` record. Also resets the global metrics registry and span
    /// table so the artifact accounts only for this run.
    pub fn open(binary: &str, scale: Scale) -> Artifact {
        Registry::global().reset();
        smallworld_obs::span::reset();
        drain_extra();
        let sink = match JsonlSink::from_invocation() {
            Ok(sink) => sink,
            Err(err) => {
                eprintln!("warning: cannot open JSON artifact: {err}");
                None
            }
        };
        let artifact = Artifact {
            sink,
            started: Instant::now(),
            spans: Mutex::new(BTreeMap::new()),
        };
        let threads = smallworld_par::thread_count() as u64;
        artifact.write(&meta_record(binary, scale_name(scale), threads));
        artifact
    }

    /// Where the artifact is written, when one was requested.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.sink.as_ref().map(JsonlSink::path)
    }

    /// Runs one experiment suite and records it: one `table` record per
    /// returned table, any records the suite queued via [`push_record`]
    /// (e.g. `net.timeline` sections), then a `suite` record with the
    /// wall-clock seconds and the metric/span activity the suite
    /// generated. Returns the tables and the elapsed seconds.
    pub fn run_suite(
        &self,
        name: &str,
        scale: Scale,
        run: impl FnOnce(Scale) -> Vec<Table>,
    ) -> (Vec<Table>, f64) {
        smallworld_obs::span::reset();
        drain_extra();
        let before = Registry::global().snapshot();
        let start = Instant::now();
        let tables = run(scale);
        let wall_secs = start.elapsed().as_secs_f64();
        let delta = Registry::global().snapshot().since(&before);
        let spans = smallworld_obs::span::snapshot();
        {
            let mut acc = self.spans.lock().expect("span accumulator poisoned");
            for (path, s) in &spans {
                let entry = acc.entry(path.clone()).or_default();
                entry.count += s.count;
                entry.total_ns += s.total_ns;
                entry.self_ns += s.self_ns;
            }
        }
        for table in &tables {
            self.write(&table_record(name, table));
        }
        for record in drain_extra() {
            self.write(&record);
        }
        self.write(&suite_record(name, wall_secs, &delta, &spans));
        (tables, wall_secs)
    }

    /// Writes the final `report` record (phase tree, metric snapshot with
    /// HDR quantiles, peak RSS + source) and the `summary` record (total
    /// wall-clock, peak RSS, merged registry). When `--profile <path>` /
    /// `SMALLWORLD_PROFILE` is set, also writes the accumulated span table
    /// in folded-stack format to that path.
    pub fn finish(self) {
        let wall_secs = self.started.elapsed().as_secs_f64();
        let metrics = Registry::global().snapshot();
        let spans = std::mem::take(&mut *self.spans.lock().expect("span accumulator poisoned"));
        self.write(&report_record(&metrics, &spans));
        self.write(&summary_record(wall_secs, peak_rss_bytes(), &metrics));
        if let Some(path) = resolve_profile_target(std::env::args().skip(1)) {
            let folded = smallworld_obs::span::to_folded(&spans);
            if let Err(err) = std::fs::write(&path, folded) {
                eprintln!("warning: cannot write profile {}: {err}", path.display());
            } else {
                eprintln!("profile: folded stacks written to {}", path.display());
            }
        }
    }

    fn write(&self, record: &smallworld_obs::JsonValue) {
        if let Some(sink) = &self.sink {
            if let Err(err) = sink.write(record) {
                eprintln!("warning: cannot write JSON artifact record: {err}");
            }
        }
    }
}

/// Runs a single-suite binary (the `exp_*` wrappers) end to end: open the
/// artifact, run the suite, summarize. This keeps every wrapper to one
/// line while giving it the same `--json` support as `run_all`.
pub fn run_single_suite(
    binary: &str,
    suite: &str,
    run: impl FnOnce(Scale) -> Vec<Table>,
) -> Vec<Table> {
    let scale = Scale::from_env();
    let artifact = Artifact::open(binary, scale);
    let (tables, _) = artifact.run_suite(suite, scale, run);
    artifact.finish();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallworld_obs::JsonValue;

    /// Artifact with no sink configured is inert (and must not panic).
    #[test]
    fn artifact_without_sink_is_silent() {
        // from_invocation sees the test binary's args, which have no
        // --json flag; SMALLWORLD_JSON is not set in the test environment
        let artifact = Artifact {
            sink: None,
            started: Instant::now(),
            spans: Mutex::new(BTreeMap::new()),
        };
        let (tables, wall) = artifact.run_suite("S", Scale::Quick, |_| {
            vec![Table::new(["a"]).title("t")]
        });
        assert_eq!(tables.len(), 1);
        assert!(wall >= 0.0);
        artifact.finish();
    }

    /// A full session against an explicit file produces the documented
    /// record sequence, every line parseable.
    #[test]
    fn artifact_emits_meta_tables_suite_summary() {
        let path = std::env::temp_dir().join("smallworld-bench-artifact-test.jsonl");
        let artifact = Artifact {
            sink: Some(JsonlSink::create(&path).unwrap()),
            started: Instant::now(),
            spans: Mutex::new(BTreeMap::new()),
        };
        artifact.write(&meta_record("test", "quick", 1));
        let (_, _) = artifact.run_suite("E0", Scale::Quick, |_| {
            smallworld_obs::metrics::counter("artifact.test.marker").inc();
            let mut t = Table::new(["x", "y"]).title("demo");
            t.row(["1", "2"]);
            vec![t]
        });
        artifact.finish();

        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let records: Vec<JsonValue> = contents
            .lines()
            .map(|l| JsonValue::parse(l).expect("line parses"))
            .collect();
        let types: Vec<&str> = records
            .iter()
            .map(|r| r.get("type").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(types, ["meta", "table", "suite", "report", "summary"]);
        // the suite delta picked up the counter bumped inside the suite
        let suite_counters = records[2]
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("suite metrics");
        assert_eq!(
            suite_counters
                .get("artifact.test.marker")
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }
}
