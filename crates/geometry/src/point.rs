//! Points on the torus `T^d` and torus distances.

use std::fmt;

use rand::Rng;

/// A norm used to measure torus distances.
///
/// The paper uses the maximum norm (§2.1) but remarks that any norm yields
/// the same model up to the Θ-constants of (EP1)/(EP2). [`Norm::Max`] is the
/// default and the one used on all hot paths.
///
/// # Examples
///
/// ```
/// use smallworld_geometry::{Norm, Point};
///
/// let a = Point::new([0.0, 0.0]);
/// let b = Point::new([0.3, 0.4]);
/// assert!((Norm::Max.distance(&a, &b) - 0.4).abs() < 1e-12);
/// assert!((Norm::L1.distance(&a, &b) - 0.7).abs() < 1e-12);
/// assert!((Norm::L2.distance(&a, &b) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Norm {
    /// The `∞`-norm `max_i |x_i - y_i|` (torus-wrapped). The paper's choice.
    #[default]
    Max,
    /// The `1`-norm (Manhattan distance, torus-wrapped).
    L1,
    /// The Euclidean norm (torus-wrapped).
    L2,
}

impl Norm {
    /// Torus distance between two points under this norm.
    pub fn distance<const D: usize>(self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Norm::Max => a.distance(b),
            Norm::L1 => {
                let mut sum = 0.0;
                for i in 0..D {
                    sum += axis_distance(a.coords[i], b.coords[i]);
                }
                sum
            }
            Norm::L2 => {
                let mut sum = 0.0;
                for i in 0..D {
                    let d = axis_distance(a.coords[i], b.coords[i]);
                    sum += d * d;
                }
                sum.sqrt()
            }
        }
    }
}

/// Distance of two coordinates on the circle `R / Z`.
#[inline]
pub fn axis_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// A point on the `D`-dimensional torus `T^D = [0,1)^D` with opposite faces
/// identified.
///
/// Coordinates are always kept canonical in `[0,1)`; the constructor wraps
/// out-of-range values. All distances are torus distances.
///
/// # Examples
///
/// ```
/// use smallworld_geometry::Point;
///
/// // constructor wraps into [0,1)
/// let p = Point::new([1.25, -0.25]);
/// assert_eq!(p.coords(), &[0.25, 0.75]);
///
/// // the farthest any two points can be (max norm) is 1/2 per axis
/// let q = Point::new([0.75, 0.25]);
/// assert!((p.distance(&q) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Default for Point<D> {
    /// The origin.
    fn default() -> Self {
        Point::origin()
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point, wrapping each coordinate into `[0,1)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not finite.
    pub fn new(coords: [f64; D]) -> Self {
        let mut wrapped = [0.0; D];
        for (w, &c) in wrapped.iter_mut().zip(coords.iter()) {
            assert!(c.is_finite(), "torus coordinate must be finite, got {c}");
            *w = wrap(c);
        }
        Point { coords: wrapped }
    }

    /// The origin `(0, …, 0)`.
    pub const fn origin() -> Self {
        Point { coords: [0.0; D] }
    }

    /// Samples a point uniformly at random on the torus.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use smallworld_geometry::Point;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let p: Point<3> = Point::random(&mut rng);
    /// assert!(p.coords().iter().all(|&c| (0.0..1.0).contains(&c)));
    /// ```
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut coords = [0.0; D];
        for c in &mut coords {
            *c = rng.gen::<f64>();
        }
        Point { coords }
    }

    /// Borrow the canonical coordinates.
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// The `i`-th coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `i >= D`.
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Torus distance in the maximum norm — the paper's `‖x_u − x_v‖`.
    #[inline]
    pub fn distance(&self, other: &Point<D>) -> f64 {
        let mut max = 0.0f64;
        for i in 0..D {
            let d = axis_distance(self.coords[i], other.coords[i]);
            if d > max {
                max = d;
            }
        }
        max
    }

    /// `‖x_u − x_v‖^D`, the volume scale appearing throughout the paper
    /// (e.g. in the edge probability (EP1) and the objective φ).
    #[inline]
    pub fn distance_pow_d(&self, other: &Point<D>) -> f64 {
        self.distance(other).powi(D as i32)
    }

    /// The point shifted by `delta` (component-wise, wrapped back onto the
    /// torus). Useful for planting vertices at controlled distances.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallworld_geometry::Point;
    ///
    /// let p = Point::new([0.9]);
    /// let q = p.translate(&[0.2]);
    /// assert!((q.coord(0) - 0.1).abs() < 1e-12);
    /// ```
    pub fn translate(&self, delta: &[f64; D]) -> Point<D> {
        let mut coords = [0.0; D];
        for i in 0..D {
            coords[i] = wrap(self.coords[i] + delta[i]);
        }
        Point { coords }
    }
}

/// Wraps a finite coordinate into `[0,1)`.
#[inline]
fn wrap(c: f64) -> f64 {
    let f = c - c.floor();
    // `c.floor()` can round such that f == 1.0 for tiny negative c.
    if f >= 1.0 {
        0.0
    } else {
        f
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.6}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn wrap_canonicalizes() {
        assert_eq!(Point::new([1.5]).coord(0), 0.5);
        assert_eq!(Point::new([-0.25]).coord(0), 0.75);
        assert_eq!(Point::new([0.0]).coord(0), 0.0);
        assert_eq!(Point::new([2.0]).coord(0), 0.0);
        assert_eq!(Point::new([-3.0]).coord(0), 0.0);
    }

    #[test]
    fn wrap_handles_tiny_negative() {
        let p = Point::new([-1e-20]);
        assert!((0.0..1.0).contains(&p.coord(0)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_coordinate_panics() {
        let _ = Point::new([f64::NAN]);
    }

    #[test]
    fn distance_is_wraparound_aware() {
        let a = Point::new([0.05, 0.5]);
        let b = Point::new([0.95, 0.5]);
        assert!((a.distance(&b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn distance_max_norm_picks_largest_axis() {
        let a = Point::new([0.0, 0.0, 0.0]);
        let b = Point::new([0.1, 0.3, 0.2]);
        assert!((a.distance(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn distance_pow_d_matches_powi() {
        let a = Point::new([0.1, 0.2]);
        let b = Point::new([0.4, 0.9]);
        let d = a.distance(&b);
        assert!((a.distance_pow_d(&b) - d * d).abs() < 1e-15);
    }

    #[test]
    fn norms_agree_in_one_dimension() {
        let a = Point::new([0.2]);
        let b = Point::new([0.7]);
        let dm = Norm::Max.distance(&a, &b);
        let d1 = Norm::L1.distance(&a, &b);
        let d2 = Norm::L2.distance(&a, &b);
        assert!((dm - 0.5).abs() < 1e-12);
        assert!((dm - d1).abs() < 1e-12);
        assert!((dm - d2).abs() < 1e-12);
    }

    #[test]
    fn translate_round_trips() {
        let p = Point::new([0.3, 0.8]);
        let q = p.translate(&[0.5, 0.5]).translate(&[0.5, 0.5]);
        assert!(p.distance(&q) < 1e-12);
    }

    #[test]
    fn random_points_are_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p: Point<4> = Point::random(&mut rng);
            assert!(p.coords().iter().all(|&c| (0.0..1.0).contains(&c)));
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let p: Point<2> = Point::origin();
        assert!(!format!("{p:?}").is_empty());
    }

    fn coord_strategy() -> impl Strategy<Value = f64> {
        // include out-of-range values to exercise wrapping
        prop_oneof![-2.0..2.0f64, 0.0..1.0f64]
    }

    proptest! {
        #[test]
        fn prop_distance_symmetric(a in [coord_strategy(), coord_strategy()],
                                   b in [coord_strategy(), coord_strategy()]) {
            let p = Point::new(a);
            let q = Point::new(b);
            prop_assert!((p.distance(&q) - q.distance(&p)).abs() < 1e-12);
        }

        #[test]
        fn prop_distance_bounded_by_half(a in prop::array::uniform3(coord_strategy()), b in prop::array::uniform3(coord_strategy())) {
            let p = Point::new(a);
            let q = Point::new(b);
            let d = p.distance(&q);
            prop_assert!((0.0..=0.5).contains(&d));
        }

        #[test]
        fn prop_identity_of_indiscernibles(a in prop::array::uniform2(0.0..1.0f64)) {
            let p = Point::new(a);
            prop_assert_eq!(p.distance(&p), 0.0);
        }

        #[test]
        fn prop_triangle_inequality(a in prop::array::uniform2(coord_strategy()),
                                    b in prop::array::uniform2(coord_strategy()),
                                    c in prop::array::uniform2(coord_strategy())) {
            let (p, q, r) = (Point::new(a), Point::new(b), Point::new(c));
            prop_assert!(p.distance(&r) <= p.distance(&q) + q.distance(&r) + 1e-12);
        }

        #[test]
        fn prop_translation_invariance(a in prop::array::uniform2(0.0..1.0f64),
                                       b in prop::array::uniform2(0.0..1.0f64),
                                       t in prop::array::uniform2(-1.0..1.0f64)) {
            let p = Point::new(a);
            let q = Point::new(b);
            let d0 = p.distance(&q);
            let d1 = p.translate(&t).distance(&q.translate(&t));
            prop_assert!((d0 - d1).abs() < 1e-9);
        }

        #[test]
        fn prop_norm_ordering(a in prop::array::uniform3(coord_strategy()), b in prop::array::uniform3(coord_strategy())) {
            // max-norm <= L2 <= L1 always
            let p = Point::new(a);
            let q = Point::new(b);
            let dm = Norm::Max.distance(&p, &q);
            let d2 = Norm::L2.distance(&p, &q);
            let d1 = Norm::L1.distance(&p, &q);
            prop_assert!(dm <= d2 + 1e-12);
            prop_assert!(d2 <= d1 + 1e-12);
        }
    }
}
