//! Geometry of the `d`-dimensional torus `T^d = R^d / Z^d`.
//!
//! The GIRG model of the paper places vertices on the torus `[0,1)^d` with
//! opposite faces identified, and measures distances in the maximum norm
//! (§2.1). This crate provides:
//!
//! * [`Point`] — a position on `T^d` with torus distances in several norms,
//! * [`Grid`] — a uniform `2^level`-per-side grid over the torus,
//! * [`MortonCell`] — grid cells addressed by Morton (z-order) prefixes, the
//!   backbone of the expected-linear-time GIRG sampler,
//! * [`morton`] — bit-interleaving primitives.
//!
//! The dimension `d` is a const generic everywhere, so the distance loops in
//! the routing hot path unroll at compile time.
//!
//! # Examples
//!
//! ```
//! use smallworld_geometry::Point;
//!
//! let a = Point::new([0.1, 0.9]);
//! let b = Point::new([0.9, 0.1]);
//! // wrap-around: each axis is 0.2 apart on the torus
//! assert!((a.distance(&b) - 0.2).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod grid;
pub mod morton;
pub mod point;

pub use grid::{Grid, MortonCell};
pub use point::{Norm, Point};
