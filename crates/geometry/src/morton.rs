//! Morton (z-order) codes for grid cells on the torus.
//!
//! The expected-linear-time GIRG sampler stores each weight layer's vertices
//! sorted by the Morton code of their grid cell at a maximum refinement
//! level. A coarser cell then corresponds to a *contiguous range* of Morton
//! codes, so "all layer-`i` vertices inside cell `C`" is a binary search.
//!
//! Codes are built MSB-first so that the code of a cell at level `ℓ` is a
//! prefix of the codes of all its descendants:
//!
//! ```text
//! level-ℓ code  c  covers max-level codes [ c << D(L−ℓ), (c+1) << D(L−ℓ) )
//! ```

use crate::point::Point;

/// Maximum grid refinement level such that `D * level` bits fit into `u64`
/// for the given dimension.
pub const fn max_level(dim: usize) -> u32 {
    (63 / dim) as u32
}

/// The Morton code of the finest grid cell containing `point`, at
/// [`max_level`]`(D)` refinement.
///
/// Points that are close on the torus receive nearby codes (up to the
/// z-order seams), so sorting vertices by this key clusters geometric
/// neighborhoods into contiguous id ranges — the sort key behind
/// Morton-order vertex relabeling in `smallworld-graph`.
///
/// # Examples
///
/// ```
/// use smallworld_geometry::morton::point_code;
/// use smallworld_geometry::Point;
///
/// let origin = point_code(&Point::new([0.0, 0.0]));
/// let nearby = point_code(&Point::new([1e-12, 1e-12]));
/// let far = point_code(&Point::new([0.5, 0.5]));
/// assert_eq!(origin, nearby);
/// assert!(far > origin);
/// ```
pub fn point_code<const D: usize>(point: &Point<D>) -> u64 {
    let level = max_level(D);
    let cells = 1u64 << level;
    let mut coords = [0u32; D];
    for (i, c) in coords.iter_mut().enumerate() {
        // canonical coordinates lie in [0, 1); the min guards against a
        // product rounding up to the cell count
        *c = ((point.coord(i) * cells as f64) as u64).min(cells - 1) as u32;
    }
    encode(coords, level)
}

/// Interleaves the low `level` bits of each coordinate, MSB first.
///
/// The resulting code has `D * level` significant bits. Axis 0 contributes
/// the most significant bit within each group of `D`.
///
/// # Panics
///
/// Panics if `D == 0`, or `D * level > 63`, or any coordinate does not fit
/// into `level` bits.
///
/// # Examples
///
/// ```
/// use smallworld_geometry::morton::{decode, encode};
///
/// let code = encode([0b10u32, 0b11u32], 2);
/// assert_eq!(code, 0b1_1_0_1); // bits interleaved MSB-first: x1 y1 x0 y0
/// assert_eq!(decode::<2>(code, 2), [0b10, 0b11]);
/// ```
pub fn encode<const D: usize>(coords: [u32; D], level: u32) -> u64 {
    assert!(D > 0, "dimension must be positive");
    assert!(
        (D as u32) * level <= 63,
        "morton code of dimension {D} and level {level} does not fit in u64"
    );
    for &c in &coords {
        assert!(
            level == 32 || c < (1u32 << level),
            "coordinate {c} does not fit into {level} bits"
        );
    }
    let mut code = 0u64;
    for b in (0..level).rev() {
        for &c in &coords {
            code = (code << 1) | u64::from((c >> b) & 1);
        }
    }
    code
}

/// Inverse of [`encode`]: recovers the integer coordinates of a cell.
///
/// # Panics
///
/// Panics if `D == 0` or `D * level > 63`.
pub fn decode<const D: usize>(code: u64, level: u32) -> [u32; D] {
    assert!(D > 0, "dimension must be positive");
    assert!(
        (D as u32) * level <= 63,
        "morton code of dimension {D} and level {level} does not fit in u64"
    );
    let mut coords = [0u32; D];
    let mut code = code;
    for b in 0..level {
        for j in (0..D).rev() {
            coords[j] |= ((code & 1) as u32) << b;
            code >>= 1;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_zero_is_zero() {
        assert_eq!(encode([0u32, 0u32], 10), 0);
    }

    #[test]
    fn encode_level_zero_is_zero() {
        assert_eq!(encode([0u32; 3], 0), 0);
    }

    #[test]
    fn known_small_values_2d() {
        // 2x2 grid: z-order is (0,0) (0,1) (1,0) (1,1) with axis 0 as MSB
        assert_eq!(encode([0u32, 0u32], 1), 0);
        assert_eq!(encode([0u32, 1u32], 1), 1);
        assert_eq!(encode([1u32, 0u32], 1), 2);
        assert_eq!(encode([1u32, 1u32], 1), 3);
    }

    #[test]
    fn prefix_property() {
        // a child's code starts with its parent's code
        let parent = encode([0b1u32, 0b0u32], 1);
        for child_suffix in 0..4u64 {
            let child = (parent << 2) | child_suffix;
            let coords = decode::<2>(child, 2);
            assert_eq!(coords[0] >> 1, 0b1);
            assert_eq!(coords[1] >> 1, 0b0);
        }
    }

    #[test]
    fn max_level_fits() {
        assert_eq!(max_level(1), 63);
        assert_eq!(max_level(2), 31);
        assert_eq!(max_level(3), 21);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_coordinate_panics() {
        let _ = encode([4u32], 2);
    }

    #[test]
    #[should_panic(expected = "fit in u64")]
    fn oversized_level_panics() {
        let _ = encode([0u32; 2], 32);
    }

    #[test]
    fn point_code_is_deterministic_and_in_range() {
        let p = Point::new([0.3, 0.7]);
        let code = point_code(&p);
        assert_eq!(code, point_code(&p));
        assert!(code < 1u64 << (2 * max_level(2)));
    }

    #[test]
    fn point_code_matches_explicit_cell() {
        let level = max_level(2);
        let p = Point::new([0.25, 0.5]);
        let cells = (1u64 << level) as f64;
        let expected = encode(
            [(0.25 * cells) as u32, (0.5 * cells) as u32],
            level,
        );
        assert_eq!(point_code(&p), expected);
    }

    proptest! {
        #[test]
        fn prop_point_code_in_range(x in 0.0f64..1.0, y in 0.0f64..1.0) {
            let code = point_code(&Point::new([x, y]));
            prop_assert!(code < 1u64 << (2 * max_level(2)));
        }

        #[test]
        fn prop_point_code_sorts_axis0_halves(x in 0.0f64..0.49, y in 0.0f64..1.0) {
            // axis 0 contributes the most significant bit, so any point in
            // the lower half sorts before any point in the upper half
            let lo = point_code(&Point::new([x, y]));
            let hi = point_code(&Point::new([x + 0.5, y]));
            prop_assert!(lo < hi);
        }

        #[test]
        fn prop_roundtrip_1d(c in 0u32..1 << 20) {
            prop_assert_eq!(decode::<1>(encode([c], 20), 20), [c]);
        }

        #[test]
        fn prop_roundtrip_2d(a in 0u32..1 << 15, b in 0u32..1 << 15) {
            prop_assert_eq!(decode::<2>(encode([a, b], 15), 15), [a, b]);
        }

        #[test]
        fn prop_roundtrip_3d(a in 0u32..1 << 10, b in 0u32..1 << 10, c in 0u32..1 << 10) {
            prop_assert_eq!(decode::<3>(encode([a, b, c], 10), 10), [a, b, c]);
        }

        #[test]
        fn prop_monotone_in_axis0_prefix(a in 0u32..1 << 10, b in 0u32..1 << 10) {
            // increasing the most significant axis-0 bit strictly increases the code
            prop_assume!(a < 1 << 9);
            let lo = encode([a, b], 10);
            let hi = encode([a | (1 << 9), b], 10);
            prop_assert!(hi > lo);
        }

        #[test]
        fn prop_parent_prefix(a in 0u32..1 << 12, b in 0u32..1 << 12) {
            let child = encode([a, b], 12);
            let parent = encode([a >> 1, b >> 1], 11);
            prop_assert_eq!(child >> 2, parent);
        }
    }
}
