//! Uniform dyadic grids on the torus and Morton-addressed cells.
//!
//! A [`Grid`] at `level ℓ` partitions `T^d` into `2^{ℓd}` congruent cubes of
//! side `2^{-ℓ}`. A [`MortonCell`] identifies one of those cubes by its
//! z-order prefix, which makes the cell hierarchy (children, parents,
//! descendant ranges) trivial bit arithmetic. Both are used by the
//! expected-linear-time GIRG sampler and by the `w`-grid constructions of the
//! paper (Definition 7.7).

use crate::morton;
use crate::point::Point;

/// A uniform grid over `T^D` with `2^level` cells per side.
///
/// # Examples
///
/// ```
/// use smallworld_geometry::{Grid, Point};
///
/// let grid: Grid<2> = Grid::new(3); // 8x8 cells
/// let cell = grid.cell_of(&Point::new([0.6, 0.1]));
/// assert_eq!(cell.coords::<2>(), [4, 0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grid<const D: usize> {
    level: u32,
}

impl<const D: usize> Grid<D> {
    /// Creates a grid with `2^level` cells per side.
    ///
    /// # Panics
    ///
    /// Panics if `D * level > 63` (the Morton code would not fit in `u64`).
    pub fn new(level: u32) -> Self {
        assert!(
            level <= morton::max_level(D),
            "grid level {level} too deep for dimension {D}"
        );
        Grid { level }
    }

    /// The refinement level of this grid.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of cells along each axis (`2^level`).
    pub fn cells_per_side(&self) -> u32 {
        1u32 << self.level
    }

    /// Total number of cells (`2^{level·D}`).
    pub fn cell_count(&self) -> u64 {
        1u64 << (self.level as usize * D)
    }

    /// Side length of each cell (`2^{-level}`).
    pub fn cell_side(&self) -> f64 {
        (self.cells_per_side() as f64).recip()
    }

    /// Volume of each cell (`2^{-level·D}`).
    pub fn cell_volume(&self) -> f64 {
        (self.cell_count() as f64).recip()
    }

    /// Integer cell coordinates of a point.
    pub fn cell_coords_of(&self, p: &Point<D>) -> [u32; D] {
        let m = self.cells_per_side();
        let mut coords = [0u32; D];
        for (i, c) in coords.iter_mut().enumerate() {
            // canonical coords are in [0,1), so the cast is in range, but
            // guard against FP edge cases anyway.
            *c = ((p.coord(i) * m as f64) as u32).min(m - 1);
        }
        coords
    }

    /// The Morton cell containing a point.
    pub fn cell_of(&self, p: &Point<D>) -> MortonCell {
        MortonCell::from_coords(self.cell_coords_of(p), self.level)
    }
}

/// A grid cell addressed by its Morton (z-order) prefix at some level.
///
/// The `code` has `D * level` significant bits. The cell at level `ℓ`
/// contains exactly the max-level cells whose codes share its prefix, see
/// [`MortonCell::descendant_range`].
///
/// `MortonCell` is dimension-agnostic (the dimension enters only when
/// converting to/from integer coordinates), which keeps the sampler's
/// recursion bookkeeping simple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MortonCell {
    level: u32,
    code: u64,
}

impl MortonCell {
    /// The single cell at level 0 covering the whole torus.
    pub const fn root() -> Self {
        MortonCell { level: 0, code: 0 }
    }

    /// Creates a cell from a raw Morton code at the given level.
    ///
    /// # Panics
    ///
    /// Panics if the code has bits above `D·level` for every plausible `D`;
    /// since `D` is unknown here we only check `code < 2^63`.
    pub fn from_code(code: u64, level: u32) -> Self {
        assert!(code < (1u64 << 63), "morton code out of range");
        MortonCell { level, code }
    }

    /// Creates a cell from integer coordinates.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`morton::encode`].
    pub fn from_coords<const D: usize>(coords: [u32; D], level: u32) -> Self {
        MortonCell {
            level,
            code: morton::encode(coords, level),
        }
    }

    /// The refinement level of this cell.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The Morton code (a `D·level`-bit integer).
    pub fn code(&self) -> u64 {
        self.code
    }

    /// Integer coordinates of this cell.
    pub fn coords<const D: usize>(&self) -> [u32; D] {
        morton::decode(self.code, self.level)
    }

    /// The `2^D` children of this cell at level `level + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the children's codes would exceed 63 bits.
    pub fn children<const D: usize>(&self) -> impl Iterator<Item = MortonCell> {
        let child_level = self.level + 1;
        assert!(
            (D as u32) * child_level <= 63,
            "cannot refine level {} cell in dimension {D}",
            self.level
        );
        let base = self.code << D;
        (0..1u64 << D).map(move |k| MortonCell {
            level: child_level,
            code: base | k,
        })
    }

    /// The parent cell at level `level − 1`, or `None` for the root.
    pub fn parent<const D: usize>(&self) -> Option<MortonCell> {
        if self.level == 0 {
            None
        } else {
            Some(MortonCell {
                level: self.level - 1,
                code: self.code >> D,
            })
        }
    }

    /// Half-open range of max-level Morton codes covered by this cell.
    ///
    /// # Panics
    ///
    /// Panics if `max_level < self.level()`.
    pub fn descendant_range<const D: usize>(&self, max_level: u32) -> std::ops::Range<u64> {
        assert!(
            max_level >= self.level,
            "max_level {max_level} below cell level {}",
            self.level
        );
        let shift = (D as u32 * (max_level - self.level)) as u64;
        let lo = self.code << shift;
        let hi = (self.code + 1) << shift;
        lo..hi
    }

    /// Whether two same-level cells touch on the torus (circular Chebyshev
    /// index distance ≤ 1 on every axis). A cell is adjacent to itself.
    ///
    /// # Panics
    ///
    /// Panics if the cells have different levels.
    pub fn is_adjacent<const D: usize>(&self, other: &MortonCell) -> bool {
        assert_eq!(self.level, other.level, "cells must share a level");
        let m = 1u32 << self.level;
        let a = self.coords::<D>();
        let b = other.coords::<D>();
        (0..D).all(|i| circular_gap(a[i], b[i], m) <= 1)
    }

    /// Minimum torus distance (max norm) between any two points of the two
    /// same-level cells. Zero iff the cells touch or coincide.
    ///
    /// # Panics
    ///
    /// Panics if the cells have different levels.
    pub fn min_distance<const D: usize>(&self, other: &MortonCell) -> f64 {
        assert_eq!(self.level, other.level, "cells must share a level");
        let m = 1u32 << self.level;
        let side = (m as f64).recip();
        let a = self.coords::<D>();
        let b = other.coords::<D>();
        let mut max_axis = 0u32;
        for i in 0..D {
            let g = circular_gap(a[i], b[i], m);
            let sep = g.saturating_sub(1);
            if sep > max_axis {
                max_axis = sep;
            }
        }
        max_axis as f64 * side
    }

    /// The lower-corner point of this cell on the torus.
    pub fn lower_corner<const D: usize>(&self) -> Point<D> {
        let side = ((1u32 << self.level) as f64).recip();
        let coords = self.coords::<D>();
        let mut p = [0.0; D];
        for i in 0..D {
            p[i] = coords[i] as f64 * side;
        }
        Point::new(p)
    }
}

/// Circular index distance on a cycle of length `m`.
#[inline]
fn circular_gap(a: u32, b: u32, m: u32) -> u32 {
    let d = a.abs_diff(b);
    d.min(m - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn grid_basic_quantities() {
        let g: Grid<2> = Grid::new(3);
        assert_eq!(g.cells_per_side(), 8);
        assert_eq!(g.cell_count(), 64);
        assert!((g.cell_side() - 0.125).abs() < 1e-15);
        assert!((g.cell_volume() - 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn level_zero_grid_has_one_cell() {
        let g: Grid<3> = Grid::new(0);
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.cell_of(&Point::new([0.9, 0.1, 0.5])), MortonCell::root());
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn grid_too_deep_panics() {
        let _: Grid<2> = Grid::new(40);
    }

    #[test]
    fn cell_of_boundary_points() {
        let g: Grid<1> = Grid::new(2);
        assert_eq!(g.cell_coords_of(&Point::new([0.0])), [0]);
        assert_eq!(g.cell_coords_of(&Point::new([0.25])), [1]);
        assert_eq!(g.cell_coords_of(&Point::new([0.999_999_9])), [3]);
    }

    #[test]
    fn children_partition_parent_range() {
        let cell = MortonCell::from_coords([1u32, 2u32], 2);
        let range = cell.descendant_range::<2>(5);
        let child_union: u64 = cell
            .children::<2>()
            .map(|c| {
                let r = c.descendant_range::<2>(5);
                r.end - r.start
            })
            .sum();
        assert_eq!(child_union, range.end - range.start);
        for c in cell.children::<2>() {
            assert_eq!(c.parent::<2>(), Some(cell));
            let r = c.descendant_range::<2>(5);
            assert!(r.start >= range.start && r.end <= range.end);
        }
    }

    #[test]
    fn root_has_no_parent() {
        assert_eq!(MortonCell::root().parent::<2>(), None);
    }

    #[test]
    fn adjacency_wraps_around() {
        // cells 0 and 7 on an 8-cycle are adjacent
        let a = MortonCell::from_coords([0u32], 3);
        let b = MortonCell::from_coords([7u32], 3);
        assert!(a.is_adjacent::<1>(&b));
        assert_eq!(a.min_distance::<1>(&b), 0.0);
        let c = MortonCell::from_coords([4u32], 3);
        assert!(!a.is_adjacent::<1>(&c));
        assert!((a.min_distance::<1>(&c) - 3.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn self_adjacency() {
        let a = MortonCell::from_coords([3u32, 5u32], 3);
        assert!(a.is_adjacent::<2>(&a));
        assert_eq!(a.min_distance::<2>(&a), 0.0);
    }

    #[test]
    fn min_distance_2d_uses_max_axis() {
        // axis gaps (2, 3) cells of side 1/8 -> separations (1, 2) cells
        let a = MortonCell::from_coords([0u32, 0u32], 3);
        let b = MortonCell::from_coords([2u32, 3u32], 3);
        assert!((a.min_distance::<2>(&b) - 2.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn lower_corner_is_inside_cell() {
        let g: Grid<2> = Grid::new(4);
        let cell = MortonCell::from_coords([7u32, 11u32], 4);
        assert_eq!(g.cell_of(&cell.lower_corner::<2>()), cell);
    }

    proptest! {
        #[test]
        fn prop_cell_roundtrip(a in 0.0..1.0f64, b in 0.0..1.0f64, level in 0u32..10) {
            let g: Grid<2> = Grid::new(level);
            let p = Point::new([a, b]);
            let cell = g.cell_of(&p);
            // the point's coordinates lie inside the cell's box
            let corner = cell.lower_corner::<2>();
            let side = g.cell_side();
            for i in 0..2 {
                let lo = corner.coord(i);
                prop_assert!(p.coord(i) >= lo - 1e-12);
                prop_assert!(p.coord(i) < lo + side + 1e-12);
            }
        }

        #[test]
        fn prop_min_distance_is_lower_bound(
            a in prop::array::uniform2(0.0..1.0f64),
            b in prop::array::uniform2(0.0..1.0f64),
            level in 0u32..8,
        ) {
            let g: Grid<2> = Grid::new(level);
            let (p, q) = (Point::new(a), Point::new(b));
            let (ca, cb) = (g.cell_of(&p), g.cell_of(&q));
            prop_assert!(ca.min_distance::<2>(&cb) <= p.distance(&q) + 1e-12);
        }

        #[test]
        fn prop_adjacent_iff_zero_distance(x in 0u32..16, y in 0u32..16, u in 0u32..16, v in 0u32..16) {
            let a = MortonCell::from_coords([x, y], 4);
            let b = MortonCell::from_coords([u, v], 4);
            prop_assert_eq!(a.is_adjacent::<2>(&b), a.min_distance::<2>(&b) == 0.0);
        }

        #[test]
        fn prop_min_distance_symmetric(x in 0u32..32, u in 0u32..32) {
            let a = MortonCell::from_coords([x], 5);
            let b = MortonCell::from_coords([u], 5);
            prop_assert!((a.min_distance::<1>(&b) - b.min_distance::<1>(&a)).abs() < 1e-15);
        }

        #[test]
        fn prop_parent_distance_lower_bounds_child(
            x in 0u32..16, y in 0u32..16, u in 0u32..16, v in 0u32..16,
        ) {
            // coarsening cells can only shrink the min distance
            let a = MortonCell::from_coords([x, y], 4);
            let b = MortonCell::from_coords([u, v], 4);
            let (pa, pb) = (a.parent::<2>().unwrap(), b.parent::<2>().unwrap());
            prop_assert!(pa.min_distance::<2>(&pb) <= a.min_distance::<2>(&b) + 1e-15);
        }
    }

    #[test]
    fn random_points_fall_in_descendant_range() {
        // consistency of cell_of with descendant_range through levels
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let fine: Grid<2> = Grid::new(10);
        let coarse: Grid<2> = Grid::new(4);
        for _ in 0..200 {
            let p: Point<2> = Point::random(&mut rng);
            let fine_code = fine.cell_of(&p).code();
            let range = coarse.cell_of(&p).descendant_range::<2>(10);
            assert!(range.contains(&fine_code));
        }
    }
}
