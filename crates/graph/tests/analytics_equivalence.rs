//! Equivalence suite for the parallel analytics engine: every engine
//! kernel must produce bitwise-identical results to its serial reference
//! at 1, 2 and 4 threads, on arbitrary graphs.
//!
//! The serial references (`bfs_distances`, `bfs_distance`,
//! `Components::compute`, `double_sweep_diameter`) are the seed
//! implementations every experiment table was generated with; the engine
//! may only change wall-clock, never a value.

use proptest::prelude::*;

use smallworld_graph::analytics::{
    filtered_components, pair_distances, par_bfs_distances, par_components,
    par_double_sweep_diameter,
};
use smallworld_graph::{
    bfs_distance, bfs_distances, double_sweep_diameter, Components, Graph, NodeId,
};
use smallworld_par::Pool;

const THREADS: [usize; 3] = [1, 2, 4];

fn graph_from(n: usize, edges: Vec<(u32, u32)>) -> Graph {
    let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
    Graph::from_edges(n, edges).expect("in-range edges")
}

/// A 20k-vertex ring with long chords: large enough to cross the engine's
/// serial-fallback threshold, so the thread-parallel code paths really run.
fn big_graph() -> Graph {
    let n = 20_000u32;
    let ring = (0..n).map(|i| (i, (i + 1) % n));
    let chords = (0..n / 16).map(|i| (i * 16, (i * 16 + n / 2 + 7 * i) % n));
    graph_from(n as usize, ring.chain(chords).collect())
}

#[test]
fn big_graph_kernels_match_serial_at_each_thread_count() {
    let g = big_graph();
    let serial_dist = bfs_distances(&g, NodeId::new(17));
    let serial_comps = Components::compute(&g);
    let serial_diam = double_sweep_diameter(&g, NodeId::new(17));
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        assert_eq!(
            par_bfs_distances(&g, NodeId::new(17), &pool),
            serial_dist,
            "BFS distances diverge at {threads} threads"
        );
        let comps = par_components(&g, &pool);
        assert_eq!(comps.count(), serial_comps.count());
        for v in g.nodes() {
            assert_eq!(
                comps.component_of(v),
                serial_comps.component_of(v),
                "component label diverges at {v} with {threads} threads"
            );
        }
        assert_eq!(
            par_double_sweep_diameter(&g, NodeId::new(17), &pool),
            serial_diam,
            "diameter estimate diverges at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_par_bfs_matches_serial(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..160),
        source in 0u32..40,
    ) {
        let g = graph_from(40, edges);
        let expected = bfs_distances(&g, NodeId::new(source));
        for threads in THREADS {
            let pool = Pool::with_threads(threads);
            prop_assert_eq!(
                par_bfs_distances(&g, NodeId::new(source), &pool),
                expected.clone()
            );
        }
    }

    #[test]
    fn prop_par_components_matches_serial(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        let g = graph_from(40, edges);
        let expected = Components::compute(&g);
        for threads in THREADS {
            let pool = Pool::with_threads(threads);
            let got = par_components(&g, &pool);
            prop_assert_eq!(got.count(), expected.count());
            prop_assert_eq!(got.largest_label(), expected.largest_label());
            for v in g.nodes() {
                prop_assert_eq!(got.component_of(v), expected.component_of(v));
            }
        }
    }

    #[test]
    fn prop_par_diameter_matches_serial(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
        start in 0u32..40,
    ) {
        let g = graph_from(40, edges);
        let expected = double_sweep_diameter(&g, NodeId::new(start));
        for threads in THREADS {
            let pool = Pool::with_threads(threads);
            prop_assert_eq!(
                par_double_sweep_diameter(&g, NodeId::new(start), &pool),
                expected
            );
        }
    }

    #[test]
    fn prop_pair_distances_match_bidirectional(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..90),
        pairs in prop::collection::vec((0u32..30, 0u32..30), 0..40),
    ) {
        // mostly-distinct sources: exercises the bidirectional dispatch
        let g = graph_from(30, edges);
        let pairs: Vec<(NodeId, NodeId)> = pairs
            .into_iter()
            .map(|(s, t)| (NodeId::new(s), NodeId::new(t)))
            .collect();
        let got = pair_distances(&g, &pairs);
        for (k, &(s, t)) in pairs.iter().enumerate() {
            prop_assert_eq!(got[k], bfs_distance(&g, s, t));
        }
    }

    #[test]
    fn prop_matrix_pair_distances_match_bidirectional(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..90),
        sources in prop::collection::vec(0u32..30, 1..3),
    ) {
        // few sources, every target: amortization ratio >= 16 forces the
        // bit-parallel sweep path through the public dispatcher
        let g = graph_from(30, edges);
        let pairs: Vec<(NodeId, NodeId)> = sources
            .iter()
            .flat_map(|&s| (0..30u32).map(move |t| (NodeId::new(s), NodeId::new(t))))
            .collect();
        let got = pair_distances(&g, &pairs);
        for (k, &(s, t)) in pairs.iter().enumerate() {
            prop_assert_eq!(got[k], bfs_distance(&g, s, t));
        }
    }

    #[test]
    fn prop_filtered_components_match_rebuilt_subgraph(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..90),
    ) {
        // keep only edges whose endpoint sum is even; the filtered view
        // must label exactly like components of the rebuilt subgraph
        let g = graph_from(30, edges.clone());
        let keep = |u: NodeId, v: NodeId| (u.index() + v.index()).is_multiple_of(2);
        let kept: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|(u, v)| u != v && keep(NodeId::new(*u), NodeId::new(*v)))
            .collect();
        let sub = graph_from(30, kept);
        let expected = Components::compute(&sub);
        for threads in THREADS {
            let pool = Pool::with_threads(threads);
            let got = filtered_components(&g, &pool, keep);
            prop_assert_eq!(got.count(), expected.count());
            for v in g.nodes() {
                prop_assert_eq!(got.component_of(v), expected.component_of(v));
            }
        }
    }
}
