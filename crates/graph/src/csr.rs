//! Compressed-sparse-row adjacency with sorted neighbor lists.

use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use smallworld_par::{chunk_ranges, Pool};

/// Identifier of a vertex, a dense index in `0..node_count`.
///
/// GIRG experiments run at up to a few million vertices, so a `u32` index
/// halves the adjacency footprint relative to `usize`.
///
/// # Examples
///
/// ```
/// use smallworld_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw `u32` index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// The raw index as `usize`, for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// Error building a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= node_count`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes the builder was created with.
        node_count: usize,
    },
    /// An edge connected a node to itself; the models in this workspace are
    /// simple graphs.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
    /// Pre-built CSR arrays handed to [`Graph::from_sorted_csr`] violated
    /// the representation invariants.
    MalformedCsr {
        /// Which invariant failed.
        detail: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::MalformedCsr { detail } => write!(f, "malformed CSR arrays: {detail}"),
        }
    }
}

impl Error for GraphError {}

/// An undirected simple graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted, so `has_edge` is a binary search and greedy
/// routing's argmax scans are sequential over contiguous memory.
///
/// Build a graph with [`Graph::builder`] or [`Graph::from_edges`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v] .. offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Starts building a graph with a fixed number of nodes.
    pub fn builder(node_count: usize) -> GraphBuilder {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are collapsed. The edge `(u, v)` and `(v, u)` are the
    /// same edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// invalid input.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallworld_graph::{Graph, NodeId};
    ///
    /// let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2), (2, 1)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), smallworld_graph::GraphError>(())
    /// ```
    pub fn from_edges<I, E>(node_count: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: Into<(u32, u32)>,
    {
        let mut builder = Graph::builder(node_count);
        for e in edges {
            let (u, v) = e.into();
            builder.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(builder.build())
    }

    /// Builds a graph from an edge list using the given thread pool:
    /// validation, degree counting, adjacency scatter, and per-node
    /// sort/dedup all run across the pool's workers.
    ///
    /// The result is **identical** to [`Graph::from_edges`] on the same
    /// input for any thread count: the scatter order is nondeterministic,
    /// but every neighbor list is subsequently sorted and deduplicated, so
    /// the final CSR is a pure function of the edge multiset.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// for the first offending edge (in input order) on invalid input.
    pub fn from_edges_parallel(
        node_count: usize,
        edges: &[(u32, u32)],
        pool: &Pool,
    ) -> Result<Graph, GraphError> {
        // Small inputs: the parallel machinery (atomics, extra passes) costs
        // more than it saves; defer to the sequential builder.
        if pool.threads() <= 1 || edges.len() < (1 << 15) {
            validate_edges(node_count, edges)?;
            return Ok(build_csr(node_count, edges));
        }

        let edge_chunks = chunk_ranges(edges.len(), pool.threads() * 4);

        // Validate all chunks, reporting the first bad edge in input order.
        let first_bad = pool
            .map(edge_chunks.len(), |c| {
                let range = edge_chunks[c].clone();
                for i in range {
                    if let Err(e) = validate_edge(node_count, edges[i]) {
                        return Some((i, e));
                    }
                }
                None
            })
            .into_iter()
            .flatten()
            .min_by_key(|&(i, _)| i);
        if let Some((_, err)) = first_bad {
            return Err(err);
        }

        let n = node_count;
        // Degree counting with relaxed atomics: the sum is order-independent.
        let degrees: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let deg_ref = &degrees;
        pool.map(edge_chunks.len(), |c| {
            for &(u, v) in &edges[edge_chunks[c].clone()] {
                deg_ref[u as usize].fetch_add(1, Ordering::Relaxed);
                deg_ref[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v].load(Ordering::Relaxed) as usize;
        }

        // Scatter both directions of every edge through per-node cursors.
        let cursors: Vec<AtomicUsize> =
            offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
        let raw: Vec<AtomicU32> = (0..offsets[n]).map(|_| AtomicU32::new(0)).collect();
        let (cur_ref, raw_ref) = (&cursors, &raw);
        pool.map(edge_chunks.len(), |c| {
            for &(u, v) in &edges[edge_chunks[c].clone()] {
                let iu = cur_ref[u as usize].fetch_add(1, Ordering::Relaxed);
                raw_ref[iu].store(v, Ordering::Relaxed);
                let iv = cur_ref[v as usize].fetch_add(1, Ordering::Relaxed);
                raw_ref[iv].store(u, Ordering::Relaxed);
            }
        });
        let mut targets: Vec<u32> = raw.into_iter().map(AtomicU32::into_inner).collect();

        // Sort + dedup each adjacency list, parallel over node ranges of
        // near-equal adjacency mass (degree skew is severe in power-law
        // graphs, so splitting by node count alone would imbalance badly).
        let node_ranges = balanced_node_ranges(&offsets, pool.threads() * 4);
        let mut slices: Vec<(Range<usize>, &mut [u32])> = Vec::with_capacity(node_ranges.len());
        let mut rest: &mut [u32] = &mut targets;
        let mut consumed = 0usize;
        for r in &node_ranges {
            let hi = offsets[r.end];
            let (head, tail) = rest.split_at_mut(hi - consumed);
            slices.push((r.clone(), head));
            rest = tail;
            consumed = hi;
        }
        let offsets_ref = &offsets;
        let new_lens: Vec<Vec<u32>> = pool.map_items(slices, |_, (nodes, slice)| {
            let base = offsets_ref[nodes.start];
            let mut lens = Vec::with_capacity(nodes.len());
            for v in nodes {
                let window = &mut slice[offsets_ref[v] - base..offsets_ref[v + 1] - base];
                window.sort_unstable();
                let mut keep = 0usize;
                for i in 0..window.len() {
                    if i == 0 || window[i] != window[i - 1] {
                        window[keep] = window[i];
                        keep += 1;
                    }
                }
                lens.push(keep as u32);
            }
            lens
        });

        // Compact the deduplicated lists (sequential: pure memmove).
        let mut new_offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        let mut lens = new_lens.into_iter().flatten();
        for v in 0..n {
            let lo = offsets[v];
            let len = lens.next().expect("one length per node") as usize;
            new_offsets[v] = write;
            if write != lo {
                targets.copy_within(lo..lo + len, write);
            }
            write += len;
        }
        new_offsets[n] = write;
        targets.truncate(write);
        Ok(Graph {
            offsets: new_offsets,
            targets: targets.into_iter().map(NodeId::new).collect(),
        })
    }

    /// Builds a graph directly from pre-validated CSR arrays, skipping the
    /// edge-list sort/dedup pipeline — the decode path of the compressed
    /// on-disk store (`smallworld-store`), where the arrays were produced
    /// from a valid [`Graph`] in the first place.
    ///
    /// The representation invariants are re-checked in one linear pass
    /// (monotone offsets covering `targets`, each neighbor list strictly
    /// increasing, ids in range, no self-loops). Symmetry of the adjacency
    /// relation is **not** re-verified — checking it costs a binary search
    /// per half-edge, and the store's per-section checksums already guard
    /// against corruption; callers constructing arrays by hand must supply
    /// both directions of every edge themselves.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedCsr`] if the arrays violate any of
    /// the checked invariants.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallworld_graph::{Graph, NodeId};
    ///
    /// let offsets = vec![0, 1, 2];
    /// let targets = vec![NodeId::new(1), NodeId::new(0)];
    /// let g = Graph::from_sorted_csr(offsets, targets)?;
    /// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    /// # Ok::<(), smallworld_graph::GraphError>(())
    /// ```
    pub fn from_sorted_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
    ) -> Result<Graph, GraphError> {
        let malformed = |detail| Err(GraphError::MalformedCsr { detail });
        if offsets.is_empty() {
            return malformed("offsets array is empty");
        }
        if offsets[0] != 0 {
            return malformed("offsets must start at 0");
        }
        if *offsets.last().expect("non-empty") != targets.len() {
            return malformed("offsets must end at targets.len()");
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            if lo > hi {
                return malformed("offsets must be nondecreasing");
            }
            if hi > targets.len() {
                return malformed("offset beyond targets.len()");
            }
            let list = &targets[lo..hi];
            for (i, &t) in list.iter().enumerate() {
                if t.index() >= n {
                    return malformed("neighbor id out of range");
                }
                if t.index() == v {
                    return malformed("self-loop in neighbor list");
                }
                if i > 0 && list[i - 1] >= t {
                    return malformed("neighbor list not strictly increasing");
                }
            }
        }
        Ok(Graph { offsets, targets })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The raw CSR offset array (length `node_count + 1`), for kernels that
    /// partition nodes by adjacency mass.
    pub(crate) fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether `{u, v}` is an edge (binary search over `u`'s neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|(u, v)| u < v)
    }

    /// Returns a copy of the graph with every vertex renamed through `perm`:
    /// vertex `v` of `self` becomes `perm.forward(v)`, and neighbor lists are
    /// re-sorted so the CSR invariants hold in the new id space.
    ///
    /// Relabeling by a spatial sort key (e.g. the Morton code of each
    /// vertex's position) places geometric neighborhoods in contiguous id
    /// ranges, so greedy routing's neighbor scans touch adjacent cache
    /// lines. Use [`crate::Permutation::backward`] to map results back to
    /// original ids.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len()` differs from [`Self::node_count`].
    ///
    /// # Examples
    ///
    /// ```
    /// use smallworld_graph::{Graph, NodeId, Permutation};
    ///
    /// let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2)])?;
    /// let perm = Permutation::from_sort_keys(&[2, 1, 0]); // reverse ids
    /// let h = g.relabel(&perm);
    /// assert!(h.has_edge(NodeId::new(2), NodeId::new(1)));
    /// assert!(h.has_edge(NodeId::new(1), NodeId::new(0)));
    /// # Ok::<(), smallworld_graph::GraphError>(())
    /// ```
    pub fn relabel(&self, perm: &crate::Permutation) -> Graph {
        let n = self.node_count();
        assert_eq!(perm.len(), n, "permutation length must match node count");
        let mut offsets = vec![0usize; n + 1];
        for new in 0..n {
            let old = perm.backward(NodeId::from_index(new));
            offsets[new + 1] = offsets[new] + self.degree(old);
        }
        let mut targets = Vec::with_capacity(offsets[n]);
        for new in 0..n {
            let old = perm.backward(NodeId::from_index(new));
            let start = targets.len();
            targets.extend(self.neighbors(old).iter().map(|&u| perm.forward(u)));
            targets[start..].sort_unstable();
        }
        Graph { offsets, targets }
    }

    /// The maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.node_count() as f64
        }
    }
}

/// Returns a copy of the graph where each edge is independently kept with
/// probability `keep`, for edge-failure (bond percolation) experiments.
///
/// The paper remarks (discussion of Theorem 3.5) that greedy routing is
/// robust to failing edges — the packet simply takes the next-best
/// neighbor; `percolate` provides the failure injection for that claim.
///
/// # Panics
///
/// Panics unless `keep ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_graph::{csr::percolate, Graph};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(percolate(&g, 1.0, &mut rng).edge_count(), 3);
/// assert_eq!(percolate(&g, 0.0, &mut rng).edge_count(), 0);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn percolate<R: rand::Rng + ?Sized>(graph: &Graph, keep: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
    let mut builder = Graph::builder(graph.node_count());
    for (u, v) in graph.edges() {
        if keep >= 1.0 || rng.gen::<f64>() < keep {
            builder.add_edge(u, v).expect("edge was valid in the source graph");
        }
    }
    builder.build()
}

/// Returns a copy of the graph where each *vertex* independently survives
/// with probability `keep`; failed vertices keep their id but lose all
/// incident edges (site percolation).
///
/// Ids are preserved so positions/weights arrays stay aligned — a failed
/// router in a network doesn't renumber the survivors.
///
/// # Panics
///
/// Panics unless `keep ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_graph::{csr::percolate_vertices, Graph};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let intact = percolate_vertices(&g, 1.0, &mut rng);
/// assert_eq!(intact.edge_count(), 3);
/// assert_eq!(intact.node_count(), 4);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn percolate_vertices<R: rand::Rng + ?Sized>(graph: &Graph, keep: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
    let alive: Vec<bool> = (0..graph.node_count())
        .map(|_| keep >= 1.0 || rng.gen::<f64>() < keep)
        .collect();
    let mut builder = Graph::builder(graph.node_count());
    for (u, v) in graph.edges() {
        if alive[u.index()] && alive[v.index()] {
            builder.add_edge(u, v).expect("edge was valid in the source graph");
        }
    }
    builder.build()
}

/// Incremental builder for [`Graph`]; see [`Graph::builder`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range
    /// and [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count,
            });
        }
        if v.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.edges.push((u.raw(), v.raw()));
        Ok(())
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR structure. Duplicate edges are collapsed.
    pub fn build(self) -> Graph {
        build_csr(self.node_count, &self.edges)
    }
}

#[inline]
fn validate_edge(node_count: usize, (u, v): (u32, u32)) -> Result<(), GraphError> {
    if u as usize >= node_count {
        return Err(GraphError::NodeOutOfRange {
            node: NodeId::new(u),
            node_count,
        });
    }
    if v as usize >= node_count {
        return Err(GraphError::NodeOutOfRange {
            node: NodeId::new(v),
            node_count,
        });
    }
    if u == v {
        return Err(GraphError::SelfLoop { node: NodeId::new(u) });
    }
    Ok(())
}

fn validate_edges(node_count: usize, edges: &[(u32, u32)]) -> Result<(), GraphError> {
    for &e in edges {
        validate_edge(node_count, e)?;
    }
    Ok(())
}

/// The sequential CSR construction core shared by [`GraphBuilder::build`]
/// and the small-input path of [`Graph::from_edges_parallel`]: counting
/// sort into CSR, then sort + dedup each adjacency list. Assumes validated
/// edges.
fn build_csr(n: usize, edges: &[(u32, u32)]) -> Graph {
    let mut deg = vec![0usize; n + 1];
    for &(u, v) in edges {
        deg[u as usize + 1] += 1;
        deg[v as usize + 1] += 1;
    }
    let mut offsets = deg;
    for i in 1..=n {
        offsets[i] += offsets[i - 1];
    }
    let mut targets = vec![NodeId::default(); offsets[n]];
    let mut cursor = offsets.clone();
    for &(u, v) in edges {
        targets[cursor[u as usize]] = NodeId::new(v);
        cursor[u as usize] += 1;
        targets[cursor[v as usize]] = NodeId::new(u);
        cursor[v as usize] += 1;
    }
    // sort and dedup per node, compacting in place
    let mut write = 0usize;
    let mut new_offsets = vec![0usize; n + 1];
    for v in 0..n {
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        targets[lo..hi].sort_unstable();
        let mut prev: Option<NodeId> = None;
        let start = write;
        for i in lo..hi {
            let t = targets[i];
            if prev != Some(t) {
                targets[write] = t;
                write += 1;
                prev = Some(t);
            }
        }
        new_offsets[v] = start;
    }
    new_offsets[n] = write;
    targets.truncate(write);
    Graph {
        offsets: new_offsets,
        targets,
    }
}

/// Splits `0..n` nodes into at most `parts` contiguous ranges whose total
/// adjacency mass (by `offsets`) is near-equal, so sort/dedup workers get
/// balanced work despite power-law degree skew.
pub(crate) fn balanced_node_ranges(offsets: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    if n == 0 {
        return Vec::new();
    }
    let target = (total / parts.max(1)).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < n {
        let mut end = start + 1;
        while end < n && offsets[end] - offsets[start] < target {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path_graph(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_edges(5, [(0u32, 1u32)]).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(NodeId::new(4)), 0);
        assert!(g.neighbors(NodeId::new(3)).is_empty());
    }

    #[test]
    fn degrees_and_neighbors_sorted() {
        let g = Graph::from_edges(4, [(2u32, 0u32), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.degree(NodeId::new(2)), 3);
        let nbrs: Vec<u32> = g.neighbors(NodeId::new(2)).iter().map(|n| n.raw()).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Graph::builder(3);
        assert_eq!(
            b.add_edge(NodeId::new(1), NodeId::new(1)),
            Err(GraphError::SelfLoop { node: NodeId::new(1) })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = Graph::builder(2);
        let err = b.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(5),
                node_count: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn has_edge_symmetric() {
        let g = path_graph(4);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|(u, v)| u < v));
    }

    #[test]
    fn average_degree_of_cycle_is_two() {
        let n = 10u32;
        let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn percolate_extremes_and_monotonicity() {
        use rand::SeedableRng;
        let g = Graph::from_edges(30, (0u32..29).map(|i| (i, i + 1))).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(percolate(&g, 1.0, &mut rng).edge_count(), 29);
        assert_eq!(percolate(&g, 0.0, &mut rng).edge_count(), 0);
        let half = percolate(&g, 0.5, &mut rng);
        assert!(half.edge_count() < 29);
        // surviving edges are a subset
        for (u, v) in half.edges() {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(half.node_count(), 30);
    }

    #[test]
    fn percolate_vertices_isolates_failures() {
        use rand::SeedableRng;
        let g = Graph::from_edges(50, (0u32..49).map(|i| (i, i + 1))).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let survived = percolate_vertices(&g, 0.5, &mut rng);
        assert_eq!(survived.node_count(), 50);
        assert!(survived.edge_count() < 49);
        for (u, v) in survived.edges() {
            assert!(g.has_edge(u, v));
        }
        // extremes
        assert_eq!(percolate_vertices(&g, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(percolate_vertices(&g, 1.0, &mut rng).edge_count(), 49);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percolate_rejects_bad_probability() {
        use rand::SeedableRng;
        let g = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = percolate(&g, 1.5, &mut rng);
    }

    #[test]
    fn node_id_display_and_conversions() {
        let v: NodeId = 3u32.into();
        assert_eq!(v, NodeId::from_index(3));
        assert_eq!(format!("{v}"), "v3");
    }

    #[test]
    fn from_sorted_csr_roundtrips_a_built_graph() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (2, 3), (0, 5), (4, 1)]).unwrap();
        let offsets = g.offsets().to_vec();
        let targets = g.targets.clone();
        let rebuilt = Graph::from_sorted_csr(offsets, targets).unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn from_sorted_csr_rejects_invariant_violations() {
        let bad = |offsets: Vec<usize>, targets: Vec<u32>, what: &str| {
            let targets = targets.into_iter().map(NodeId::new).collect();
            let err = Graph::from_sorted_csr(offsets, targets).unwrap_err();
            assert!(
                matches!(err, GraphError::MalformedCsr { .. }),
                "{what}: {err}"
            );
        };
        bad(vec![], vec![], "empty offsets");
        bad(vec![1, 2], vec![1, 0], "nonzero start");
        bad(vec![0, 1], vec![1, 0], "short final offset");
        bad(vec![0, 2, 1], vec![1], "decreasing offsets");
        bad(vec![0, 1, 2], vec![5, 0], "target out of range");
        bad(vec![0, 1, 2], vec![0, 0], "self-loop");
        bad(vec![0, 2, 2], vec![1, 1], "duplicate neighbor");
    }

    #[test]
    fn parallel_build_matches_sequential_above_threshold() {
        // deterministic pseudo-random edge list big enough to take the
        // genuinely parallel path (>= 1 << 15 edges)
        let n = 3_000usize;
        let mut state = 0x9E37_79B9u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let edges: Vec<(u32, u32)> = (0..40_000)
            .map(|_| {
                let u = (step() % n as u64) as u32;
                let v = (step() % n as u64) as u32;
                if u == v {
                    (u, (v + 1) % n as u32)
                } else {
                    (u, v)
                }
            })
            .collect();
        let sequential = Graph::from_edges(n, edges.iter().copied()).unwrap();
        for threads in [2, 4, 7] {
            let pool = Pool::with_threads(threads);
            let parallel = Graph::from_edges_parallel(n, &edges, &pool).unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_reports_first_bad_edge() {
        let mut edges: Vec<(u32, u32)> = (0..40_000u32).map(|i| (i % 100, (i + 1) % 100)).collect();
        edges[20_000] = (5, 5); // self-loop
        edges[30_000] = (500, 1); // out of range (later: must not win)
        let err = Graph::from_edges_parallel(100, &edges, &Pool::with_threads(4)).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: NodeId::new(5) });
    }

    proptest! {
        /// Parallel and sequential construction agree on arbitrary inputs
        /// (small inputs exercise the sequential fallback; the dedicated
        /// test above covers the scatter path).
        #[test]
        fn prop_parallel_build_equals_sequential(
            edges in prop::collection::vec((0u32..40, 0u32..40), 0..150),
            threads in 1usize..6,
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let sequential = Graph::from_edges(40, edges.iter().copied()).unwrap();
            let parallel =
                Graph::from_edges_parallel(40, &edges, &Pool::with_threads(threads)).unwrap();
            prop_assert_eq!(sequential, parallel);
        }

        #[test]
        fn prop_csr_invariants(edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(50, edges.clone()).unwrap();
            // symmetry
            for u in g.nodes() {
                for &v in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u));
                }
            }
            // neighbor lists sorted and strictly increasing
            for u in g.nodes() {
                let nbrs = g.neighbors(u);
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            }
            // every input edge present
            for (u, v) in edges {
                prop_assert!(g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
            // handshake lemma
            let total: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(total, 2 * g.edge_count());
        }
    }
}
