//! Compressed-sparse-row adjacency with sorted neighbor lists.

use std::error::Error;
use std::fmt;

/// Identifier of a vertex, a dense index in `0..node_count`.
///
/// GIRG experiments run at up to a few million vertices, so a `u32` index
/// halves the adjacency footprint relative to `usize`.
///
/// # Examples
///
/// ```
/// use smallworld_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw `u32` index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// The raw index as `usize`, for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// Error building a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= node_count`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes the builder was created with.
        node_count: usize,
    },
    /// An edge connected a node to itself; the models in this workspace are
    /// simple graphs.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
        }
    }
}

impl Error for GraphError {}

/// An undirected simple graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted, so `has_edge` is a binary search and greedy
/// routing's argmax scans are sequential over contiguous memory.
///
/// Build a graph with [`Graph::builder`] or [`Graph::from_edges`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v] .. offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Starts building a graph with a fixed number of nodes.
    pub fn builder(node_count: usize) -> GraphBuilder {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are collapsed. The edge `(u, v)` and `(v, u)` are the
    /// same edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// invalid input.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallworld_graph::{Graph, NodeId};
    ///
    /// let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2), (2, 1)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), smallworld_graph::GraphError>(())
    /// ```
    pub fn from_edges<I, E>(node_count: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: Into<(u32, u32)>,
    {
        let mut builder = Graph::builder(node_count);
        for e in edges {
            let (u, v) = e.into();
            builder.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(builder.build())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether `{u, v}` is an edge (binary search over `u`'s neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|(u, v)| u < v)
    }

    /// The maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.node_count() as f64
        }
    }
}

/// Returns a copy of the graph where each edge is independently kept with
/// probability `keep`, for edge-failure (bond percolation) experiments.
///
/// The paper remarks (discussion of Theorem 3.5) that greedy routing is
/// robust to failing edges — the packet simply takes the next-best
/// neighbor; `percolate` provides the failure injection for that claim.
///
/// # Panics
///
/// Panics unless `keep ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_graph::{csr::percolate, Graph};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(percolate(&g, 1.0, &mut rng).edge_count(), 3);
/// assert_eq!(percolate(&g, 0.0, &mut rng).edge_count(), 0);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn percolate<R: rand::Rng + ?Sized>(graph: &Graph, keep: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
    let mut builder = Graph::builder(graph.node_count());
    for (u, v) in graph.edges() {
        if keep >= 1.0 || rng.gen::<f64>() < keep {
            builder.add_edge(u, v).expect("edge was valid in the source graph");
        }
    }
    builder.build()
}

/// Returns a copy of the graph where each *vertex* independently survives
/// with probability `keep`; failed vertices keep their id but lose all
/// incident edges (site percolation).
///
/// Ids are preserved so positions/weights arrays stay aligned — a failed
/// router in a network doesn't renumber the survivors.
///
/// # Panics
///
/// Panics unless `keep ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_graph::{csr::percolate_vertices, Graph};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let intact = percolate_vertices(&g, 1.0, &mut rng);
/// assert_eq!(intact.edge_count(), 3);
/// assert_eq!(intact.node_count(), 4);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn percolate_vertices<R: rand::Rng + ?Sized>(graph: &Graph, keep: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
    let alive: Vec<bool> = (0..graph.node_count())
        .map(|_| keep >= 1.0 || rng.gen::<f64>() < keep)
        .collect();
    let mut builder = Graph::builder(graph.node_count());
    for (u, v) in graph.edges() {
        if alive[u.index()] && alive[v.index()] {
            builder.add_edge(u, v).expect("edge was valid in the source graph");
        }
    }
    builder.build()
}

/// Incremental builder for [`Graph`]; see [`Graph::builder`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range
    /// and [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count,
            });
        }
        if v.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.edges.push((u.raw(), v.raw()));
        Ok(())
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR structure. Duplicate edges are collapsed.
    pub fn build(self) -> Graph {
        let n = self.node_count;
        // counting sort into CSR, then sort + dedup each adjacency list
        let mut deg = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        let mut offsets = deg;
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut targets = vec![NodeId::default(); offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            targets[cursor[u as usize]] = NodeId::new(v);
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = NodeId::new(u);
            cursor[v as usize] += 1;
        }
        // sort and dedup per node, compacting in place
        let mut write = 0usize;
        let mut new_offsets = vec![0usize; n + 1];
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            targets[lo..hi].sort_unstable();
            let mut prev: Option<NodeId> = None;
            let start = write;
            for i in lo..hi {
                let t = targets[i];
                if prev != Some(t) {
                    targets[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            new_offsets[v] = start;
        }
        new_offsets[n] = write;
        targets.truncate(write);
        Graph {
            offsets: new_offsets,
            targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path_graph(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_edges(5, [(0u32, 1u32)]).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(NodeId::new(4)), 0);
        assert!(g.neighbors(NodeId::new(3)).is_empty());
    }

    #[test]
    fn degrees_and_neighbors_sorted() {
        let g = Graph::from_edges(4, [(2u32, 0u32), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.degree(NodeId::new(2)), 3);
        let nbrs: Vec<u32> = g.neighbors(NodeId::new(2)).iter().map(|n| n.raw()).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Graph::builder(3);
        assert_eq!(
            b.add_edge(NodeId::new(1), NodeId::new(1)),
            Err(GraphError::SelfLoop { node: NodeId::new(1) })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = Graph::builder(2);
        let err = b.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(5),
                node_count: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn has_edge_symmetric() {
        let g = path_graph(4);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|(u, v)| u < v));
    }

    #[test]
    fn average_degree_of_cycle_is_two() {
        let n = 10u32;
        let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn percolate_extremes_and_monotonicity() {
        use rand::SeedableRng;
        let g = Graph::from_edges(30, (0u32..29).map(|i| (i, i + 1))).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(percolate(&g, 1.0, &mut rng).edge_count(), 29);
        assert_eq!(percolate(&g, 0.0, &mut rng).edge_count(), 0);
        let half = percolate(&g, 0.5, &mut rng);
        assert!(half.edge_count() < 29);
        // surviving edges are a subset
        for (u, v) in half.edges() {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(half.node_count(), 30);
    }

    #[test]
    fn percolate_vertices_isolates_failures() {
        use rand::SeedableRng;
        let g = Graph::from_edges(50, (0u32..49).map(|i| (i, i + 1))).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let survived = percolate_vertices(&g, 0.5, &mut rng);
        assert_eq!(survived.node_count(), 50);
        assert!(survived.edge_count() < 49);
        for (u, v) in survived.edges() {
            assert!(g.has_edge(u, v));
        }
        // extremes
        assert_eq!(percolate_vertices(&g, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(percolate_vertices(&g, 1.0, &mut rng).edge_count(), 49);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percolate_rejects_bad_probability() {
        use rand::SeedableRng;
        let g = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = percolate(&g, 1.5, &mut rng);
    }

    #[test]
    fn node_id_display_and_conversions() {
        let v: NodeId = 3u32.into();
        assert_eq!(v, NodeId::from_index(3));
        assert_eq!(format!("{v}"), "v3");
    }

    proptest! {
        #[test]
        fn prop_csr_invariants(edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(50, edges.clone()).unwrap();
            // symmetry
            for u in g.nodes() {
                for &v in g.neighbors(u) {
                    prop_assert!(g.has_edge(v, u));
                }
            }
            // neighbor lists sorted and strictly increasing
            for u in g.nodes() {
                let nbrs = g.neighbors(u);
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            }
            // every input edge present
            for (u, v) in edges {
                prop_assert!(g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
            // handshake lemma
            let total: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(total, 2 * g.edge_count());
        }
    }
}
