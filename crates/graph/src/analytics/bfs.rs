//! Direction-optimizing single-source BFS (Beamer et al., SC 2012).
//!
//! A conventional BFS expands every frontier vertex *top-down*, scanning
//! all its edges. On low-diameter graphs the frontier quickly covers most
//! of the graph, and the top-down sweep wastes work re-checking edges into
//! already-visited vertices. The hybrid switches to a *bottom-up* sweep —
//! every unvisited vertex asks "is any of my neighbors in the frontier?"
//! and stops at the first hit — when the frontier's edge count grows past
//! a fraction of the unexplored edges, then back to top-down once the
//! frontier shrinks again.

use std::sync::atomic::{AtomicU32, Ordering};

use smallworld_par::{chunk_ranges, Pool};

use super::scratch::BfsScratch;
use crate::csr::{Graph, NodeId};
use crate::traversal::UNREACHABLE;

/// Switch top-down → bottom-up when `frontier_edges > unexplored / ALPHA`
/// (Beamer's α; edges out of the frontier rival the unexplored volume).
const ALPHA: usize = 14;

/// Switch bottom-up → top-down when `frontier_len < n / BETA` (Beamer's β;
/// the frontier has shrunk enough that scanning all vertices is wasteful).
const BETA: usize = 24;

/// Below this node count the parallel BFS falls back to the serial hybrid:
/// the per-level fork/join costs more than the traversal.
const PAR_THRESHOLD: usize = 1 << 14;

/// Single-source BFS into a reusable [`BfsScratch`].
///
/// Equivalent to [`crate::bfs_distances`] but allocation-free on a warm
/// scratch; read results through [`BfsScratch::distance`] or
/// [`BfsScratch::to_distances`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances_into(graph: &Graph, source: NodeId, scratch: &mut BfsScratch) {
    let n = graph.node_count();
    scratch.begin(n);
    assert!(source.index() < n, "source {source} out of range");
    scratch.visit(source.index(), 0);
    scratch.frontier.push(source.raw());
    let total_directed = 2 * graph.edge_count();
    let mut visited_edges = graph.degree(source);
    let mut frontier_edges = visited_edges;
    let mut depth = 0u32;
    let mut bottom_up = false;

    while !scratch.frontier.is_empty() {
        let unexplored = total_directed.saturating_sub(visited_edges);
        if !bottom_up {
            bottom_up = frontier_edges * ALPHA > unexplored;
        } else if scratch.frontier.len() * BETA < n {
            bottom_up = false;
        }

        scratch.next.clear();
        let mut next_edges = 0usize;
        if bottom_up {
            // Rebuild the frontier bitset for membership tests.
            scratch.frontier_bits.fill(0);
            for i in 0..scratch.frontier.len() {
                let u = scratch.frontier[i] as usize;
                scratch.frontier_bits[u >> 6] |= 1u64 << (u & 63);
            }
            for v in 0..n {
                if scratch.visited(v) {
                    continue;
                }
                let node = NodeId::from_index(v);
                for &w in graph.neighbors(node) {
                    let wi = w.index();
                    if scratch.frontier_bits[wi >> 6] & (1u64 << (wi & 63)) != 0 {
                        scratch.visit(v, depth + 1);
                        next_edges += graph.degree(node);
                        scratch.next.push(v as u32);
                        break;
                    }
                }
            }
        } else {
            for i in 0..scratch.frontier.len() {
                let u = NodeId::new(scratch.frontier[i]);
                for &v in graph.neighbors(u) {
                    let vi = v.index();
                    if !scratch.visited(vi) {
                        scratch.visit(vi, depth + 1);
                        next_edges += graph.degree(v);
                        scratch.next.push(v.raw());
                    }
                }
            }
        }
        depth += 1;
        visited_edges += next_edges;
        frontier_edges = next_edges;
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
}

/// Bidirectional s–t BFS over two reusable scratches.
///
/// Equivalent to [`crate::bfs_distance`] (same meet-in-the-middle
/// algorithm, same termination proof) but allocation-free on warm
/// scratches. Distances are unique, so the result is identical.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn bfs_distance_with(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    side_s: &mut BfsScratch,
    side_t: &mut BfsScratch,
) -> Option<u32> {
    if s == t {
        assert!(s.index() < graph.node_count(), "node {s} out of range");
        return Some(0);
    }
    let n = graph.node_count();
    side_s.begin(n);
    side_t.begin(n);
    side_s.visit(s.index(), 0);
    side_s.frontier.push(s.raw());
    side_t.visit(t.index(), 0);
    side_t.frontier.push(t.raw());
    let mut depth_s = 0u32;
    let mut depth_t = 0u32;
    let mut best: Option<u32> = None;

    while !side_s.frontier.is_empty() && !side_t.frontier.is_empty() {
        // Any path not yet witnessed by a doubly-discovered vertex is longer
        // than depth_s + depth_t, so the current best is final once it is at
        // most that sum.
        if let Some(b) = best {
            if b <= depth_s + depth_t {
                return Some(b);
            }
        }
        // expand the smaller frontier
        let expand_s = side_s.frontier.len() <= side_t.frontier.len();
        let (mine, other, depth) = if expand_s {
            (&mut *side_s, &*side_t, &mut depth_s)
        } else {
            (&mut *side_t, &*side_s, &mut depth_t)
        };
        mine.next.clear();
        for i in 0..mine.frontier.len() {
            let u = NodeId::new(mine.frontier[i]);
            for &v in graph.neighbors(u) {
                let vi = v.index();
                if !mine.visited(vi) {
                    mine.visit(vi, *depth + 1);
                    if other.visited(vi) {
                        let total = *depth + 1 + other.raw_distance(vi);
                        best = Some(best.map_or(total, |b| b.min(total)));
                    }
                    mine.next.push(v.raw());
                }
            }
        }
        *depth += 1;
        std::mem::swap(&mut mine.frontier, &mut mine.next);
    }
    // One side exhausted its component: every s–t path (if any) has been
    // witnessed, so `best` is exact.
    best
}

/// Parallel level-synchronous single-source BFS.
///
/// Returns the same distance vector as [`crate::bfs_distances`]
/// (`UNREACHABLE` for unreachable nodes) at any thread count: distances
/// are unique, so racing workers always write the same value for a vertex
/// and the claim order cannot leak into the result. Small graphs and
/// single-thread pools fall back to the serial hybrid.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn par_bfs_distances(graph: &Graph, source: NodeId, pool: &Pool) -> Vec<u32> {
    let n = graph.node_count();
    if pool.threads() <= 1 || n < PAR_THRESHOLD {
        let mut scratch = BfsScratch::new();
        bfs_distances_into(graph, source, &mut scratch);
        return scratch.to_distances();
    }

    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    dist[source.index()].store(0, Ordering::Relaxed);
    let mut frontier = vec![source.raw()];
    let total_directed = 2 * graph.edge_count();
    let mut visited_edges = graph.degree(source);
    let mut frontier_edges = visited_edges;
    let mut depth = 0u32;
    let mut bottom_up = false;
    let dist_ref = &dist;

    while !frontier.is_empty() {
        let unexplored = total_directed.saturating_sub(visited_edges);
        if !bottom_up {
            bottom_up = frontier_edges * ALPHA > unexplored;
        } else if frontier.len() * BETA < n {
            bottom_up = false;
        }

        // Each worker claims vertices into a local next-frontier; pool.map
        // joins all workers per level, so writes at depth d are visible to
        // every reader at depth d + 1.
        let parts: Vec<(Vec<u32>, usize)> = if bottom_up {
            // Disjoint vertex chunks: only the owning worker writes dist[v]
            // for v in its chunk, and "w in frontier" is just dist[w]==depth.
            let chunks = chunk_ranges(n, pool.threads() * 4);
            pool.map(chunks.len(), |c| {
                let mut local = Vec::new();
                let mut edges = 0usize;
                for v in chunks[c].clone() {
                    if dist_ref[v].load(Ordering::Relaxed) != UNREACHABLE {
                        continue;
                    }
                    let node = NodeId::from_index(v);
                    for &w in graph.neighbors(node) {
                        if dist_ref[w.index()].load(Ordering::Relaxed) == depth {
                            dist_ref[v].store(depth + 1, Ordering::Relaxed);
                            edges += graph.degree(node);
                            local.push(v as u32);
                            break;
                        }
                    }
                }
                (local, edges)
            })
        } else {
            // Frontier chunks: vertices are claimed by CAS, so each enters
            // exactly one local next-frontier, always at the same depth.
            let chunks = chunk_ranges(frontier.len(), pool.threads() * 4);
            let frontier_ref = &frontier;
            pool.map(chunks.len(), |c| {
                let mut local = Vec::new();
                let mut edges = 0usize;
                for &u in &frontier_ref[chunks[c].clone()] {
                    for &v in graph.neighbors(NodeId::new(u)) {
                        let vi = v.index();
                        if dist_ref[vi].load(Ordering::Relaxed) == UNREACHABLE
                            && dist_ref[vi]
                                .compare_exchange(
                                    UNREACHABLE,
                                    depth + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            edges += graph.degree(v);
                            local.push(v.raw());
                        }
                    }
                }
                (local, edges)
            })
        };

        frontier.clear();
        frontier_edges = 0;
        for (local, edges) in parts {
            frontier.extend_from_slice(&local);
            frontier_edges += edges;
        }
        visited_edges += frontier_edges;
        depth += 1;
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_distance, bfs_distances};

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn hybrid_matches_reference_on_cycle() {
        let g = cycle(50);
        let mut scratch = BfsScratch::new();
        bfs_distances_into(&g, NodeId::new(7), &mut scratch);
        assert_eq!(scratch.to_distances(), bfs_distances(&g, NodeId::new(7)));
    }

    #[test]
    fn hybrid_switches_bottom_up_on_dense_graph() {
        // complete graph: the first frontier covers all edges, forcing the
        // bottom-up branch on level 1
        let n = 40u32;
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        let g = Graph::from_edges(n as usize, edges).unwrap();
        let mut scratch = BfsScratch::new();
        bfs_distances_into(&g, NodeId::new(3), &mut scratch);
        assert_eq!(scratch.to_distances(), bfs_distances(&g, NodeId::new(3)));
    }

    #[test]
    fn bidirectional_with_scratches_matches_legacy() {
        let g = cycle(17);
        let mut a = BfsScratch::new();
        let mut b = BfsScratch::new();
        for s in 0..17u32 {
            for t in 0..17u32 {
                let got = bfs_distance_with(&g, NodeId::new(s), NodeId::new(t), &mut a, &mut b);
                assert_eq!(got, bfs_distance(&g, NodeId::new(s), NodeId::new(t)));
            }
        }
    }

    #[test]
    fn disconnected_pair_is_none() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        let mut a = BfsScratch::new();
        let mut b = BfsScratch::new();
        assert_eq!(
            bfs_distance_with(&g, NodeId::new(0), NodeId::new(3), &mut a, &mut b),
            None
        );
    }

    #[test]
    fn parallel_matches_serial_small_fallback() {
        let g = cycle(30);
        let pool = Pool::with_threads(4);
        assert_eq!(
            par_bfs_distances(&g, NodeId::new(5), &pool),
            bfs_distances(&g, NodeId::new(5))
        );
    }

    #[test]
    fn parallel_matches_serial_above_threshold() {
        // ring of 20_000 nodes with chords: crosses PAR_THRESHOLD so the
        // genuinely parallel path runs
        let n = 20_000u32;
        let edges = (0..n)
            .map(|i| (i, (i + 1) % n))
            .chain((0..n).step_by(17).map(|i| (i, (i + n / 2) % n)));
        let g = Graph::from_edges(n as usize, edges).unwrap();
        let expected = bfs_distances(&g, NodeId::new(123));
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            assert_eq!(
                par_bfs_distances(&g, NodeId::new(123), &pool),
                expected,
                "threads={threads}"
            );
        }
    }
}
