//! Parallel connected components via lock-free union–find.
//!
//! Workers union edges concurrently over node ranges of balanced adjacency
//! mass. The union–find is wait-free-ish in practice: parent pointers only
//! ever decrease (union-by-minimum-index roots the lower id), so the
//! forest stays acyclic under any interleaving, and a failed CAS just
//! retries against the new, strictly smaller root.
//!
//! # Determinism
//!
//! The concurrent phase is racy by design — which representative a vertex
//! transiently points at depends on scheduling. But the *partition* it
//! computes is scheduling-independent, and the public labels are assigned
//! by a sequential scan in vertex order (first component seen gets label
//! 0, and so on). The returned [`Components`] is therefore bitwise
//! identical to the serial [`Components::compute`] at any thread count.

use std::sync::atomic::{AtomicU32, Ordering};

use smallworld_par::Pool;

use crate::csr::{balanced_node_ranges, Graph, NodeId};
use crate::traversal::Components;
use crate::union_find::UnionFind;

/// Below this node count the parallel machinery costs more than the serial
/// union–find.
const PAR_THRESHOLD: usize = 1 << 14;

/// Connected components using the pool's workers.
///
/// Bitwise identical to [`Components::compute`] at any thread count.
///
/// # Examples
///
/// ```
/// use smallworld_graph::analytics::par_components;
/// use smallworld_graph::{Components, Graph, NodeId};
/// use smallworld_par::Pool;
///
/// let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (3, 4)])?;
/// let c = par_components(&g, &Pool::with_threads(4));
/// assert_eq!(c.count(), 2);
/// assert!(c.same_component(NodeId::new(0), NodeId::new(2)));
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn par_components(graph: &Graph, pool: &Pool) -> Components {
    components_filtered(graph, pool, &|_, _| true)
}

/// Connected components of the subgraph whose edges satisfy `keep`.
///
/// Vertices are never dropped: a vertex all of whose edges are filtered
/// out becomes a singleton component, exactly as if the edges did not
/// exist. This is the kernel behind `net`'s survivor-mask computation,
/// where `keep` consults the fault plan and building a filtered [`Graph`]
/// copy would cost a full CSR rebuild per query time.
///
/// Bitwise identical to running [`Components::compute`] on the filtered
/// graph, at any thread count.
pub fn filtered_components<F>(graph: &Graph, pool: &Pool, keep: F) -> Components
where
    F: Fn(NodeId, NodeId) -> bool + Sync,
{
    components_filtered(graph, pool, &keep)
}

fn components_filtered<F>(graph: &Graph, pool: &Pool, keep: &F) -> Components
where
    F: Fn(NodeId, NodeId) -> bool + Sync,
{
    let n = graph.node_count();
    if pool.threads() <= 1 || n < PAR_THRESHOLD {
        let mut uf = UnionFind::new(n);
        for u in graph.nodes() {
            for &v in graph.neighbors(u) {
                if u < v && keep(u, v) {
                    uf.union(u.index(), v.index());
                }
            }
        }
        return densify(n, |v| uf.find(v));
    }

    let parent: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();
    let parent_ref = &parent;
    // Ranges balanced by adjacency mass, not node count: power-law hubs
    // would otherwise serialize the whole union phase onto one worker.
    let ranges = balanced_node_ranges(graph.offsets(), pool.threads() * 4);
    pool.map(ranges.len(), |c| {
        for u in ranges[c].clone() {
            let u = NodeId::from_index(u);
            for &v in graph.neighbors(u) {
                if u < v && keep(u, v) {
                    union(parent_ref, u.index(), v.index());
                }
            }
        }
    });
    // pool.map joined the workers, so all unions are visible here.
    densify(n, |v| find(&parent, v))
}

/// Root lookup with path halving. Relaxed ordering suffices: parent words
/// are independent `u32`s, the algorithm tolerates stale reads (it just
/// walks one extra hop), and the cross-thread visibility we rely on is
/// established by the pool's join, not by these accesses.
fn find(parent: &[AtomicU32], mut v: usize) -> usize {
    loop {
        let p = parent[v].load(Ordering::Relaxed) as usize;
        if p == v {
            return v;
        }
        let gp = parent[p].load(Ordering::Relaxed) as usize;
        if gp != p {
            // Path halving: harmless if it loses the race — gp is an
            // ancestor of v either way.
            let _ = parent[v].compare_exchange(p as u32, gp as u32, Ordering::Relaxed, Ordering::Relaxed);
        }
        v = gp;
    }
}

/// Lock-free union by minimum index: the higher root is CASed to point at
/// the lower. Since edges only ever lower a root's parent, the structure
/// stays a forest rooted at component minima under any interleaving.
fn union(parent: &[AtomicU32], u: usize, v: usize) {
    let mut ru = find(parent, u);
    let mut rv = find(parent, v);
    while ru != rv {
        let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
        if parent[hi]
            .compare_exchange(hi as u32, lo as u32, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        ru = find(parent, hi);
        rv = find(parent, lo);
    }
}

/// Assigns dense labels by a sequential scan in vertex order — the same
/// scan as the serial [`Components::compute`], so labels depend only on
/// the partition, never on which representative the union phase picked.
fn densify(n: usize, mut root_of: impl FnMut(usize) -> usize) -> Components {
    let mut label = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    let mut rep_label = vec![u32::MAX; n];
    for (v, l) in label.iter_mut().enumerate() {
        let r = root_of(v);
        if rep_label[r] == u32::MAX {
            rep_label[r] = sizes.len() as u32;
            sizes.push(0);
        }
        *l = rep_label[r];
        sizes[rep_label[r] as usize] += 1;
    }
    Components::from_parts(label, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same(a: &Components, b: &Components, n: usize) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.largest_label(), b.largest_label());
        assert_eq!(a.largest_size(), b.largest_size());
        for v in 0..n as u32 {
            assert_eq!(a.component_of(NodeId::new(v)), b.component_of(NodeId::new(v)));
        }
    }

    #[test]
    fn small_graph_takes_serial_path() {
        let g = Graph::from_edges(7, [(0u32, 1u32), (1, 2), (3, 4), (5, 6)]).unwrap();
        let serial = Components::compute(&g);
        let par = par_components(&g, &Pool::with_threads(4));
        assert_same(&serial, &par, 7);
    }

    #[test]
    fn large_graph_parallel_matches_serial() {
        // two interleaved rings above the threshold, plus isolated nodes
        let n = 40_000usize;
        let ring = (n as u32 - 200) / 2;
        let edges = (0..ring)
            .map(|i| (2 * i, 2 * ((i + 1) % ring)))
            .chain((0..ring).map(|i| (2 * i + 1, 2 * ((i + 1) % ring) + 1)));
        let g = Graph::from_edges(n, edges).unwrap();
        let serial = Components::compute(&g);
        assert_eq!(serial.count(), 2 + 200);
        for threads in [2, 4, 8] {
            let par = par_components(&g, &Pool::with_threads(threads));
            assert_same(&serial, &par, n);
        }
    }

    #[test]
    fn filtered_matches_rebuilt_graph() {
        // filter: drop every edge touching a multiple of 3
        let n = 20_000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(n, edges.iter().copied()).unwrap();
        let keep = |u: NodeId, v: NodeId| !u.raw().is_multiple_of(3) && !v.raw().is_multiple_of(3);
        let rebuilt =
            Graph::from_edges(n, edges.iter().copied().filter(|&(u, v)| {
                keep(NodeId::new(u), NodeId::new(v))
            }))
            .unwrap();
        let expected = Components::compute(&rebuilt);
        for threads in [1, 4] {
            let got = filtered_components(&g, &Pool::with_threads(threads), keep);
            assert_same(&expected, &got, n);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        let c = par_components(&g, &Pool::with_threads(4));
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_size(), 0);
    }
}
