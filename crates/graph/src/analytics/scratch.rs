//! Epoch-stamped, reusable BFS working memory.

use crate::csr::NodeId;
use crate::traversal::UNREACHABLE;

/// Reusable single-source BFS working state.
///
/// A naive BFS allocates (and zeroes) an `O(n)` distance array per call —
/// at a million vertices that is a 4 MB memset before the first edge is
/// touched, and the stretch experiments run one BFS *per routed pair*.
/// `BfsScratch` instead stamps each slot with the epoch of the search
/// that wrote it: starting a new search is a single counter increment,
/// and a slot is "unvisited" unless its stamp matches the current epoch.
///
/// The scratch also owns the frontier queues and the frontier bitset used
/// by the bottom-up direction of the hybrid BFS, so a warm scratch
/// performs no allocation at all.
///
/// # Examples
///
/// ```
/// use smallworld_graph::analytics::{bfs_distances_into, BfsScratch};
/// use smallworld_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2)])?;
/// let mut scratch = BfsScratch::new();
/// bfs_distances_into(&g, NodeId::new(0), &mut scratch);
/// assert_eq!(scratch.distance(NodeId::new(2)), Some(2));
/// assert_eq!(scratch.distance(NodeId::new(3)), None);
/// // reuse: no allocation, no O(n) clear
/// bfs_distances_into(&g, NodeId::new(2), &mut scratch);
/// assert_eq!(scratch.distance(NodeId::new(0)), Some(2));
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    /// Epoch of the search that last wrote each slot.
    stamp: Vec<u32>,
    /// Distance from the current search's source (valid iff stamped).
    dist: Vec<u32>,
    /// Current epoch; slots with `stamp[v] == epoch` are visited.
    epoch: u32,
    /// Current and next frontier queues (raw ids).
    pub(crate) frontier: Vec<u32>,
    pub(crate) next: Vec<u32>,
    /// Frontier membership bitset for bottom-up sweeps (one bit per node).
    pub(crate) frontier_bits: Vec<u64>,
}

impl BfsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Prepares the scratch for a fresh search over `n` nodes: bumps the
    /// epoch (resizing/zeroing only when the node count changed or the
    /// 32-bit epoch wrapped) and clears the frontier queues.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() != n || self.epoch == u32::MAX {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.dist.clear();
            self.dist.resize(n, 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.frontier.clear();
        self.next.clear();
        let words = n.div_ceil(64);
        if self.frontier_bits.len() != words {
            self.frontier_bits.clear();
            self.frontier_bits.resize(words, 0);
        }
    }

    /// Whether `v` was visited by the current search.
    #[inline]
    pub(crate) fn visited(&self, v: usize) -> bool {
        self.stamp[v] == self.epoch
    }

    /// Marks `v` visited at `d`; the caller guarantees it was unvisited.
    #[inline]
    pub(crate) fn visit(&mut self, v: usize, d: u32) {
        self.stamp[v] = self.epoch;
        self.dist[v] = d;
    }

    /// Raw distance slot (only meaningful when [`Self::visited`]).
    #[inline]
    pub(crate) fn raw_distance(&self, v: usize) -> u32 {
        self.dist[v]
    }

    /// Distance of `v` from the source of the most recent search, or
    /// `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the searched graph.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        self.visited(v.index()).then(|| self.dist[v.index()])
    }

    /// Number of nodes the scratch is currently sized for.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the scratch has never been used.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Materializes the legacy distance vector (`UNREACHABLE` for
    /// unvisited nodes) from the most recent search.
    pub fn to_distances(&self) -> Vec<u32> {
        (0..self.stamp.len())
            .map(|v| if self.visited(v) { self.dist[v] } else { UNREACHABLE })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::bfs::bfs_distances_into;
    use crate::csr::Graph;

    #[test]
    fn epoch_reuse_resets_without_clearing() {
        let g = Graph::from_edges(3, [(0u32, 1u32)]).unwrap();
        let mut s = BfsScratch::new();
        bfs_distances_into(&g, NodeId::new(0), &mut s);
        assert_eq!(s.distance(NodeId::new(1)), Some(1));
        assert_eq!(s.distance(NodeId::new(2)), None);
        bfs_distances_into(&g, NodeId::new(2), &mut s);
        assert_eq!(s.distance(NodeId::new(2)), Some(0));
        assert_eq!(s.distance(NodeId::new(0)), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn epoch_wrap_is_safe() {
        let g = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        let mut s = BfsScratch::new();
        s.begin(2);
        s.epoch = u32::MAX; // force the wrap path on the next search
        bfs_distances_into(&g, NodeId::new(1), &mut s);
        assert_eq!(s.distance(NodeId::new(0)), Some(1));
        assert_eq!(s.to_distances(), vec![1, 0]);
    }

    #[test]
    fn resize_between_graphs() {
        let small = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        let big = Graph::from_edges(5, [(0u32, 4u32)]).unwrap();
        let mut s = BfsScratch::new();
        bfs_distances_into(&small, NodeId::new(0), &mut s);
        bfs_distances_into(&big, NodeId::new(0), &mut s);
        assert_eq!(s.len(), 5);
        assert_eq!(s.distance(NodeId::new(4)), Some(1));
    }
}
