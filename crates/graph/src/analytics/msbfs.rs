//! Batched exact s–t distances: bit-parallel multi-source BFS (Then et
//! al., VLDB 2015) with an adaptive per-pair fallback.
//!
//! MS-BFS amortizes traversals: 64 sources share a single
//! level-synchronous sweep, one `u64` bit lane per source, so each CSR
//! edge scan advances all 64 searches at once. Per vertex `v` the scratch
//! keeps three words: `seen[v]` (lanes that have reached `v`), `visit[v]`
//! (lanes whose frontier contains `v`), and `next[v]` (lanes discovering
//! `v` this level). The inner loop is pure bit arithmetic:
//!
//! ```text
//! new = visit[v] & !seen[w];   seen[w] |= new;   next[w] |= new;
//! ```
//!
//! A sweep costs a near-full traversal regardless of how many pairs it
//! resolves, while one bidirectional BFS on a low-diameter graph only
//! explores two small meet-in-the-middle balls. The crossover is the
//! number of pairs amortized per distinct source: distance-matrix
//! workloads (few sources × many targets) win by sharing sweeps; random
//! pair sets (every source distinct) are faster one bidirectional search
//! at a time. [`pair_distances`] measures that ratio and dispatches —
//! both paths are exact, so the choice can never change a value.

use std::collections::{HashMap, HashSet};

use crate::analytics::bfs::bfs_distance_with;
use crate::analytics::scratch::BfsScratch;
use crate::csr::{Graph, NodeId};

/// Number of bit lanes per sweep (one `u64` word).
const LANES: usize = 64;

/// Minimum pairs-per-distinct-source ratio at which shared sweeps beat
/// per-pair bidirectional BFS (a sweep costs ~one full traversal; a
/// bidirectional query two small balls — measured crossover on 100k-vertex
/// GIRGs is near 16 targets per source).
const SHARED_SOURCE_FACTOR: usize = 16;

/// Reusable working memory for [`pair_distances_with`]: the three lane
/// words per vertex of the MS-BFS sweep (~2.4 MB at 100k vertices) plus
/// two epoch-stamped scratches for the bidirectional fallback. Reused
/// across batches and across calls.
#[derive(Clone, Debug, Default)]
pub struct MsBfsScratch {
    seen: Vec<u64>,
    visit: Vec<u64>,
    next: Vec<u64>,
    side_s: BfsScratch,
    side_t: BfsScratch,
}

impl MsBfsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MsBfsScratch::default()
    }

    fn begin(&mut self, n: usize) {
        self.seen.clear();
        self.seen.resize(n, 0);
        self.visit.clear();
        self.visit.resize(n, 0);
        self.next.clear();
        self.next.resize(n, 0);
    }
}

/// Exact shortest-path distances for a batch of vertex pairs.
///
/// Result `i` corresponds to `pairs[i]`: `Some(d)` for the exact BFS
/// distance, `None` if the endpoints are disconnected.
///
/// Strategy is adaptive: when the batch amortizes many targets over few
/// distinct sources (a distance matrix, all-targets-per-source sampling),
/// pairs are packed into bit-parallel sweeps of up to 64 sources, so `k`
/// pairs cost `⌈distinct_sources / 64⌉` traversals instead of `k`. When
/// sources are mostly distinct — where a shared sweep would traverse far
/// more than two meet-in-the-middle balls — each pair runs one
/// scratch-backed bidirectional BFS. The distances are exact either way,
/// so the output is a pure function of the graph and the pair list —
/// neither batch boundaries nor the strategy choice can change values.
///
/// # Panics
///
/// Panics if any endpoint is out of range.
///
/// # Examples
///
/// ```
/// use smallworld_graph::analytics::pair_distances;
/// use smallworld_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let pairs = [(NodeId::new(0), NodeId::new(3)), (NodeId::new(0), NodeId::new(4))];
/// assert_eq!(pair_distances(&g, &pairs), vec![Some(3), None]);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn pair_distances(graph: &Graph, pairs: &[(NodeId, NodeId)]) -> Vec<Option<u32>> {
    pair_distances_with(graph, pairs, &mut MsBfsScratch::new())
}

/// [`pair_distances`] into a reusable [`MsBfsScratch`].
///
/// # Panics
///
/// Panics if any endpoint is out of range.
pub fn pair_distances_with(
    graph: &Graph,
    pairs: &[(NodeId, NodeId)],
    scratch: &mut MsBfsScratch,
) -> Vec<Option<u32>> {
    let n = graph.node_count();
    let mut out: Vec<Option<u32>> = vec![None; pairs.len()];
    // (pair index, source, target); s == t resolves immediately
    let mut work: Vec<(usize, NodeId, NodeId)> = Vec::with_capacity(pairs.len());
    for (i, &(s, t)) in pairs.iter().enumerate() {
        assert!(s.index() < n, "source {s} out of range");
        assert!(t.index() < n, "target {t} out of range");
        if s == t {
            out[i] = Some(0);
        } else {
            work.push((i, s, t));
        }
    }
    let distinct: usize = work
        .iter()
        .map(|&(_, s, _)| s.raw())
        .collect::<HashSet<u32>>()
        .len();
    if work.len() >= SHARED_SOURCE_FACTOR * distinct.max(1) {
        msbfs_distances(graph, &work, scratch, &mut out);
    } else {
        for &(i, s, t) in &work {
            out[i] = bfs_distance_with(graph, s, t, &mut scratch.side_s, &mut scratch.side_t);
        }
    }
    out
}

/// One sweep batch: packed source ids plus the `(pair index, lane,
/// target)` entries still waiting on a distance.
type Batch = (Vec<u32>, Vec<(usize, u8, u32)>);

/// The bit-parallel sweep path: packs `work` (pair index, source, target;
/// sources ≠ targets) into batches of ≤ 64 distinct sources and resolves
/// each batch in one level-synchronous traversal.
fn msbfs_distances(
    graph: &Graph,
    work: &[(usize, NodeId, NodeId)],
    scratch: &mut MsBfsScratch,
    out: &mut [Option<u32>],
) {
    let n = graph.node_count();
    // Greedily pack pairs into batches; targets ride along with their
    // pair index. Repeated sources share a lane.
    let mut lane_of: HashMap<u32, u8> = HashMap::new();
    let mut sources: Vec<u32> = Vec::with_capacity(LANES);
    // (pair index, lane, target)
    let mut pending: Vec<(usize, u8, u32)> = Vec::new();
    let mut batches: Vec<Batch> = Vec::new();

    for &(i, s, t) in work {
        let lane = match lane_of.get(&s.raw()) {
            Some(&l) => l,
            None => {
                if sources.len() == LANES {
                    batches.push((std::mem::take(&mut sources), std::mem::take(&mut pending)));
                    lane_of.clear();
                }
                let l = sources.len() as u8;
                lane_of.insert(s.raw(), l);
                sources.push(s.raw());
                l
            }
        };
        pending.push((i, lane, t.raw()));
    }
    if !sources.is_empty() {
        batches.push((sources, pending));
    }

    for (sources, mut pending) in batches {
        scratch.begin(n);
        for (lane, &s) in sources.iter().enumerate() {
            let bit = 1u64 << lane;
            scratch.seen[s as usize] |= bit;
            scratch.visit[s as usize] |= bit;
        }
        let mut depth = 0u32;
        while !pending.is_empty() {
            // one level: advance every lane one hop
            let mut any = false;
            for v in 0..n {
                let active = scratch.visit[v];
                if active == 0 {
                    continue;
                }
                for &w in graph.neighbors(NodeId::from_index(v)) {
                    let wi = w.index();
                    let new = active & !scratch.seen[wi];
                    if new != 0 {
                        scratch.seen[wi] |= new;
                        scratch.next[wi] |= new;
                        any = true;
                    }
                }
            }
            if !any {
                // every remaining pair is disconnected (already None)
                break;
            }
            depth += 1;
            pending.retain(|&(i, lane, t)| {
                if scratch.next[t as usize] & (1u64 << lane) != 0 {
                    out[i] = Some(depth);
                    false
                } else {
                    true
                }
            });
            std::mem::swap(&mut scratch.visit, &mut scratch.next);
            scratch.next.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_distance;

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    /// Runs the sweep path directly, bypassing the adaptive dispatch.
    fn sweep_distances(graph: &Graph, pairs: &[(NodeId, NodeId)]) -> Vec<Option<u32>> {
        let mut out = vec![None; pairs.len()];
        let work: Vec<(usize, NodeId, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(s, t))| s != t)
            .map(|(i, &(s, t))| (i, s, t))
            .collect();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            if s == t {
                out[i] = Some(0);
            }
        }
        msbfs_distances(graph, &work, &mut MsBfsScratch::new(), &mut out);
        out
    }

    #[test]
    fn matches_bidirectional_on_cycle() {
        let g = cycle(23);
        let pairs: Vec<(NodeId, NodeId)> = (0..23u32)
            .flat_map(|s| (0..23u32).map(move |t| (NodeId::new(s), NodeId::new(t))))
            .collect();
        // all-pairs amortizes 23 targets per source: the dispatcher takes
        // the sweep path, and the direct sweep must agree with it
        let got = pair_distances(&g, &pairs);
        assert_eq!(got, sweep_distances(&g, &pairs));
        for (k, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(got[k], bfs_distance(&g, s, t), "({s}, {t})");
        }
    }

    #[test]
    fn distinct_source_pairs_match_on_both_paths() {
        // 150 distinct sources, one target each: the dispatcher takes the
        // bidirectional path; the sweep path (driven directly, spilling
        // into 3 batches of 64 lanes) must produce identical distances
        let g = cycle(200);
        let pairs: Vec<(NodeId, NodeId)> = (0..150u32)
            .map(|s| (NodeId::new(s), NodeId::new((s + 71) % 200)))
            .collect();
        let got = pair_distances(&g, &pairs);
        assert_eq!(got, sweep_distances(&g, &pairs));
        for (k, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(got[k], bfs_distance(&g, s, t));
        }
    }

    #[test]
    fn repeated_sources_share_a_lane() {
        let g = cycle(10);
        let pairs: Vec<(NodeId, NodeId)> = (0..10u32)
            .map(|t| (NodeId::new(0), NodeId::new(t)))
            .collect();
        let expected = vec![
            Some(0),
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(5),
            Some(4),
            Some(3),
            Some(2),
            Some(1),
        ];
        // 9 non-trivial targets on one source: still below the dispatch
        // ratio, so check the sweep directly as well as the public API
        assert_eq!(pair_distances(&g, &pairs), expected);
        assert_eq!(sweep_distances(&g, &pairs), expected);
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        let pairs = [
            (NodeId::new(0), NodeId::new(2)),
            (NodeId::new(0), NodeId::new(3)),
            (NodeId::new(3), NodeId::new(4)),
            (NodeId::new(5), NodeId::new(5)),
            (NodeId::new(5), NodeId::new(0)),
        ];
        let expected = vec![Some(2), None, Some(1), Some(0), None];
        assert_eq!(pair_distances(&g, &pairs), expected);
        assert_eq!(sweep_distances(&g, &pairs), expected);
    }

    #[test]
    fn empty_pair_list() {
        let g = cycle(4);
        assert!(pair_distances(&g, &[]).is_empty());
    }

    #[test]
    fn scratch_reuse_across_graphs() {
        let mut scratch = MsBfsScratch::new();
        let small = cycle(6);
        let big = cycle(30);
        let p1 = [(NodeId::new(0), NodeId::new(3))];
        assert_eq!(pair_distances_with(&small, &p1, &mut scratch), vec![Some(3)]);
        let p2 = [(NodeId::new(0), NodeId::new(15))];
        assert_eq!(pair_distances_with(&big, &p2, &mut scratch), vec![Some(15)]);
    }
}
