//! Parallel double-sweep diameter estimation.

use smallworld_par::Pool;

use super::bfs::par_bfs_distances;
use crate::csr::{Graph, NodeId};
use crate::traversal::UNREACHABLE;

/// Double-sweep diameter estimate with both sweeps running the parallel
/// level-synchronous BFS.
///
/// Identical to [`crate::traversal::double_sweep_diameter`] at any thread
/// count: the distance arrays are unique, and the far vertex of the first
/// sweep is selected by the same scan (last index attaining the maximum
/// finite distance), so the second sweep starts from the same vertex.
///
/// # Panics
///
/// Panics if `start` is out of range.
///
/// # Examples
///
/// ```
/// use smallworld_graph::analytics::par_double_sweep_diameter;
/// use smallworld_graph::{Graph, NodeId};
/// use smallworld_par::Pool;
///
/// let path = Graph::from_edges(5, (0u32..4).map(|i| (i, i + 1)))?;
/// let pool = Pool::with_threads(4);
/// assert_eq!(par_double_sweep_diameter(&path, NodeId::new(2), &pool), 4);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn par_double_sweep_diameter(graph: &Graph, start: NodeId, pool: &Pool) -> u32 {
    let first = par_bfs_distances(graph, start, pool);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| NodeId::from_index(i));
    match far {
        None => 0,
        Some(v) => par_bfs_distances(graph, v, pool)
            .into_iter()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::double_sweep_diameter;

    #[test]
    fn matches_serial_on_small_graphs() {
        let pool = Pool::with_threads(4);
        let cycle = Graph::from_edges(10, (0u32..10).map(|i| (i, (i + 1) % 10))).unwrap();
        assert_eq!(par_double_sweep_diameter(&cycle, NodeId::new(3), &pool), 5);
        let path = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1))).unwrap();
        assert_eq!(par_double_sweep_diameter(&path, NodeId::new(2), &pool), 5);
        // isolated start
        let g = Graph::from_edges(3, [(1u32, 2u32)]).unwrap();
        assert_eq!(par_double_sweep_diameter(&g, NodeId::new(0), &pool), 0);
    }

    #[test]
    fn matches_serial_above_parallel_threshold() {
        let n = 20_000u32;
        let edges = (0..n - 1)
            .map(|i| (i, i + 1))
            .chain((0..n).step_by(101).map(|i| (i, (i + 5_000) % n)));
        let g = Graph::from_edges(n as usize, edges).unwrap();
        let expected = double_sweep_diameter(&g, NodeId::new(0));
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            assert_eq!(
                par_double_sweep_diameter(&g, NodeId::new(0), &pool),
                expected,
                "threads={threads}"
            );
        }
    }
}
