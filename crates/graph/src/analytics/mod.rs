//! Parallel graph-analytics engine.
//!
//! The paper's Section 4 claims — ultra-small diameter, constant
//! clustering, stretch ≈ 1 — are all verified through a handful of
//! traversal kernels. At the million-vertex scale of the experiment
//! battery those kernels dominate wall time, so this module rebuilds them
//! the way [the routing hot path](`crate`) was rebuilt in the routing
//! engine: allocation-free in steady state, cache-conscious, and parallel
//! over the workspace's deterministic [`Pool`](smallworld_par::Pool).
//!
//! Four kernels:
//!
//! * **Direction-optimizing single-source BFS** ([`bfs`]): Beamer et
//!   al.'s top-down/bottom-up hybrid (SC 2012) over an epoch-stamped
//!   [`BfsScratch`], so repeated searches allocate nothing and never
//!   memset an `O(n)` array.
//! * **Bit-parallel multi-source BFS** ([`msbfs`]): Then et al.'s
//!   MS-BFS (VLDB 2015) — 64 sources share one sweep, one `u64` lane
//!   per source. [`pair_distances`] resolves whole batches of exact
//!   s–t distances in a handful of sweeps instead of one bidirectional
//!   BFS per pair.
//! * **Parallel connected components** ([`components`]): a lock-free
//!   union–find over edge chunks. The returned
//!   [`Components`](crate::Components) is **bitwise-identical** to the
//!   serial computation at any thread count.
//! * **Parallel double-sweep diameter** ([`diameter`]): both sweeps run
//!   the level-synchronous parallel BFS.
//!
//! # Determinism
//!
//! Every result in this module is a pure function of the graph (and the
//! query), never of the thread count — the same contract the generation
//! and routing engines obey:
//!
//! * BFS distances are *unique*: any correct traversal produces the same
//!   distance array, so parallel expansion order cannot leak into results.
//! * [`pair_distances`] returns exact shortest-path distances, so batch
//!   boundaries (which may depend on the pool) cannot change values.
//! * Component *labels* are densified by a sequential scan in vertex
//!   order; labels depend only on the connectivity partition, not on
//!   which representative a racing union–find happened to pick.
//!
//! # Examples
//!
//! ```
//! use smallworld_graph::analytics::{pair_distances, par_components};
//! use smallworld_graph::{Components, Graph, NodeId};
//! use smallworld_par::Pool;
//!
//! let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (3, 4)])?;
//! let dists = pair_distances(&g, &[(NodeId::new(0), NodeId::new(2)), (NodeId::new(0), NodeId::new(4))]);
//! assert_eq!(dists, vec![Some(2), None]);
//! let par = par_components(&g, &Pool::with_threads(4));
//! assert_eq!(par.count(), Components::compute(&g).count());
//! # Ok::<(), smallworld_graph::GraphError>(())
//! ```

pub mod bfs;
pub mod components;
pub mod diameter;
pub mod msbfs;
pub mod scratch;

pub use bfs::{bfs_distance_with, bfs_distances_into, par_bfs_distances};
pub use components::{filtered_components, par_components};
pub use diameter::par_double_sweep_diameter;
pub use msbfs::{pair_distances, pair_distances_with, MsBfsScratch};
pub use scratch::BfsScratch;
