//! Disjoint-set forest (union–find) with path halving and union by size.

/// A disjoint-set forest over `0..len`.
///
/// Used for connected components of sampled graphs, where it is faster than
/// repeated BFS because it streams over the edge list once.
///
/// # Examples
///
/// ```
/// use smallworld_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `u32::MAX`.
    pub fn new(len: usize) -> Self {
        assert!(u32::try_from(len).is_ok(), "universe too large for u32 indices");
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// The representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The size of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(1), 1);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(2), 3);
    }

    #[test]
    fn empty_universe() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }

    proptest! {
        #[test]
        fn prop_matches_naive_labels(ops in prop::collection::vec((0usize..30, 0usize..30), 0..120)) {
            let mut uf = UnionFind::new(30);
            // naive: label vector, relabel on union
            let mut label: Vec<usize> = (0..30).collect();
            for (a, b) in ops {
                uf.union(a, b);
                let (la, lb) = (label[a], label[b]);
                if la != lb {
                    for l in label.iter_mut() {
                        if *l == lb { *l = la; }
                    }
                }
            }
            for a in 0..30 {
                for b in 0..30 {
                    prop_assert_eq!(uf.connected(a, b), label[a] == label[b]);
                }
            }
            let distinct = {
                let mut ls: Vec<usize> = label.clone();
                ls.sort_unstable();
                ls.dedup();
                ls.len()
            };
            prop_assert_eq!(uf.set_count(), distinct);
        }
    }
}
