//! Structural statistics used to validate sampled graphs against the model.
//!
//! The GIRG literature the paper builds on proves that these graphs are
//! sparse, scale-free with power-law exponent β, and have constant clustering
//! (§1.1 item (2)). The experiment `exp_structure` measures all of these on
//! sampled graphs via this module.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::{Graph, NodeId};

/// Degree histogram: `hist[k]` is the number of nodes of degree `k`.
///
/// # Examples
///
/// ```
/// use smallworld_graph::{stats, Graph};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (1, 3)])?;
/// assert_eq!(stats::degree_histogram(&g), vec![0, 3, 0, 1]);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// The local clustering coefficient of `v`: the fraction of neighbor pairs
/// that are themselves adjacent. Zero for nodes of degree < 2.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn local_clustering(graph: &Graph, v: NodeId) -> f64 {
    let nbrs = graph.neighbors(v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    // Each closed pair {a, b} with a < b is an element of N(a) ∩ N(v)
    // above a, so two-pointer merges over the sorted adjacency count them
    // in O(Σ_{a ∈ N(v)} (deg a + deg v)) instead of O(deg² · log) binary
    // searches.
    let closed: usize = nbrs
        .iter()
        .map(|&a| sorted_intersection_above(graph.neighbors(a), nbrs, a))
        .sum();
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// The average local clustering coefficient over all nodes of degree ≥ 2.
///
/// Returns 0 if no node has degree ≥ 2. Exact but `O(Σ deg²)`; use
/// [`sampled_average_clustering`] on large graphs.
pub fn average_clustering(graph: &Graph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in graph.nodes() {
        if graph.degree(v) >= 2 {
            sum += local_clustering(graph, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Estimates the average local clustering coefficient from a uniform sample
/// of `samples` nodes of degree ≥ 2.
///
/// Returns 0 if no node has degree ≥ 2.
pub fn sampled_average_clustering<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let eligible: Vec<NodeId> = graph.nodes().filter(|&v| graph.degree(v) >= 2).collect();
    if eligible.is_empty() {
        return 0.0;
    }
    let chosen: Vec<NodeId> = eligible
        .choose_multiple(rng, samples.min(eligible.len()))
        .copied()
        .collect();
    let sum: f64 = chosen.iter().map(|&v| local_clustering(graph, v)).sum();
    sum / chosen.len() as f64
}

/// Number of triangles in the graph (exact, `O(Σ deg²)` with sorted merges).
pub fn triangle_count(graph: &Graph) -> usize {
    let mut count = 0usize;
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            if v <= u {
                continue;
            }
            // count common neighbors w with w > v to count each triangle once
            count += sorted_intersection_above(graph.neighbors(u), graph.neighbors(v), v);
        }
    }
    count
}

/// Counts elements `> floor` present in both sorted slices.
fn sorted_intersection_above(a: &[NodeId], b: &[NodeId], floor: NodeId) -> usize {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle with a tail 2-3
        Graph::from_edges(4, [(0u32, 1u32), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle_plus_tail();
        // degrees: 2, 2, 3, 1
        assert_eq!(degree_histogram(&g), vec![0, 1, 2, 1]);
    }

    #[test]
    fn clustering_of_triangle_nodes() {
        let g = triangle_plus_tail();
        assert!((local_clustering(&g, NodeId::new(0)) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, NodeId::new(1)) - 1.0).abs() < 1e-12);
        // node 2 has neighbors {0,1,3}; only pair (0,1) closed: 1/3
        assert!((local_clustering(&g, NodeId::new(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, NodeId::new(3)), 0.0);
    }

    #[test]
    fn average_clustering_skips_low_degree() {
        let g = triangle_plus_tail();
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 3.0;
        assert!((average_clustering(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_edgeless_graph_is_zero() {
        let g = Graph::from_edges(3, Vec::<(u32, u32)>::new()).unwrap();
        assert_eq!(average_clustering(&g), 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(sampled_average_clustering(&g, 10, &mut rng), 0.0);
    }

    #[test]
    fn triangle_count_examples() {
        assert_eq!(triangle_count(&triangle_plus_tail()), 1);
        // K4 has 4 triangles
        let k4 = Graph::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        assert_eq!(triangle_count(&k4), 4);
        // bipartite C4 has none
        let c4 = Graph::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(triangle_count(&c4), 0);
    }

    #[test]
    fn sampled_clustering_on_full_sample_matches_exact() {
        let g = triangle_plus_tail();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sampled = sampled_average_clustering(&g, 100, &mut rng);
        assert!((sampled - average_clustering(&g)).abs() < 1e-12);
    }

    /// The O(deg²) membership-probe definition the merge-based
    /// [`local_clustering`] must agree with.
    fn naive_local_clustering(graph: &Graph, v: NodeId) -> f64 {
        let nbrs = graph.neighbors(v);
        let k = nbrs.len();
        if k < 2 {
            return 0.0;
        }
        let mut closed = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
        closed as f64 / (k * (k - 1) / 2) as f64
    }

    proptest! {
        #[test]
        fn prop_merge_clustering_equals_naive(
            edges in prop::collection::vec((0u32..25, 0u32..25), 0..120),
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(25, edges).unwrap();
            for v in g.nodes() {
                // exact equality: both sides compute the same integer ratio
                prop_assert_eq!(local_clustering(&g, v), naive_local_clustering(&g, v));
            }
        }

        #[test]
        fn prop_triangles_consistent_with_clustering(
            edges in prop::collection::vec((0u32..15, 0u32..15), 0..60),
        ) {
            // sum over nodes of closed pairs = 3 * triangle count
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(15, edges).unwrap();
            let mut closed_pairs = 0.0;
            for v in g.nodes() {
                let k = g.degree(v);
                if k >= 2 {
                    closed_pairs += local_clustering(&g, v) * (k * (k - 1) / 2) as f64;
                }
            }
            prop_assert!((closed_pairs - 3.0 * triangle_count(&g) as f64).abs() < 1e-6);
        }

        #[test]
        fn prop_histogram_sums_to_node_count(
            edges in prop::collection::vec((0u32..20, 0u32..20), 0..50),
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(20, edges).unwrap();
            let hist = degree_histogram(&g);
            prop_assert_eq!(hist.iter().sum::<usize>(), 20);
            // weighted sum = 2m
            let stubs: usize = hist.iter().enumerate().map(|(k, c)| k * c).sum();
            prop_assert_eq!(stubs, 2 * g.edge_count());
        }
    }
}
