//! Compact graph substrate for the small-world reproduction.
//!
//! The paper's experiments need exactly four graph facilities, all provided
//! here with no external dependencies:
//!
//! * a memory-compact, cache-friendly adjacency structure ([`Graph`], CSR
//!   with sorted neighbor lists),
//! * breadth-first search for shortest paths and stretch measurements
//!   ([`traversal`]),
//! * connected components, to condition routing experiments on "s and t in
//!   the same component" as in Theorems 3.1–3.4 ([`Components`]),
//! * degree / clustering statistics to validate sampled GIRGs against the
//!   model's known structural properties ([`stats`]),
//! * a parallel analytics engine — direction-optimizing BFS, bit-parallel
//!   multi-source pair distances, deterministic parallel components — for
//!   the experiment battery's hot paths ([`analytics`]).
//!
//! # Examples
//!
//! ```
//! use smallworld_graph::{Graph, NodeId};
//!
//! let mut builder = Graph::builder(4);
//! builder.add_edge(NodeId::new(0), NodeId::new(1))?;
//! builder.add_edge(NodeId::new(1), NodeId::new(2))?;
//! let g = builder.build();
//! assert_eq!(g.degree(NodeId::new(1)), 2);
//! assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
//! assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
//! # Ok::<(), smallworld_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytics;
pub mod csr;
pub mod permute;
pub mod stats;
pub mod traversal;
pub mod union_find;
pub mod view;

pub use csr::{percolate, percolate_vertices, Graph, GraphBuilder, GraphError, NodeId};
pub use permute::Permutation;
pub use traversal::{bfs_distance, bfs_distances, double_sweep_diameter, Components};
pub use union_find::UnionFind;
pub use view::AdjacencyView;
