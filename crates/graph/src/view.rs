//! Adjacency access abstracted over the storage substrate.
//!
//! A routing loop only ever needs two things from a graph: the vertex count
//! and, for one vertex at a time, a borrowed view of its sorted neighbor
//! list. [`AdjacencyView`] captures exactly that, so the same loop can run
//! over an in-memory [`Graph`] *or* over a cursor that decodes neighbor
//! lists on demand from a memory-mapped compressed store (and therefore
//! needs `&mut self` to manage its decode cache).
//!
//! The callback shape (`with_neighbors` instead of returning a slice)
//! exists for those caching cursors: the decoded list lives in a buffer the
//! cursor owns and may recycle on the next call, so the borrow cannot
//! outlive the call.

use crate::csr::{Graph, NodeId};

/// Read access to a graph's adjacency, one vertex at a time.
///
/// Implementations must present each vertex's neighbor list **sorted
/// ascending by node id**, exactly as [`Graph::neighbors`] does —
/// protocols compare routes bitwise across substrates, and the argmax
/// tie-breaking of greedy routing depends on the iteration order.
pub trait AdjacencyView {
    /// Number of vertices; valid ids are `0..node_count`.
    fn node_count(&self) -> usize;

    /// Calls `f` with the sorted neighbor list of `v` and returns `f`'s
    /// result.
    ///
    /// Takes `&mut self` so implementations may decode into (and cache in)
    /// owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn with_neighbors<R>(&mut self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R;
}

impl AdjacencyView for &Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn with_neighbors<R>(&mut self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        f(self.neighbors(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_view_matches_neighbors() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 3)]).unwrap();
        let mut view = &g;
        assert_eq!(AdjacencyView::node_count(&view), 4);
        for v in g.nodes() {
            let from_view = view.with_neighbors(v, |ns| ns.to_vec());
            assert_eq!(from_view, g.neighbors(v));
        }
    }
}
