//! Breadth-first search and connected components.

use std::cell::RefCell;

use crate::analytics::{bfs_distance_with, bfs_distances_into, BfsScratch};
use crate::csr::{Graph, NodeId};
use crate::union_find::UnionFind;
use crate::view::AdjacencyView;

/// Distance value used for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

thread_local! {
    /// Per-thread scratch pair backing the legacy entry points, so existing
    /// callers get the allocation-free hybrid BFS without signature churn.
    /// Two scratches because bidirectional search needs one per side.
    static LEGACY_SCRATCH: RefCell<(BfsScratch, BfsScratch)> =
        RefCell::new((BfsScratch::new(), BfsScratch::new()));
}

/// Single-source BFS distances from `source`.
///
/// Unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use smallworld_graph::{bfs_distances, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0u32, 1u32), (1, 2)])?;
/// let dist = bfs_distances(&g, NodeId::new(0));
/// assert_eq!(&dist[..3], &[0, 1, 2]);
/// assert_eq!(dist[3], smallworld_graph::traversal::UNREACHABLE);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<u32> {
    LEGACY_SCRATCH.with(|cell| {
        let scratch = &mut cell.borrow_mut().0;
        bfs_distances_into(graph, source, scratch);
        scratch.to_distances()
    })
}

/// Shortest-path distance between `s` and `t`, or `None` if disconnected.
///
/// Uses bidirectional BFS, which on small-world graphs explores
/// `O(√(volume))` instead of the whole component — essential for computing
/// stretch on million-node GIRGs.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
///
/// # Examples
///
/// ```
/// use smallworld_graph::{bfs_distance, Graph, NodeId};
///
/// let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// assert_eq!(bfs_distance(&g, NodeId::new(0), NodeId::new(3)), Some(3));
/// assert_eq!(bfs_distance(&g, NodeId::new(0), NodeId::new(4)), None);
/// assert_eq!(bfs_distance(&g, NodeId::new(2), NodeId::new(2)), Some(0));
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn bfs_distance(graph: &Graph, s: NodeId, t: NodeId) -> Option<u32> {
    LEGACY_SCRATCH.with(|cell| {
        let (side_s, side_t) = &mut *cell.borrow_mut();
        bfs_distance_with(graph, s, t, side_s, side_t)
    })
}

/// Estimates the diameter (eccentricity of a far pair) by the classic
/// double-sweep heuristic: BFS from `start`, then BFS from the farthest
/// vertex found. The result is a lower bound on the true diameter and is
/// usually tight on small-world graphs.
///
/// Returns 0 for graphs with fewer than two reachable vertices.
///
/// # Panics
///
/// Panics if `start` is out of range.
///
/// # Examples
///
/// ```
/// use smallworld_graph::{traversal::double_sweep_diameter, Graph, NodeId};
///
/// let path = Graph::from_edges(5, (0u32..4).map(|i| (i, i + 1)))?;
/// assert_eq!(double_sweep_diameter(&path, NodeId::new(2)), 4);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
pub fn double_sweep_diameter(graph: &Graph, start: NodeId) -> u32 {
    let first = bfs_distances(graph, start);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| NodeId::from_index(i));
    match far {
        None => 0,
        Some(v) => bfs_distances(graph, v)
            .into_iter()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0),
    }
}

/// Connected components of a graph.
///
/// # Examples
///
/// ```
/// use smallworld_graph::{Components, Graph, NodeId};
///
/// let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (3, 4)])?;
/// let comps = Components::compute(&g);
/// assert_eq!(comps.count(), 2);
/// assert!(comps.same_component(NodeId::new(0), NodeId::new(2)));
/// assert!(!comps.same_component(NodeId::new(0), NodeId::new(3)));
/// assert_eq!(comps.largest_size(), 3);
/// # Ok::<(), smallworld_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Components {
    /// Component label per node (dense, `0..count`).
    label: Vec<u32>,
    /// Size of each component, indexed by label.
    sizes: Vec<usize>,
    /// Label of the largest component (0 if the graph is empty).
    largest: u32,
}

impl Components {
    /// Computes connected components via union–find over the edge list.
    pub fn compute(graph: &Graph) -> Self {
        Components::compute_view(&mut (&*graph))
    }

    /// Computes connected components from any [`AdjacencyView`] — the same
    /// union–find sweep [`Components::compute`] runs on a decoded
    /// [`Graph`], so the labels are identical whether the adjacency lives
    /// in RAM or streams one vertex at a time out of a mapped store.
    /// Peak memory is the union–find array, `O(n)`, independent of the
    /// edge count.
    pub fn compute_view<V: AdjacencyView>(view: &mut V) -> Self {
        let n = view.node_count();
        let mut uf = UnionFind::new(n);
        for v in 0..n {
            let u = NodeId::from_index(v);
            view.with_neighbors(u, |neighbors| {
                for &w in neighbors {
                    if u < w {
                        uf.union(u.index(), w.index());
                    }
                }
            });
        }
        // densify representative ids into labels 0..count
        let mut label = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut rep_label = vec![u32::MAX; n];
        for (v, l) in label.iter_mut().enumerate() {
            let r = uf.find(v);
            if rep_label[r] == u32::MAX {
                rep_label[r] = sizes.len() as u32;
                sizes.push(0);
            }
            *l = rep_label[r];
            sizes[rep_label[r] as usize] += 1;
        }
        Components::from_parts(label, sizes)
    }

    /// Assembles a `Components` from a dense label array and per-label
    /// sizes, recomputing the largest label exactly as [`Self::compute`]
    /// does (last label attaining the maximum size). Used by the parallel
    /// engine, whose densify scan produces the same labels as the serial
    /// one.
    pub(crate) fn from_parts(label: Vec<u32>, sizes: Vec<usize>) -> Self {
        let largest = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        Components {
            label,
            sizes,
            largest,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The component label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.label[v.index()]
    }

    /// Whether `u` and `v` lie in the same component.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u.index()] == self.label[v.index()]
    }

    /// Size of the component with the given label.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range.
    pub fn size(&self, label: u32) -> usize {
        self.sizes[label as usize]
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest_size(&self) -> usize {
        self.sizes.get(self.largest as usize).copied().unwrap_or(0)
    }

    /// Label of the largest component.
    pub fn largest_label(&self) -> u32 {
        self.largest
    }

    /// Whether `v` belongs to the largest component.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_largest(&self, v: NodeId) -> bool {
        self.label[v.index()] == self.largest
    }

    /// Fraction of nodes in the largest component (0 for an empty graph).
    pub fn giant_fraction(&self) -> f64 {
        if self.label.is_empty() {
            0.0
        } else {
            self.largest_size() as f64 / self.label.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = cycle(8);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn bfs_distance_matches_single_source() {
        let g = cycle(9);
        let d = bfs_distances(&g, NodeId::new(2));
        for v in g.nodes() {
            assert_eq!(bfs_distance(&g, NodeId::new(2), v), Some(d[v.index()]));
        }
    }

    #[test]
    fn bfs_disconnected_returns_none() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        assert_eq!(bfs_distance(&g, NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn bfs_adjacent_is_one() {
        let g = Graph::from_edges(2, [(0u32, 1u32)]).unwrap();
        assert_eq!(bfs_distance(&g, NodeId::new(0), NodeId::new(1)), Some(1));
    }

    #[test]
    fn double_sweep_on_cycle_and_path() {
        use super::double_sweep_diameter;
        let g = cycle(10);
        assert_eq!(double_sweep_diameter(&g, NodeId::new(3)), 5);
        let path = Graph::from_edges(6, (0u32..5).map(|i| (i, i + 1))).unwrap();
        assert_eq!(double_sweep_diameter(&path, NodeId::new(2)), 5);
        // isolated start
        let g = Graph::from_edges(3, [(1u32, 2u32)]).unwrap();
        assert_eq!(double_sweep_diameter(&g, NodeId::new(0)), 0);
    }

    #[test]
    fn components_of_forest() {
        let g = Graph::from_edges(7, [(0u32, 1u32), (1, 2), (3, 4), (5, 6)]).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest_size(), 3);
        assert!(c.in_largest(NodeId::new(2)));
        assert!((c.giant_fraction() - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(c.size(c.largest_label()), 3);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_size(), 0);
        assert_eq!(c.giant_fraction(), 0.0);
    }

    #[test]
    fn all_isolated() {
        let g = Graph::from_edges(3, Vec::<(u32, u32)>::new()).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest_size(), 1);
    }

    proptest! {
        #[test]
        fn prop_bidirectional_matches_unidirectional(
            edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
            s in 0u32..40,
            t in 0u32..40,
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(40, edges).unwrap();
            let d = bfs_distances(&g, NodeId::new(s));
            let expected = if d[t as usize] == UNREACHABLE { None } else { Some(d[t as usize]) };
            prop_assert_eq!(bfs_distance(&g, NodeId::new(s), NodeId::new(t)), expected);
        }

        #[test]
        fn prop_components_agree_with_bfs(
            edges in prop::collection::vec((0u32..30, 0u32..30), 0..60),
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let g = Graph::from_edges(30, edges).unwrap();
            let c = Components::compute(&g);
            let d = bfs_distances(&g, NodeId::new(0));
            for v in g.nodes() {
                let reachable = d[v.index()] != UNREACHABLE;
                prop_assert_eq!(reachable, c.same_component(NodeId::new(0), v));
            }
            // sizes sum to n
            let total: usize = (0..c.count() as u32).map(|l| c.size(l)).sum();
            prop_assert_eq!(total, 30);
        }
    }
}
