//! Vertex relabelings.
//!
//! A [`Permutation`] is a bijection on vertex ids with both directions
//! materialized, so callers can relabel a graph for cache locality (e.g.
//! Morton order, see `smallworld_geometry::morton::point_code`) while still
//! reporting results — route paths, artifacts — in the original id space.
//!
//! # Examples
//!
//! ```
//! use smallworld_graph::{NodeId, Permutation};
//!
//! // sort three vertices by an external key: vertex 2 has the smallest key
//! let perm = Permutation::from_sort_keys(&[30, 20, 10]);
//! assert_eq!(perm.forward(NodeId::new(2)), NodeId::new(0));
//! assert_eq!(perm.backward(NodeId::new(0)), NodeId::new(2));
//! ```

use crate::csr::NodeId;

/// A bijection `old id -> new id` on `0..len`, with the inverse map
/// materialized for O(1) lookups in both directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `forward[old] = new`.
    forward: Vec<u32>,
    /// `inverse[new] = old`.
    inverse: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` vertices.
    pub fn identity(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        let forward: Vec<u32> = (0..n as u32).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Builds a permutation from its forward map (`forward[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a bijection on `0..forward.len()`.
    pub fn from_forward(forward: Vec<u32>) -> Self {
        let n = forward.len();
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        let mut inverse = vec![u32::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(
                (new as usize) < n,
                "forward map sends {old} to {new}, outside 0..{n}"
            );
            assert!(
                inverse[new as usize] == u32::MAX,
                "forward map is not injective: {new} has two preimages"
            );
            inverse[new as usize] = old as u32;
        }
        Permutation { forward, inverse }
    }

    /// The permutation that sorts vertices by `(keys[old], old)`: the vertex
    /// with the smallest key receives the new id 0, ties broken by original
    /// id so the result is fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len()` exceeds `u32::MAX` vertices.
    pub fn from_sort_keys(keys: &[u64]) -> Self {
        let n = keys.len();
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&old| (keys[old as usize], old));
        let mut forward = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            forward[old as usize] = new as u32;
        }
        Permutation {
            forward,
            inverse: order,
        }
    }

    /// Number of vertices the permutation acts on.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation acts on zero vertices.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an original id to its relabeled id.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    #[inline]
    pub fn forward(&self, old: NodeId) -> NodeId {
        NodeId::new(self.forward[old.index()])
    }

    /// Maps a relabeled id back to its original id.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of range.
    #[inline]
    pub fn backward(&self, new: NodeId) -> NodeId {
        NodeId::new(self.inverse[new.index()])
    }

    /// Reorders per-vertex data into the relabeled id space:
    /// `result[forward(v)] = data[v]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`Self::len`].
    pub fn apply_slice<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "data length mismatch");
        self.inverse
            .iter()
            .map(|&old| data[old as usize])
            .collect()
    }

    /// Maps a path of relabeled ids back to original ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn path_to_original(&self, path: &[NodeId]) -> Vec<NodeId> {
        path.iter().map(|&v| self.backward(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;
    use proptest::prelude::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.forward(NodeId::new(i)), NodeId::new(i));
            assert_eq!(p.backward(NodeId::new(i)), NodeId::new(i));
        }
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert!(Permutation::identity(0).is_empty());
    }

    #[test]
    fn from_sort_keys_sorts_with_id_tiebreak() {
        let p = Permutation::from_sort_keys(&[7, 3, 7, 1]);
        // sorted order: id 3 (key 1), id 1 (key 3), id 0 (key 7), id 2 (key 7)
        assert_eq!(p.forward(NodeId::new(3)), NodeId::new(0));
        assert_eq!(p.forward(NodeId::new(1)), NodeId::new(1));
        assert_eq!(p.forward(NodeId::new(0)), NodeId::new(2));
        assert_eq!(p.forward(NodeId::new(2)), NodeId::new(3));
    }

    #[test]
    fn apply_slice_moves_data_to_new_ids() {
        let p = Permutation::from_sort_keys(&[20, 10, 30]);
        assert_eq!(p.apply_slice(&['a', 'b', 'c']), vec!['b', 'a', 'c']);
    }

    #[test]
    fn path_to_original_inverts_forward() {
        let p = Permutation::from_sort_keys(&[5, 4, 3, 2]);
        let original: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let relabeled: Vec<NodeId> = original.iter().map(|&v| p.forward(v)).collect();
        assert_eq!(p.path_to_original(&relabeled), original);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn from_forward_rejects_duplicates() {
        let _ = Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn from_forward_rejects_out_of_range() {
        let _ = Permutation::from_forward(vec![0, 3]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut builder = Graph::builder(4);
        builder.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        builder.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        builder.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let g = builder.build();
        let perm = Permutation::from_sort_keys(&[3, 2, 1, 0]); // reverses ids
        let h = g.relabel(&perm);
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), g.edge_count());
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                assert!(h.has_edge(perm.forward(v), perm.forward(u)));
            }
        }
    }

    #[test]
    fn relabel_identity_is_noop() {
        let mut builder = Graph::builder(3);
        builder.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        let g = builder.build();
        assert_eq!(g.relabel(&Permutation::identity(3)), g);
    }

    proptest! {
        #[test]
        fn prop_from_forward_roundtrips(keys in proptest::collection::vec(0u64..100, 1..40)) {
            let p = Permutation::from_sort_keys(&keys);
            for old in 0..keys.len() {
                let old = NodeId::from_index(old);
                prop_assert_eq!(p.backward(p.forward(old)), old);
            }
        }

        #[test]
        fn prop_relabeled_graph_is_isomorphic(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            keys in proptest::collection::vec(0u64..1000, 20),
        ) {
            let mut builder = Graph::builder(20);
            for &(a, b) in &edges {
                if a != b {
                    builder.add_edge(NodeId::new(a), NodeId::new(b)).unwrap();
                }
            }
            let g = builder.build();
            let perm = Permutation::from_sort_keys(&keys);
            let h = g.relabel(&perm);
            prop_assert_eq!(h.edge_count(), g.edge_count());
            for v in g.nodes() {
                prop_assert_eq!(h.degree(perm.forward(v)), g.degree(v));
                for &u in g.neighbors(v) {
                    prop_assert!(h.has_edge(perm.forward(v), perm.forward(u)));
                }
            }
            // relabeling back with the inverse recovers the original graph
            let inv = Permutation::from_forward(
                (0..20).map(|i| perm.backward(NodeId::new(i)).raw()).collect(),
            );
            prop_assert_eq!(h.relabel(&inv), g);
        }
    }
}
