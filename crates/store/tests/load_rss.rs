//! Regression pin for the `open_buffered` double-copy: loading through the
//! buffered fallback must not hold more than one copy of the file bytes.
//!
//! `VmHWM` is a process-wide high-water mark, so each load strategy runs in
//! its own subprocess (this test binary re-executed with `--exact` on the
//! gated child test below). The assertion is differential: the buffered
//! child's peak RSS may exceed the mmap child's by allocator noise only —
//! both end up with one resident copy of the file (heap buffer vs touched
//! mapping) plus the decoded CSR — whereas the old `read` + copy-into-owned
//! path held two and would trip the gate by a full file size.

use std::process::Command;

use smallworld_graph::Graph;
use smallworld_store::{write_graph_swg, GraphStore};

const MODE_VAR: &str = "SMALLWORLD_LOAD_RSS_MODE";
const PATH_VAR: &str = "SMALLWORLD_LOAD_RSS_PATH";

/// Peak resident set of this process, from `/proc/self/status` (`VmHWM`),
/// or `None` where procfs is unavailable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A deterministic graph big enough that an extra copy of the file bytes
/// dwarfs allocator noise, cheap enough to build in a debug test run:
/// pseudo-random neighbor ids give multi-byte deltas, so the store stays
/// several MiB.
fn large_graph() -> Graph {
    let n: u32 = 100_000;
    let degree: u32 = 40;
    let edges: std::collections::BTreeSet<(u32, u32)> = (0..n)
        .flat_map(|v| {
            (1..=degree).map(move |k| {
                let w = (v.wrapping_mul(2_654_435_761).wrapping_add(k * 40_503)) % n;
                (v.min(w), v.max(w))
            })
        })
        .filter(|&(a, b)| a != b)
        .collect();
    Graph::from_edges(n as usize, edges).expect("sanitized edges")
}

/// The subprocess body: gated on [`MODE_VAR`], a no-op in normal runs.
/// Loads the store named by [`PATH_VAR`] with the requested strategy and
/// prints its peak RSS for the parent to parse.
#[test]
fn load_rss_child() {
    let Ok(mode) = std::env::var(MODE_VAR) else {
        return;
    };
    let path = std::env::var(PATH_VAR).expect("parent sets the store path");
    let store = match mode.as_str() {
        "buffered" => GraphStore::open_buffered(&path).expect("store opens buffered"),
        "mapped" => GraphStore::open(&path).expect("store opens mapped"),
        other => panic!("unknown load mode {other:?}"),
    };
    let graph = store.load_graph().expect("store decodes");
    assert!(graph.edge_count() > 0, "decoded graph must not be empty");
    println!("PEAK_RSS_BYTES={}", peak_rss_bytes().unwrap_or(0));
}

fn run_child(mode: &str, path: &std::path::Path) -> u64 {
    let exe = std::env::current_exe().expect("own executable path");
    let out = Command::new(exe)
        .args(["--exact", "load_rss_child", "--nocapture"])
        .env(MODE_VAR, mode)
        .env(PATH_VAR, path)
        .output()
        .expect("child spawns");
    assert!(
        out.status.success(),
        "{mode} child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest writes its own "test ... " prefix on the same line, so look
    // for the marker anywhere
    stdout
        .lines()
        .find_map(|l| l.split("PEAK_RSS_BYTES=").nth(1))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{mode} child printed no peak:\n{stdout}"))
}

#[test]
fn buffered_load_holds_a_single_copy_of_the_file() {
    if std::env::var(MODE_VAR).is_ok() {
        // we ARE a child: load_rss_child does the work in this process
        return;
    }
    if peak_rss_bytes().is_none() {
        eprintln!("skipping: no VmHWM on this platform");
        return;
    }
    let graph = large_graph();
    let path = std::env::temp_dir().join(format!(
        "smallworld-store-load-rss-{}.swg",
        std::process::id()
    ));
    write_graph_swg(&graph, &path, 1).expect("writable temp dir");
    let file_bytes = std::fs::metadata(&path).expect("own file").len();
    assert!(
        file_bytes > 4 * 1024 * 1024,
        "store must be large enough to dominate allocator noise, got {file_bytes} bytes"
    );

    let mapped_peak = run_child("mapped", &path);
    let buffered_peak = run_child("buffered", &path);
    std::fs::remove_file(&path).ok();
    if mapped_peak == 0 || buffered_peak == 0 {
        eprintln!("skipping: children could not report VmHWM");
        return;
    }

    let slack = file_bytes * 35 / 100 + 3 * 1024 * 1024;
    let excess = buffered_peak.saturating_sub(mapped_peak);
    assert!(
        excess <= slack,
        "buffered load peaked {excess} bytes above the mmap load \
         (file is {file_bytes} bytes, allowance {slack}): a second copy of \
         the file bytes is being held"
    );
}
