//! Decode-free access is invisible: adjacency read through the mapped
//! view (on-demand per-vertex decode, with or without the LRU cursor)
//! equals the fully decoded graph on arbitrary inputs, greedy routes over
//! the mmap are bitwise those of the in-memory `GreedyRouter`, shard-local
//! routing with explicit handoff reproduces the global walk at every shard
//! count, and truncated files can never reach the mapped path.
//!
//! This is what licenses `girg_gen --mapped` and `bench_store`'s
//! mapped-vs-decoded throughput comparison: the mapped numbers are
//! measurements of the *same* computation, not of an approximation.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smallworld_core::greedy::DEFAULT_MAX_STEPS;
use smallworld_core::{
    route_sharded, GirgObjective, GreedyRouter, Objective, PackedGirgObjective, RouteRecord,
    Router, ShardSlice, ViewRouter,
};
use smallworld_graph::{AdjacencyView, Graph, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_store::{write_graph_swg, GraphStore, MappedGraph};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "smallworld-store-mapped-{}-{name}.swg",
        std::process::id()
    ))
}

/// Deterministic s–t pairs spread over the vertex range.
fn trial_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| {
            let s = (i * 131) % n;
            let t = (i * 197 + n / 2) % n;
            (NodeId::new(s as u32), NodeId::new(t as u32))
        })
        .filter(|(s, t)| s != t)
        .collect()
}

/// Neighbor lists of `view` must equal the decoded graph's, vertex for
/// vertex, regardless of which decode path serves them.
fn assert_view_matches<V: AdjacencyView>(view: &mut V, graph: &Graph) {
    assert_eq!(view.node_count(), graph.node_count());
    for v in graph.nodes() {
        let from_view = view.with_neighbors(v, |ns| ns.to_vec());
        assert_eq!(from_view, graph.neighbors(v), "vertex {v:?}");
    }
}

fn check_mapped_decode_matches(tag: &str, n: usize, raw_edges: &[(u32, u32)]) {
    let edges: std::collections::BTreeSet<(u32, u32)> = raw_edges
        .iter()
        .map(|&(a, b)| (a % n as u32, b % n as u32))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    let graph = Graph::from_edges(n, edges).expect("sanitized edges");
    let path = temp_path(tag);
    write_graph_swg(&graph, &path, 1).expect("write");
    let store = GraphStore::open(&path).expect("reopen");
    let mapped: MappedGraph<'_> = store.mapped_graph().expect("own file maps");

    assert_eq!(mapped.node_count(), graph.node_count());
    assert_eq!(mapped.target_count(), 2 * graph.edge_count());
    assert_eq!(mapped.edge_count(), graph.edge_count());
    assert_eq!(mapped.decode_full().expect("own encoding decodes"), graph);

    // per-vertex on-demand decode, without any cursor cache
    let mut out = Vec::new();
    for v in 0..graph.node_count() {
        out.clear();
        mapped.decode_into(v, &mut out).expect("vertex decodes");
        let expect: Vec<u32> = graph
            .neighbors(NodeId::from_index(v))
            .iter()
            .map(|t| t.raw())
            .collect();
        assert_eq!(out, expect, "vertex {v}");
    }

    // the LRU cursor (revisit every vertex twice so the cache both fills
    // and serves hits) and the eager A/B cursor
    let mut cursor = mapped.cursor();
    assert_view_matches(&mut cursor, &graph);
    assert_view_matches(&mut cursor, &graph);
    assert_eq!(cursor.hits() + cursor.misses(), 2 * graph.node_count() as u64);
    let mut eager = mapped.cursor_eager().expect("own encoding decodes");
    assert_view_matches(&mut eager, &graph);
    assert_eq!(eager.misses(), 0, "eager cursor never decodes on demand");

    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On-demand decode through every mapped access path equals the full
    /// decode on arbitrary graphs.
    #[test]
    fn prop_mapped_decode_matches_full_decode(
        n in 1usize..60,
        raw_edges in vec((0u32..60, 0u32..60), 0..240),
    ) {
        check_mapped_decode_matches("prop", n, &raw_edges);
    }
}

/// Dense and empty corners the proptest generator rarely lands on.
#[test]
fn mapped_decode_handles_degenerate_graphs() {
    check_mapped_decode_matches("empty", 5, &[]);
    let complete: Vec<(u32, u32)> = (0..8u32)
        .flat_map(|a| (0..8u32).map(move |b| (a, b)))
        .collect();
    check_mapped_decode_matches("complete", 8, &complete);
}

#[test]
fn mapped_routes_are_bitwise_identical() {
    let mut rng = StdRng::seed_from_u64(99);
    let girg: Girg<2> = GirgBuilder::new(2_000).sample(&mut rng).unwrap();
    let girg = girg.relabel(&girg.morton_permutation());
    let pairs = trial_pairs(girg.node_count(), 300);

    let reference: Vec<RouteRecord> = {
        let router = GreedyRouter::new();
        let objective = GirgObjective::new(&girg);
        pairs
            .iter()
            .map(|&(s, t)| router.route_quiet(girg.graph(), &objective, s, t))
            .collect()
    };
    let delivered = reference
        .iter()
        .filter(|r| r.outcome == smallworld_core::RouteOutcome::Delivered)
        .count();
    assert!(delivered > 0, "trial set must contain delivered routes");

    let path = temp_path("routes");
    smallworld_store::save_girg(&girg, &path, 1).unwrap();
    let store = GraphStore::open(&path).unwrap();
    let mapped = store.mapped_graph().unwrap();
    let positions = store.packed_positions().unwrap();
    let weights = store.packed_weights().unwrap();
    let (params, _) = store.params().unwrap();
    let packed =
        PackedGirgObjective::<2>::new(&positions, &weights, params.wmin * params.intensity);
    let router = ViewRouter::new();

    // decode-free over the LRU cursor, the eager cursor, and — pinning the
    // view router itself against the reference loop — the decoded graph
    let mut lazy = mapped.cursor();
    let mut eager = mapped.cursor_eager().unwrap();
    let mut decoded_view = girg.graph();
    for (i, &(s, t)) in pairs.iter().enumerate() {
        let kernel = packed.prepare(t);
        let via_lazy = router.route_view_quiet(&mut lazy, &kernel, s);
        let via_eager = router.route_view_quiet(&mut eager, &kernel, s);
        let via_decoded = router.route_view_quiet(&mut decoded_view, &kernel, s);
        assert_eq!(via_lazy, reference[i], "lazy cursor, pair {i}");
        assert_eq!(via_eager, reference[i], "eager cursor, pair {i}");
        assert_eq!(via_decoded, reference[i], "decoded view, pair {i}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_handoff_routing_matches_global_at_every_shard_count() {
    let mut rng = StdRng::seed_from_u64(21);
    let girg: Girg<2> = GirgBuilder::new(1_600).sample(&mut rng).unwrap();
    let girg = girg.relabel(&girg.morton_permutation());
    let pairs = trial_pairs(girg.node_count(), 200);

    let reference: Vec<RouteRecord> = {
        let router = GreedyRouter::new();
        let objective = GirgObjective::new(&girg);
        pairs
            .iter()
            .map(|&(s, t)| router.route_quiet(girg.graph(), &objective, s, t))
            .collect()
    };

    for shard_count in [1usize, 2, 4, 8] {
        let path = temp_path(&format!("handoff-{shard_count}"));
        smallworld_store::save_girg(&girg, &path, shard_count).unwrap();
        let store = GraphStore::open(&path).unwrap();
        let positions = store.packed_positions().unwrap();
        let weights = store.packed_weights().unwrap();
        let (params, _) = store.params().unwrap();
        let packed =
            PackedGirgObjective::<2>::new(&positions, &weights, params.wmin * params.intensity);

        // single-shard stores carry no SHARDS section: the whole graph is
        // one slice with an empty boundary
        let whole;
        let sharded;
        let locals: Vec<Graph>;
        let mut slices: Vec<ShardSlice<'_, &Graph>> = if shard_count == 1 {
            whole = store.load_graph().unwrap();
            vec![ShardSlice {
                start: 0,
                end: whole.node_count() as u32,
                local: &whole,
                boundary: &[],
            }]
        } else {
            sharded = store.load_shards().unwrap();
            locals = sharded
                .shards()
                .iter()
                .map(|s| s.local_graph().unwrap())
                .collect();
            sharded
                .shards()
                .iter()
                .zip(&locals)
                .map(|(s, local)| ShardSlice {
                    start: s.spec().nodes.start,
                    end: s.spec().nodes.end,
                    local,
                    boundary: s.boundary(),
                })
                .collect()
        };

        let mut handoffs = 0u64;
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let kernel = packed.prepare(t);
            let route = route_sharded(&mut slices, &kernel, s, DEFAULT_MAX_STEPS);
            assert_eq!(route.record, reference[i], "shards={shard_count}, pair {i}");
            handoffs += route.handoffs;
        }
        if shard_count == 1 {
            assert_eq!(handoffs, 0, "a single shard has no boundary to cross");
        } else {
            assert!(
                handoffs > 0,
                "shards={shard_count}: routes never crossed a boundary"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn truncated_files_never_reach_the_mapped_path() {
    let mut rng = StdRng::seed_from_u64(5);
    let girg: Girg<2> = GirgBuilder::new(300).sample(&mut rng).unwrap();
    let path = temp_path("truncate");
    smallworld_store::save_girg(&girg, &path, 2).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // a prefix must fail before a MappedGraph can be constructed — either
    // the open itself (header/section-table/checksum) or the mapped view's
    // offsets validation — unless it only sheds trailing zero padding, in
    // which case the decoded adjacency must still be exactly the original
    let cut = temp_path("truncate-cut");
    let mut lengths: Vec<usize> = (1..16).map(|k| bytes.len() * k / 16).collect();
    lengths.push(bytes.len() - 1);
    let mut rejected = 0;
    for len in lengths {
        std::fs::write(&cut, &bytes[..len]).unwrap();
        match GraphStore::open(&cut).and_then(|s| s.mapped_graph().and_then(|m| m.decode_full())) {
            Ok(graph) => assert_eq!(
                &graph,
                girg.graph(),
                "prefix of {len} bytes changed the mapped adjacency"
            ),
            Err(e) => {
                let _typed: smallworld_store::StoreError = e;
                rejected += 1;
            }
        }
    }
    assert!(rejected >= 14, "almost every prefix must be rejected outright");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut).ok();
}
