//! Property suite for the store's codec and container layers.
//!
//! Three contracts:
//!
//! 1. **The varint/delta codec is lossless** on arbitrary value sets and on
//!    sorted lists with adversarial gap distributions (dense runs, gaps
//!    straddling every LEB128 length boundary, near-`u32::MAX` jumps).
//! 2. **A written store reproduces the graph bit for bit** — sampling a
//!    GIRG, writing `.swg`, reopening, and decoding yields the identical
//!    adjacency, geometry, and parameters, at any shard count.
//! 3. **Corruption never panics and is never silent** — flipping any
//!    payload byte of a written file either fails the open with a typed
//!    error or (for bytes in inter-section padding) leaves the loaded
//!    graph identical.
//!
//! The vendored `proptest!` macro is a recursive muncher, so the checks
//! live in plain `fn`s (failures panic via `assert!`) and the macro
//! clauses stay one-liners.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::ProptestConfig;
use proptest::proptest;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_store::{varint, CompressedCsr, GraphStore, ShardedStore};

fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "smallworld-store-props-{}-{tag}-{seq}.swg",
        std::process::id()
    ))
}

fn check_varint_roundtrip(values: &[u64]) {
    let mut buf = Vec::new();
    for &v in values {
        varint::write_u64(v, &mut buf);
    }
    let mut at = 0usize;
    for &v in values {
        let (decoded, used) = varint::read_u64(&buf[at..]).expect("valid stream");
        assert_eq!(decoded, v);
        assert!((1..=varint::MAX_LEN).contains(&used));
        at += used;
    }
    assert_eq!(at, buf.len(), "no trailing bytes");
}

/// Builds a strictly increasing list from raw draws: each draw contributes
/// a gap whose magnitude class cycles through dense (1–2), medium, and the
/// LEB128 length boundaries (127/128, 16383/16384, …), which is where an
/// off-by-one in the continuation bit would hide.
fn gaps_to_list(draws: &[u32]) -> Vec<u32> {
    let mut list = Vec::with_capacity(draws.len());
    let mut cur: u64 = u64::from(draws.first().copied().unwrap_or(0) % 4);
    for (i, &d) in draws.iter().enumerate() {
        let gap: u64 = match i % 5 {
            0 => 1 + u64::from(d % 2),
            1 => 1 + u64::from(d % 1_000),
            2 => 126 + u64::from(d % 5),    // straddle the 1/2-byte boundary
            3 => 16_382 + u64::from(d % 5), // straddle the 2/3-byte boundary
            _ => 1 + u64::from(d % (1 << 24)),
        };
        if i > 0 {
            cur += gap;
        }
        if cur > u64::from(u32::MAX) {
            break;
        }
        list.push(cur as u32);
    }
    list
}

fn check_sorted_codec_roundtrip(list: &[u32]) {
    let mut buf = Vec::new();
    varint::encode_sorted(list, &mut buf);
    let mut out = Vec::new();
    varint::decode_sorted(&buf, &mut out).expect("own encoding decodes");
    assert_eq!(out, list);
    if !list.is_empty() {
        // dropping the final byte either breaks a multi-byte varint (error)
        // or removes a complete 1-byte entry (the exact prefix) — it can
        // never decode to anything else
        let mut short = Vec::new();
        match varint::decode_sorted(&buf[..buf.len() - 1], &mut short) {
            Err(_) => {}
            Ok(()) => assert_eq!(short, list[..list.len() - 1]),
        }
    }
}

fn check_graph_roundtrip(n: usize, raw_edges: &[(u32, u32)]) {
    let edges: std::collections::BTreeSet<(u32, u32)> = raw_edges
        .iter()
        .map(|&(a, b)| (a % n as u32, b % n as u32))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    let graph = smallworld_graph::Graph::from_edges(n, edges).expect("sanitized edges");
    let compressed = CompressedCsr::from_graph(&graph);
    assert_eq!(compressed.decode().expect("own encoding decodes"), graph);
    for k in [1usize, 3] {
        let sharded = ShardedStore::partition(&graph, k);
        assert_eq!(sharded.assemble().expect("own shards assemble"), graph, "k={k}");
    }
}

fn check_girg_store_roundtrip(seed: u64, n: u64, shards: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let girg: Girg<2> = GirgBuilder::new(n).sample(&mut rng).expect("valid params");
    let path = temp_path("girg");
    smallworld_store::save_girg(&girg, &path, shards).expect("write");
    let store = GraphStore::open(&path).expect("reopen");
    let back: Girg<2> = store.load_girg().expect("load");
    assert_eq!(back.graph(), girg.graph());
    assert_eq!(back.weights(), girg.weights());
    assert_eq!(back.params(), girg.params());
    for (a, b) in back.positions().iter().zip(girg.positions()) {
        assert_eq!(a.coords(), b.coords());
    }
    if shards > 1 {
        let sharded = store.load_shards().expect("shards stored");
        assert_eq!(&sharded.assemble().expect("assemble"), girg.graph());
    }
    std::fs::remove_file(&path).ok();
}

fn check_corruption_is_detected_or_harmless(seed: u64, flip_at: usize, xor: u8) {
    let mut rng = StdRng::seed_from_u64(seed);
    let girg: Girg<2> = GirgBuilder::new(120).sample(&mut rng).expect("valid params");
    let path = temp_path("flip");
    smallworld_store::save_girg(&girg, &path, 2).expect("write");
    let mut bytes = std::fs::read(&path).expect("read back");
    let at = flip_at % bytes.len();
    bytes[at] ^= xor;
    std::fs::write(&path, &bytes).expect("rewrite");
    match GraphStore::open(&path).and_then(|s| s.load_girg::<2>()) {
        // only a flip inside zero padding can go unnoticed, and then the
        // content must be untouched
        Ok(back) => assert_eq!(back.graph(), girg.graph(), "flip at {at} changed the graph"),
        Err(e) => {
            let _typed: smallworld_store::StoreError = e;
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_varint_roundtrips_arbitrary_values(values in vec(0u64..=u64::MAX, 0..200)) {
        check_varint_roundtrip(&values);
    }

    #[test]
    fn prop_sorted_codec_roundtrips_adversarial_gaps(draws in vec(0u32..=u32::MAX, 0..300)) {
        check_sorted_codec_roundtrip(&gaps_to_list(&draws));
    }

    #[test]
    fn prop_compressed_csr_and_shards_roundtrip_random_graphs(
        n in 2usize..80,
        edges in vec((0u32..1000, 0u32..1000), 0..300),
    ) {
        check_graph_roundtrip(n, &edges);
    }

    #[test]
    fn prop_written_store_reproduces_the_girg(seed in 0u64..1 << 32, shards in 1usize..5) {
        check_girg_store_roundtrip(seed, 150, shards);
    }

    #[test]
    fn prop_byte_flips_are_detected_or_harmless(
        seed in 0u64..1 << 16,
        flip_at in 0usize..1 << 20,
        xor in 1u8..=255,
    ) {
        check_corruption_is_detected_or_harmless(seed, flip_at, xor);
    }
}

#[test]
fn varint_length_boundaries_are_exact() {
    // each LEB128 length step: 2^(7k) − 1 encodes in k bytes, 2^(7k) in k+1
    for k in 1..=9usize {
        let boundary = 1u64 << (7 * k);
        let mut buf = Vec::new();
        varint::write_u64(boundary - 1, &mut buf);
        assert_eq!(buf.len(), k, "2^{}-1", 7 * k);
        buf.clear();
        varint::write_u64(boundary, &mut buf);
        assert_eq!(buf.len(), k + 1, "2^{}", 7 * k);
    }
}
