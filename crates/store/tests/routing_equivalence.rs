//! Greedy routes on a store-loaded graph are bitwise those of the freshly
//! sampled graph — outcome and full hop path — across every scoring path:
//! the point-based objective, the packed objective scoring straight off the
//! store's flat geometry sections, and the edge-packed routing index, on
//! both the whole loaded graph and the shard-assembled one.
//!
//! This is the load-path extension of `smallworld-core`'s
//! `kernel_equivalence` suite: it pins that persistence is invisible to
//! the routing layer, which is what licenses `girg_gen --load` (and CI's
//! generate-once/load-twice determinism check) in the first place.

use rand::rngs::StdRng;
use rand::SeedableRng;
use smallworld_core::{
    GirgObjective, GreedyRouter, Objective, PackedGirgObjective, RouteRecord, RoutingIndex,
};
use smallworld_core::{IndexedGirgObjective, Router};
use smallworld_graph::{Graph, NodeId};
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_store::GraphStore;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "smallworld-store-routes-{}-{name}.swg",
        std::process::id()
    ))
}

/// Deterministic s–t pairs spread over the vertex range.
fn trial_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| {
            let s = (i * 131) % n;
            let t = (i * 197 + n / 2) % n;
            (NodeId::new(s as u32), NodeId::new(t as u32))
        })
        .filter(|(s, t)| s != t)
        .collect()
}

fn routes<O: Objective>(graph: &Graph, objective: &O, pairs: &[(NodeId, NodeId)]) -> Vec<RouteRecord> {
    let router = GreedyRouter::new();
    pairs
        .iter()
        .map(|&(s, t)| router.route_quiet(graph, objective, s, t))
        .collect()
}

#[test]
fn store_loaded_routes_are_bitwise_identical() {
    let mut rng = StdRng::seed_from_u64(99);
    let girg: Girg<2> = GirgBuilder::new(2_000).sample(&mut rng).unwrap();
    let n = girg.node_count();
    let pairs = trial_pairs(n, 300);

    // reference: routes on the freshly sampled graph
    let reference = routes(girg.graph(), &GirgObjective::new(&girg), &pairs);
    let delivered = reference
        .iter()
        .filter(|r| r.outcome == smallworld_core::RouteOutcome::Delivered)
        .count();
    assert!(delivered > 0, "trial set must contain delivered routes");

    let path = temp_path("equiv");
    smallworld_store::save_girg(&girg, &path, 4).unwrap();
    let store = GraphStore::open(&path).unwrap();

    // 1. loaded GIRG, point-based objective
    let loaded: Girg<2> = store.load_girg().unwrap();
    assert_eq!(routes(loaded.graph(), &GirgObjective::new(&loaded), &pairs), reference);

    // 2. loaded graph + packed objective scoring off the store's flat
    //    geometry sections (no Point vectors materialized)
    let graph = store.load_graph().unwrap();
    let positions = store.packed_positions().unwrap();
    let weights = store.packed_weights().unwrap();
    let (params, _) = store.params().unwrap();
    let packed =
        PackedGirgObjective::<2>::new(&positions, &weights, params.wmin * params.intensity);
    assert_eq!(routes(&graph, &packed, &pairs), reference);

    // 3. loaded GIRG behind the edge-packed routing index
    let index = RoutingIndex::for_girg(&loaded);
    let indexed = IndexedGirgObjective::new(GirgObjective::new(&loaded), &index);
    assert_eq!(routes(loaded.graph(), &indexed, &pairs), reference);

    // 4. shard-assembled graph, both objectives
    let assembled = store.load_shards().unwrap().assemble().unwrap();
    assert_eq!(assembled, *girg.graph());
    assert_eq!(routes(&assembled, &GirgObjective::new(&loaded), &pairs), reference);
    assert_eq!(routes(&assembled, &packed, &pairs), reference);

    std::fs::remove_file(&path).ok();
}

#[test]
fn per_shard_local_routing_matches_the_global_subgraph() {
    // routes confined to one shard's local graph agree with the same walk
    // on the global graph as long as it never leaves the shard: the local
    // CSR is the induced subgraph, relabeled by a fixed offset
    let mut rng = StdRng::seed_from_u64(7);
    let girg: Girg<2> = GirgBuilder::new(1_200).sample(&mut rng).unwrap();
    let path = temp_path("local");
    smallworld_store::save_girg(&girg, &path, 3).unwrap();
    let store = GraphStore::open(&path).unwrap();
    let sharded = store.load_shards().unwrap();
    let mut nonempty = 0;
    for shard in sharded.shards() {
        if shard.is_empty() {
            continue;
        }
        nonempty += 1;
        let local = shard.local_graph().unwrap();
        let start = shard.spec().nodes.start;
        assert_eq!(local.node_count(), shard.len());
        for v in 0..local.node_count() {
            let global_v = NodeId::new(v as u32 + start);
            // local adjacency == global adjacency restricted to the shard
            let global_local: Vec<u32> = girg
                .graph()
                .neighbors(global_v)
                .iter()
                .map(|t| t.raw())
                .filter(|t| shard.spec().nodes.contains(t))
                .map(|t| t - start)
                .collect();
            let local_list: Vec<u32> = local
                .neighbors(NodeId::new(v as u32))
                .iter()
                .map(|t| t.raw())
                .collect();
            assert_eq!(local_list, global_local);
        }
    }
    assert!(nonempty >= 2, "partition must produce several shards");
    std::fs::remove_file(&path).ok();
}
