//! Adversarial-input suite for the `.swg` container: malformed, truncated,
//! and checksum-corrupted files must be rejected with typed errors — never
//! a panic, never a silently wrong graph (the on-disk mirror of
//! `smallworld-models`' `garbage_inputs_are_rejected` tests for the text
//! format).

use rand::rngs::StdRng;
use rand::SeedableRng;
use smallworld_models::girg::{Girg, GirgBuilder};
use smallworld_models::{GraphModel, KleinbergLatticeBuilder};
use smallworld_store::{
    write_graph_swg, GraphStore, StoreError, MAGIC,
};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "smallworld-store-reject-{}-{name}.swg",
        std::process::id()
    ))
}

fn sample_girg(seed: u64) -> Girg<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    GirgBuilder::new(300)
        .beta(2.6)
        .lambda(0.5)
        .sample(&mut rng)
        .unwrap()
}

fn written_girg_bytes(seed: u64, shards: usize) -> (Girg<2>, Vec<u8>) {
    let girg = sample_girg(seed);
    let path = temp_path(&format!("girg-{seed}-{shards}"));
    smallworld_store::save_girg(&girg, &path, shards).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (girg, bytes)
}

fn open_bytes(bytes: &[u8], name: &str) -> Result<GraphStore, StoreError> {
    let path = temp_path(name);
    std::fs::write(&path, bytes).unwrap();
    let result = GraphStore::open(&path);
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn kleinberg_graph_roundtrips_through_the_store() {
    // bare graphs (no geometry) use the same container with dim = 0
    let lattice = KleinbergLatticeBuilder::new(20).sample_seeded(5).unwrap();
    let path = temp_path("kleinberg");
    let stats = write_graph_swg(lattice.graph(), &path, 3).unwrap();
    assert!(stats.compressed_csr_bytes < stats.raw_csr_bytes);
    let store = GraphStore::open(&path).unwrap();
    assert_eq!(&store.load_graph().unwrap(), lattice.graph());
    assert!(!store.has_geometry());
    let sharded = store.load_shards().unwrap();
    assert_eq!(&sharded.assemble().unwrap(), lattice.graph());
    // a bare graph cannot be loaded as a GIRG
    assert!(matches!(
        store.load_girg::<2>(),
        Err(StoreError::DimensionMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_inputs_are_rejected() {
    assert!(matches!(
        open_bytes(b"", "empty"),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        open_bytes(b"not a store file at all", "ascii"),
        Err(StoreError::BadMagic)
    ));
    assert!(matches!(
        open_bytes(&[0u8; 4096], "zeros"),
        Err(StoreError::BadMagic)
    ));
    // correct magic, garbage rest
    let mut bytes = vec![0u8; 4096];
    bytes[..8].copy_from_slice(&MAGIC);
    let result = open_bytes(&bytes, "magic-only");
    assert!(result.is_err(), "magic alone must not open");
}

#[test]
fn unsupported_version_is_rejected_by_number() {
    let (_, mut bytes) = written_girg_bytes(1, 1);
    // the version field sits right after the 8-byte magic
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match open_bytes(&bytes, "version") {
        Err(StoreError::UnsupportedVersion(v)) => assert_eq!(v, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_files_are_rejected() {
    let (_, bytes) = written_girg_bytes(2, 2);
    // every short prefix: dense coverage of the header and section table,
    // then page-boundary and mid-section cuts across the payload
    let mut cuts: Vec<usize> = (0..bytes.len().min(256)).collect();
    let mut at = 256;
    while at < bytes.len() {
        cuts.push(at);
        cuts.push(at + 97);
        at += 4096;
    }
    for cut in cuts {
        // cuts within a page of the end may only shave zero padding off the
        // tail, which leaves every section intact — skip those
        if cut + 4096 > bytes.len() {
            continue;
        }
        let result = open_bytes(&bytes[..cut], "trunc");
        assert!(result.is_err(), "prefix of {cut} bytes must be rejected");
    }
}

#[test]
fn flipped_section_bytes_fail_their_checksum() {
    let (_, bytes) = written_girg_bytes(3, 2);
    // flip one byte in each section payload region (past the first page);
    // the per-section CRC must catch every one
    let mut at = 4096 + 13;
    let mut checked = 0;
    while at < bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x40;
        if corrupt[at] != bytes[at] {
            match open_bytes(&corrupt, "flip") {
                Err(StoreError::ChecksumMismatch { .. }) => checked += 1,
                // padding bytes between sections are not covered by any CRC
                Ok(_) => {}
                Err(other) => panic!("flip at {at}: expected ChecksumMismatch, got {other:?}"),
            }
        }
        at += 2048;
    }
    assert!(checked > 0, "at least one flip must land in a section");
}

#[test]
fn header_checksum_covers_the_section_table() {
    let (_, mut bytes) = written_girg_bytes(4, 1);
    // flip a byte inside the section table (starts at offset 64)
    bytes[64 + 9] ^= 0x01;
    assert!(matches!(
        open_bytes(&bytes, "table"),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn wrong_dimension_is_a_typed_error() {
    let (_, bytes) = written_girg_bytes(5, 1);
    let path = temp_path("dim");
    std::fs::write(&path, &bytes).unwrap();
    let store = GraphStore::open(&path).unwrap();
    match store.load_girg::<3>() {
        Err(StoreError::DimensionMismatch { file, expected }) => {
            assert_eq!(file, 2);
            assert_eq!(expected, 3);
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_text_errors_carry_through_the_unified_error_type() {
    let path = std::env::temp_dir().join(format!(
        "smallworld-store-reject-{}-legacy.txt",
        std::process::id()
    ));
    std::fs::write(&path, "not a girg file\n").unwrap();
    assert!(matches!(
        smallworld_store::load_girg::<2>(&path),
        Err(StoreError::Legacy(_))
    ));
    std::fs::remove_file(&path).ok();
}
