//! The one error type of the store: every failure mode of the binary
//! `.swg` path and the legacy text path funnels into [`StoreError`], so
//! callers match on a single enum regardless of which serialization they
//! hit.

use std::error::Error;
use std::fmt;

use smallworld_graph::GraphError;
use smallworld_models::io::IoError;

/// Error reading or writing a stored graph.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (open, read, write, mmap).
    Io(std::io::Error),
    /// The file does not start with the `.swg` magic bytes.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ended before the named structure was complete.
    Truncated {
        /// Which structure was cut short (header, section table, …).
        what: &'static str,
    },
    /// A section's stored CRC32 does not match its bytes.
    ChecksumMismatch {
        /// The section whose checksum failed.
        section: &'static str,
    },
    /// A required section is absent from the section table.
    MissingSection(&'static str),
    /// The file stores a different torus dimension than the caller asked
    /// for (e.g. loading a `d=3` file as `Girg<2>`).
    DimensionMismatch {
        /// Dimension recorded in the file header.
        file: u32,
        /// Dimension the caller requested.
        expected: u32,
    },
    /// Structurally invalid contents (bad varint stream, non-monotone
    /// offsets, out-of-range ids, …); the message names the spot.
    Corrupt(String),
    /// Decoded adjacency violated the CSR invariants.
    Graph(GraphError),
    /// Failure in the legacy plain-text format (`smallworld-girg v1`).
    Legacy(IoError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a .swg store (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported .swg format version {v}")
            }
            StoreError::Truncated { what } => write!(f, "truncated .swg store: {what}"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            StoreError::MissingSection(s) => write!(f, "missing section {s}"),
            StoreError::DimensionMismatch { file, expected } => {
                write!(f, "store has dimension {file}, expected {expected}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt .swg store: {msg}"),
            StoreError::Graph(e) => write!(f, "invalid stored adjacency: {e}"),
            StoreError::Legacy(e) => write!(f, "legacy text format: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            StoreError::Legacy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

impl From<IoError> for StoreError {
    fn from(e: IoError) -> Self {
        StoreError::Legacy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(
            StoreError::ChecksumMismatch { section: "NBR" }
                .to_string()
                .contains("NBR")
        );
        assert!(
            StoreError::DimensionMismatch { file: 3, expected: 2 }
                .to_string()
                .contains("dimension 3")
        );
    }

    #[test]
    fn sources_are_threaded() {
        let io = StoreError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(StoreError::BadMagic.source().is_none());
    }
}
