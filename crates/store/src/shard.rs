//! Geometric shard partition: contiguous Morton-id ranges → self-contained
//! per-shard compressed CSRs plus explicit cross-shard boundary-edge
//! tables.
//!
//! After a Morton relabeling, contiguous vertex-id ranges are geometric
//! regions of the torus, so partitioning `0..n` into `k` ranges of
//! near-equal adjacency mass yields shards whose internal edges dominate
//! and whose cross-shard edges connect geometric neighbors across region
//! seams. Each shard stores:
//!
//! - its **local adjacency**: edges with both endpoints in the shard,
//!   re-indexed to local ids `0..len` and compressed like the global CSR;
//! - its **boundary table**: every half-edge `(local source, global
//!   target)` whose target lives in another shard, sorted — the handoff
//!   list a shard-local router needs to forward packets across the seam.
//!
//! [`ShardedStore::assemble`] merges the shards back into the exact global
//! [`Graph`], which is how the tests pin lossless-ness, and the routing
//! equivalence suite shows greedy routes on an assembled graph are bitwise
//! those of the original.

use std::ops::Range;

use smallworld_geometry::{morton, Point};
use smallworld_graph::{Graph, NodeId};

use crate::csr::CompressedCsr;
use crate::varint;
use crate::StoreError;

/// Identity of one shard: which global ids it owns and, when geometry is
/// available, which Morton-code range those ids cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Contiguous global vertex ids owned by this shard.
    pub nodes: Range<u32>,
    /// Inclusive range `[lo, hi]` of Morton codes of the owned vertices'
    /// positions; `None` for bare (geometry-free) stores.
    pub morton: Option<(u64, u64)>,
}

/// One shard: spec, local compressed adjacency, boundary half-edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreShard {
    spec: ShardSpec,
    local: CompressedCsr,
    /// `(local source id, global target id)`, sorted; targets always lie
    /// outside `spec.nodes`.
    boundary: Vec<(u32, u32)>,
}

impl StoreShard {
    /// This shard's identity.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of vertices owned by the shard.
    pub fn len(&self) -> usize {
        self.spec.nodes.len()
    }

    /// Whether the shard owns no vertices.
    pub fn is_empty(&self) -> bool {
        self.spec.nodes.is_empty()
    }

    /// The shard-internal adjacency in compressed form (local ids).
    pub fn local_csr(&self) -> &CompressedCsr {
        &self.local
    }

    /// The cross-shard half-edges, sorted by `(local source, global
    /// target)`.
    pub fn boundary(&self) -> &[(u32, u32)] {
        &self.boundary
    }

    /// Decodes the shard-internal adjacency as a self-contained local
    /// graph over `0..len` ids.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the compressed stream is malformed.
    pub fn local_graph(&self) -> Result<Graph, StoreError> {
        self.local.decode()
    }
}

/// A complete shard partition of one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedStore {
    node_count: usize,
    shards: Vec<StoreShard>,
}

impl ShardedStore {
    /// Partitions `graph` into at most `shard_count` contiguous id ranges
    /// of near-equal adjacency mass (fewer when the graph is small).
    ///
    /// Meaningful shards require a Morton-relabeled graph — ids are split
    /// positionally. For a graph with positions use
    /// [`ShardedStore::partition_with_positions`], which also records each
    /// shard's Morton-code range.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn partition(graph: &Graph, shard_count: usize) -> ShardedStore {
        Self::build(graph, shard_count, |_| None)
    }

    /// Like [`ShardedStore::partition`], recording the Morton-code range
    /// each shard covers (the cell-range → shard map of the format docs).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0` or `positions.len()` mismatches the
    /// vertex count.
    pub fn partition_with_positions<const D: usize>(
        graph: &Graph,
        positions: &[Point<D>],
        shard_count: usize,
    ) -> ShardedStore {
        assert_eq!(
            positions.len(),
            graph.node_count(),
            "positions length must match node count"
        );
        Self::build(graph, shard_count, |nodes: &Range<u32>| {
            let codes = positions[nodes.start as usize..nodes.end as usize]
                .iter()
                .map(morton::point_code);
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for c in codes {
                lo = lo.min(c);
                hi = hi.max(c);
            }
            Some((lo, hi))
        })
    }

    fn build(
        graph: &Graph,
        shard_count: usize,
        morton_of: impl Fn(&Range<u32>) -> Option<(u64, u64)>,
    ) -> ShardedStore {
        assert!(shard_count > 0, "shard_count must be positive");
        let n = graph.node_count();
        let ranges = balanced_ranges(graph, shard_count);
        let mut shards = Vec::with_capacity(ranges.len());
        for nodes in ranges {
            let start = nodes.start;
            let morton = if nodes.is_empty() { None } else { morton_of(&nodes) };
            // split each vertex's neighbor list into local and boundary
            let mut local_edges: Vec<(u32, u32)> = Vec::new();
            let mut boundary: Vec<(u32, u32)> = Vec::new();
            for v in nodes.clone() {
                for &t in graph.neighbors(NodeId::new(v)) {
                    let t = t.raw();
                    if nodes.contains(&t) {
                        if v < t {
                            local_edges.push((v - start, t - start));
                        }
                    } else {
                        boundary.push((v - start, t));
                    }
                }
            }
            let local_n = nodes.len();
            let local = Graph::from_edges(local_n, local_edges)
                .expect("local edges are valid by construction");
            shards.push(StoreShard {
                spec: ShardSpec { nodes, morton },
                local: CompressedCsr::from_graph(&local),
                boundary,
            });
        }
        ShardedStore {
            node_count: n,
            shards,
        }
    }

    /// Number of vertices of the partitioned graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The shards, in ascending id-range order.
    pub fn shards(&self) -> &[StoreShard] {
        &self.shards
    }

    /// Number of undirected cross-shard edges (each appears in exactly two
    /// boundary tables).
    pub fn boundary_edge_count(&self) -> usize {
        self.shards.iter().map(|s| s.boundary.len()).sum::<usize>() / 2
    }

    /// Reassembles the exact global graph from the shards: local edges are
    /// translated back to global ids and boundary half-edges merged in.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if a shard's compressed stream is malformed
    /// or the merged adjacency violates the CSR invariants.
    pub fn assemble(&self) -> Result<Graph, StoreError> {
        let mut offsets = Vec::with_capacity(self.node_count + 1);
        let mut targets: Vec<NodeId> = Vec::new();
        offsets.push(0usize);
        let mut local_list: Vec<u32> = Vec::new();
        for shard in &self.shards {
            let start = shard.spec.nodes.start;
            let mut b = 0usize; // cursor into the sorted boundary table
            for v in 0..shard.len() {
                local_list.clear();
                shard.local.decode_list(v, &mut local_list)?;
                // merge shard-local targets (all inside the range, offset
                // by start) with this vertex's boundary targets (outside)
                let boundary_lo = b;
                while b < shard.boundary.len() && shard.boundary[b].0 as usize == v {
                    b += 1;
                }
                let bnd = &shard.boundary[boundary_lo..b];
                let mut li = 0usize;
                let mut bi = 0usize;
                while li < local_list.len() || bi < bnd.len() {
                    let take_local = match (local_list.get(li), bnd.get(bi)) {
                        (Some(&l), Some(&(_, t))) => l + start < t,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if take_local {
                        targets.push(NodeId::new(local_list[li] + start));
                        li += 1;
                    } else {
                        targets.push(NodeId::new(bnd[bi].1));
                        bi += 1;
                    }
                }
                offsets.push(targets.len());
            }
        }
        if offsets.len() != self.node_count + 1 {
            return Err(StoreError::Corrupt(
                "shard ranges do not cover the vertex set".into(),
            ));
        }
        Ok(Graph::from_sorted_csr(offsets, targets)?)
    }

    /// Serializes the partition into the SHARDS section payload.
    ///
    /// Layout: `shard_count u32`, then per shard a fixed descriptor
    /// (`node_start u32, node_end u32, has_morton u32, morton_lo u64,
    /// morton_hi u64, offsets_len u64, data_len u64, boundary_len u64`)
    /// followed by its offsets (u64 LE each), varint data, and boundary
    /// pairs (2 × u32 LE each).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.node_count as u64).to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&shard.spec.nodes.start.to_le_bytes());
            out.extend_from_slice(&shard.spec.nodes.end.to_le_bytes());
            let (has, lo, hi) = match shard.spec.morton {
                Some((lo, hi)) => (1u32, lo, hi),
                None => (0u32, 0, 0),
            };
            out.extend_from_slice(&has.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&(shard.local.offsets().len() as u64).to_le_bytes());
            out.extend_from_slice(&(shard.local.data().len() as u64).to_le_bytes());
            out.extend_from_slice(&(shard.boundary.len() as u64).to_le_bytes());
            for &o in shard.local.offsets() {
                out.extend_from_slice(&o.to_le_bytes());
            }
            out.extend_from_slice(shard.local.data());
            for &(src, tgt) in &shard.boundary {
                out.extend_from_slice(&src.to_le_bytes());
                out.extend_from_slice(&tgt.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a SHARDS payload written by [`ShardedStore::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on truncated or inconsistent
    /// payloads (ranges that don't tile `0..node_count`, unsorted boundary
    /// tables, boundary targets inside the owning shard, …).
    pub fn from_bytes(bytes: &[u8], node_count: usize) -> Result<ShardedStore, StoreError> {
        let mut cur = Cursor { bytes, at: 0 };
        let shard_count = cur.u32()? as usize;
        let stored_n = cur.u64()? as usize;
        if stored_n != node_count {
            return Err(StoreError::Corrupt(format!(
                "shard section stores {stored_n} vertices, header says {node_count}"
            )));
        }
        let mut shards = Vec::with_capacity(shard_count);
        let mut expected_start = 0u32;
        for _ in 0..shard_count {
            let start = cur.u32()?;
            let end = cur.u32()?;
            if start != expected_start || end < start || end as usize > node_count {
                return Err(StoreError::Corrupt(
                    "shard ranges must tile 0..node_count in order".into(),
                ));
            }
            expected_start = end;
            let has_morton = cur.u32()?;
            let lo = cur.u64()?;
            let hi = cur.u64()?;
            let morton = if has_morton != 0 { Some((lo, hi)) } else { None };
            let offsets_len = cur.u64()? as usize;
            let data_len = cur.u64()? as usize;
            let boundary_len = cur.u64()? as usize;
            if offsets_len != (end - start) as usize + 1 {
                return Err(StoreError::Corrupt(
                    "shard offset index length mismatches its range".into(),
                ));
            }
            let mut offsets = Vec::with_capacity(offsets_len);
            for _ in 0..offsets_len {
                offsets.push(cur.u64()?);
            }
            let data = cur.take(data_len)?.to_vec();
            // target_count is recomputed by decoding; the local CSR stores
            // 2·(local edges) entries — count them by decoding lazily. We
            // derive it from the stream on first decode; store a
            // conservative value by summing varint counts now.
            let target_count = count_entries(&offsets, &data)?;
            let local = CompressedCsr::from_raw_parts(offsets, data, target_count)?;
            let mut boundary = Vec::with_capacity(boundary_len);
            let mut prev: Option<(u32, u32)> = None;
            for _ in 0..boundary_len {
                let src = cur.u32()?;
                let tgt = cur.u32()?;
                if src >= end - start {
                    return Err(StoreError::Corrupt(
                        "boundary source outside the shard".into(),
                    ));
                }
                if (start..end).contains(&tgt) || tgt as usize >= node_count {
                    return Err(StoreError::Corrupt(
                        "boundary target must lie in another shard".into(),
                    ));
                }
                if let Some(p) = prev {
                    if p >= (src, tgt) {
                        return Err(StoreError::Corrupt(
                            "boundary table must be strictly sorted".into(),
                        ));
                    }
                }
                prev = Some((src, tgt));
                boundary.push((src, tgt));
            }
            shards.push(StoreShard {
                spec: ShardSpec {
                    nodes: start..end,
                    morton,
                },
                local,
                boundary,
            });
        }
        if expected_start as usize != node_count {
            return Err(StoreError::Corrupt(
                "shard ranges do not cover the vertex set".into(),
            ));
        }
        if cur.at != bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes after shard table".into()));
        }
        Ok(ShardedStore {
            node_count,
            shards,
        })
    }
}

/// Counts the neighbor-list entries across all per-vertex varint streams
/// without materializing them.
fn count_entries(offsets: &[u64], data: &[u8]) -> Result<usize, StoreError> {
    let mut total = 0usize;
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        if lo > hi || hi > data.len() {
            return Err(StoreError::Corrupt("shard offsets out of bounds".into()));
        }
        let mut slice = &data[lo..hi];
        while !slice.is_empty() {
            let (_, used) = varint::read_u64(slice)?;
            slice = &slice[used..];
            total += 1;
        }
    }
    Ok(total)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated { what: "shard section" })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// adjacency mass (mirrors the balancing the parallel CSR builder uses for
/// its sort workers).
fn balanced_ranges(graph: &Graph, parts: usize) -> Vec<Range<u32>> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let total: usize = 2 * graph.edge_count() + n; // +n so isolated vertices spread too
    let target = (total / parts.max(1)).max(1);
    let mut ranges = Vec::new();
    let mut start = 0u32;
    let mut mass = 0usize;
    for v in 0..n as u32 {
        mass += graph.degree(NodeId::new(v)) + 1;
        let remaining_parts = parts - ranges.len();
        let is_last = remaining_parts == 1;
        if !is_last && mass >= target {
            ranges.push(start..v + 1);
            start = v + 1;
            mass = 0;
        }
    }
    if (start as usize) < n || ranges.is_empty() {
        ranges.push(start..n as u32);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_graph(side: u32) -> Graph {
        // 2D grid: a stand-in for geometric locality
        let idx = |x: u32, y: u32| x * side + y;
        let mut edges = Vec::new();
        for x in 0..side {
            for y in 0..side {
                if x + 1 < side {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < side {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        Graph::from_edges((side * side) as usize, edges).unwrap()
    }

    #[test]
    fn partition_covers_and_reassembles() {
        let g = grid_graph(12);
        for k in [1, 2, 3, 5, 8] {
            let sharded = ShardedStore::partition(&g, k);
            assert!(sharded.shards().len() <= k);
            let covered: usize = sharded.shards().iter().map(StoreShard::len).sum();
            assert_eq!(covered, g.node_count(), "k={k}");
            assert_eq!(sharded.assemble().unwrap(), g, "k={k}");
        }
    }

    #[test]
    fn more_shards_than_vertices_still_works() {
        let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2)]).unwrap();
        let sharded = ShardedStore::partition(&g, 10);
        assert_eq!(sharded.assemble().unwrap(), g);
    }

    #[test]
    fn boundary_tables_are_cross_shard_only() {
        let g = grid_graph(10);
        let sharded = ShardedStore::partition(&g, 4);
        let mut boundary_total = 0usize;
        for shard in sharded.shards() {
            let nodes = &shard.spec().nodes;
            for &(src, tgt) in shard.boundary() {
                assert!((src as usize) < shard.len());
                assert!(!nodes.contains(&tgt));
            }
            boundary_total += shard.boundary().len();
        }
        assert_eq!(boundary_total, 2 * sharded.boundary_edge_count());
        assert!(sharded.boundary_edge_count() > 0);
        // internal + cross edges account for every edge exactly once
        let internal: usize = sharded
            .shards()
            .iter()
            .map(|s| s.local_csr().edge_count())
            .sum();
        assert_eq!(internal + sharded.boundary_edge_count(), g.edge_count());
    }

    #[test]
    fn serialization_roundtrips() {
        let g = grid_graph(9);
        for k in [1, 3, 7] {
            let sharded = ShardedStore::partition(&g, k);
            let bytes = sharded.to_bytes();
            let back = ShardedStore::from_bytes(&bytes, g.node_count()).unwrap();
            assert_eq!(back, sharded, "k={k}");
            assert_eq!(back.assemble().unwrap(), g);
        }
    }

    #[test]
    fn corrupted_shard_payloads_are_rejected() {
        let g = grid_graph(6);
        let sharded = ShardedStore::partition(&g, 3);
        let bytes = sharded.to_bytes();
        // wrong node count
        assert!(ShardedStore::from_bytes(&bytes, g.node_count() + 1).is_err());
        // truncations at every prefix must error, never panic
        for cut in 0..bytes.len().min(200) {
            assert!(ShardedStore::from_bytes(&bytes[..cut], g.node_count()).is_err());
        }
        // trailing garbage
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(ShardedStore::from_bytes(&extended, g.node_count()).is_err());
    }

    #[test]
    fn empty_graph_partitions_to_nothing() {
        let g = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        let sharded = ShardedStore::partition(&g, 4);
        assert!(sharded.shards().is_empty());
        assert_eq!(sharded.assemble().unwrap(), g);
    }
}
