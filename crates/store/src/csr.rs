//! In-memory compressed CSR: delta+varint neighbor streams behind a
//! fixed-width byte-offset index.
//!
//! The layout mirrors an ordinary CSR — `offsets[v]..offsets[v+1]` delimits
//! vertex `v`'s data — except the per-vertex payload is the
//! [`varint`](crate::varint) delta stream of its sorted neighbor list
//! instead of raw `u32`s. Random access to any single vertex's neighbors
//! therefore stays O(degree), while a Morton-relabeled graph compresses to
//! a fraction of the raw 4 bytes per half-edge.

use smallworld_graph::{Graph, NodeId};

use crate::varint;
use crate::StoreError;

/// A compressed CSR adjacency: the in-memory form of the `.swg` OFFSETS and
/// NBR sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedCsr {
    node_count: usize,
    /// Total neighbor-list entries (`2m` for an undirected graph).
    target_count: usize,
    /// `offsets[v]..offsets[v+1]` delimits `data` for vertex `v`;
    /// `offsets.len() == node_count + 1`.
    offsets: Vec<u64>,
    /// Concatenated varint delta streams.
    data: Vec<u8>,
}

impl CompressedCsr {
    /// Compresses a graph's adjacency. The graph is not consumed; the
    /// result is independent of it.
    pub fn from_graph(graph: &Graph) -> CompressedCsr {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        // Morton-relabeled graphs average ~1–2 bytes per entry; reserve a
        // middle-ground estimate to avoid rehash-like regrowth.
        let mut data = Vec::with_capacity(graph.edge_count().saturating_mul(4));
        let mut target_count = 0usize;
        offsets.push(0);
        let mut scratch: Vec<u32> = Vec::new();
        for v in graph.nodes() {
            scratch.clear();
            scratch.extend(graph.neighbors(v).iter().map(|t| t.raw()));
            varint::encode_sorted(&scratch, &mut data);
            target_count += scratch.len();
            offsets.push(data.len() as u64);
        }
        CompressedCsr {
            node_count: n,
            target_count,
            offsets,
            data,
        }
    }

    /// Reassembles a compressed CSR from its stored arrays, validating the
    /// offset index (the data streams themselves are validated on decode).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if the offsets are not a monotone
    /// cover of `data`.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        data: Vec<u8>,
        target_count: usize,
    ) -> Result<CompressedCsr, StoreError> {
        if offsets.is_empty() {
            return Err(StoreError::Corrupt("empty compressed offset index".into()));
        }
        if offsets[0] != 0 {
            return Err(StoreError::Corrupt("compressed offsets must start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt("compressed offsets decrease".into()));
        }
        if *offsets.last().expect("non-empty") != data.len() as u64 {
            return Err(StoreError::Corrupt(
                "compressed offsets do not cover the data stream".into(),
            ));
        }
        Ok(CompressedCsr {
            node_count: offsets.len() - 1,
            target_count,
            offsets,
            data,
        })
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total neighbor-list entries across all vertices (`2m`).
    pub fn target_count(&self) -> usize {
        self.target_count
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.target_count / 2
    }

    /// The byte-offset index (length `node_count + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The concatenated varint streams.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Total in-memory footprint of the compressed form: data bytes plus
    /// the 8-byte-per-vertex offset index.
    pub fn byte_len(&self) -> usize {
        self.data.len() + self.offsets.len() * 8
    }

    /// The raw (uncompressed) CSR footprint of the same adjacency:
    /// `usize` offsets plus `u32` targets — the baseline the compression
    /// ratio is measured against.
    pub fn raw_byte_len(&self) -> usize {
        (self.node_count + 1) * std::mem::size_of::<usize>() + self.target_count * 4
    }

    /// Decodes one vertex's neighbor list, appending to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a malformed stream.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count`.
    pub fn decode_list(&self, v: usize, out: &mut Vec<u32>) -> Result<(), StoreError> {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        varint::decode_sorted(&self.data[lo..hi], out)
    }

    /// Decodes the full adjacency back into a [`Graph`], re-validating the
    /// CSR invariants.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on malformed streams or
    /// [`StoreError::Graph`] if the decoded arrays violate the graph's
    /// invariants (out-of-range ids, self-loops, unsorted lists).
    pub fn decode(&self) -> Result<Graph, StoreError> {
        let n = self.node_count;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(self.target_count);
        offsets.push(0usize);
        for v in 0..n {
            self.decode_list(v, &mut targets)?;
            offsets.push(targets.len());
        }
        if targets.len() != self.target_count {
            return Err(StoreError::Corrupt(format!(
                "decoded {} adjacency entries, header claims {}",
                targets.len(),
                self.target_count
            )));
        }
        let targets: Vec<NodeId> = targets.into_iter().map(NodeId::new).collect();
        Ok(Graph::from_sorted_csr(offsets, targets)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        Graph::from_edges(
            8,
            [
                (0u32, 1u32),
                (0, 7),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (1, 6),
                (2, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample_graph();
        let c = CompressedCsr::from_graph(&g);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.decode().unwrap(), g);
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        let empty = Graph::from_edges(0, Vec::<(u32, u32)>::new()).unwrap();
        assert_eq!(CompressedCsr::from_graph(&empty).decode().unwrap(), empty);
        let isolated = Graph::from_edges(5, [(1u32, 3u32)]).unwrap();
        let c = CompressedCsr::from_graph(&isolated);
        assert_eq!(c.decode().unwrap(), isolated);
        assert_eq!(c.target_count(), 2);
    }

    #[test]
    fn compresses_dense_id_neighborhoods() {
        // a path graph has gaps of at most 2: every entry fits one byte
        let n = 10_000u32;
        let g = Graph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let c = CompressedCsr::from_graph(&g);
        // the varint streams shrink the 4-byte targets by >2× even before
        // accounting for the offset index…
        assert!(
            c.data().len() * 2 < c.target_count() * 4,
            "data {} targets raw {}",
            c.data().len(),
            c.target_count() * 4
        );
        // …and the total stays below raw even at this pathological average
        // degree of 2, where the fixed offset index dominates
        assert!(
            c.byte_len() < c.raw_byte_len(),
            "compressed {} raw {}",
            c.byte_len(),
            c.raw_byte_len()
        );
        assert_eq!(c.decode().unwrap(), g);
    }

    #[test]
    fn raw_parts_validation() {
        let g = sample_graph();
        let c = CompressedCsr::from_graph(&g);
        let ok = CompressedCsr::from_raw_parts(
            c.offsets().to_vec(),
            c.data().to_vec(),
            c.target_count(),
        )
        .unwrap();
        assert_eq!(ok, c);
        assert!(CompressedCsr::from_raw_parts(vec![], vec![], 0).is_err());
        assert!(CompressedCsr::from_raw_parts(vec![1, 1], vec![0], 1).is_err());
        assert!(CompressedCsr::from_raw_parts(vec![0, 2, 1], vec![0, 0], 2).is_err());
        assert!(CompressedCsr::from_raw_parts(vec![0, 1], vec![0, 0], 1).is_err());
    }

    #[test]
    fn wrong_target_count_is_rejected() {
        let g = sample_graph();
        let c = CompressedCsr::from_graph(&g);
        let lying = CompressedCsr::from_raw_parts(
            c.offsets().to_vec(),
            c.data().to_vec(),
            c.target_count() + 1,
        )
        .unwrap();
        assert!(lying.decode().is_err());
    }
}
