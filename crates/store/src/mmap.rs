//! File mapping: zero-copy `mmap(2)` on unix behind the `mmap` feature,
//! with a portable read-into-`Vec` fallback.
//!
//! # Safety notes (see also DESIGN.md §4h)
//!
//! A mapped file is shared memory: if another process truncates or rewrites
//! the file while it is mapped, loads can fault (`SIGBUS`) or observe torn
//! bytes. The store treats `.swg` files as immutable once written —
//! `girg_gen --out` writes to a fresh file — and verifies a CRC32 per
//! section immediately after mapping, so silent mid-read mutation is
//! outside the supported contract, exactly as for any mmap-based database.
//! The mapping is `MAP_PRIVATE` and read-only (`PROT_READ`), so the store
//! never writes through it.
//!
//! The `Vec` fallback (non-unix, or `--no-default-features`) has none of
//! these caveats at the cost of one full copy and the corresponding RSS.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

/// A read-only view of a file's bytes: either an owned buffer or a live
/// memory mapping (unmapped on drop).
#[derive(Debug)]
pub enum Mapping {
    /// The file was read into an owned buffer.
    Owned(Vec<u8>),
    /// The file is memory-mapped (unix, `mmap` feature).
    #[cfg(all(feature = "mmap", unix))]
    Mapped {
        /// Page-aligned base address returned by `mmap(2)`.
        ptr: *const u8,
        /// Length of the mapping in bytes.
        len: usize,
    },
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared bytes,
// safe to read from any thread; the raw pointer is never handed out mutably.
#[cfg(all(feature = "mmap", unix))]
unsafe impl Send for Mapping {}
#[cfg(all(feature = "mmap", unix))]
unsafe impl Sync for Mapping {}

impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Mapping::Owned(v) => v,
            #[cfg(all(feature = "mmap", unix))]
            Mapping::Mapped { ptr, len } => {
                // SAFETY: ptr/len describe a live PROT_READ mapping owned by
                // self; it is unmapped only in Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(feature = "mmap", unix))]
        if let Mapping::Mapped { ptr, len } = *self {
            // SAFETY: exactly one munmap for the mmap that created this
            // variant; failure is unrecoverable and ignored (fd is closed).
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

impl Mapping {
    /// Whether this view aliases the page cache (true mmap) rather than an
    /// owned copy.
    pub fn is_zero_copy(&self) -> bool {
        match self {
            Mapping::Owned(_) => false,
            #[cfg(all(feature = "mmap", unix))]
            Mapping::Mapped { .. } => true,
        }
    }
}

#[cfg(all(feature = "mmap", unix))]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // std already links libc on unix targets, so these symbols resolve
    // without any external crate. `off_t` is 64-bit on every tier-1 unix
    // target with 64-bit file offsets (Rust enables _FILE_OFFSET_BITS=64
    // semantics via the libc it links).
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Maps `path` read-only, preferring `mmap(2)` when available and falling
/// back to reading the file into memory (always used for empty files, on
/// non-unix targets, without the `mmap` feature, or when the syscall
/// fails).
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be opened or read.
pub fn map_readonly(path: &Path) -> std::io::Result<Mapping> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let len_usize = usize::try_from(len).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds address space")
    })?;

    #[cfg(all(feature = "mmap", unix))]
    if len_usize > 0 {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file descriptor; a NULL hint with
        // PROT_READ|MAP_PRIVATE over [0, len) is always a valid request.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len_usize,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize != -1 && !ptr.is_null() {
            return Ok(Mapping::Mapped {
                ptr: ptr as *const u8,
                len: len_usize,
            });
        }
        // fall through to the owned read on mmap failure
    }

    let mut buf = Vec::with_capacity(len_usize);
    file.read_to_end(&mut buf)?;
    Ok(Mapping::Owned(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smallworld-store-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let mapping = map_readonly(&path).unwrap();
        assert_eq!(&mapping[..], &payload[..]);
        #[cfg(all(feature = "mmap", unix))]
        assert!(mapping.is_zero_copy());
        drop(mapping);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let mapping = map_readonly(&path).unwrap();
        assert!(mapping.is_empty());
        assert!(!mapping.is_zero_copy());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(map_readonly(Path::new("/nonexistent/smallworld.swg")).is_err());
    }
}
