//! Streamed `.swg` writer: persists an out-of-core sampled GIRG
//! ([`StreamedGirg`]) without ever materializing the global edge list or
//! the decoded adjacency.
//!
//! The models-side streamed sampler hands us a strictly increasing
//! half-edge stream (k-way merged from its spill runs). This writer
//! consumes it grouped by source vertex, varint-encodes each vertex's
//! sorted neighbor list ([`varint::encode_sorted`]) into a staged NBR
//! file — accumulating the section CRC32 and the offsets index as it goes
//! — and then lays out the final store through the exact same
//! [`write_sections`] path as [`crate::write_girg_swg`]. Because both
//! writers share the layout and section-payload code, a streamed store is
//! **byte-for-byte identical** to what the in-RAM path would have written
//! for the same (Morton-relabeled) sample; `tests/` pin this by hashing
//! whole files.
//!
//! Peak memory is one vertex's neighbor list plus the offsets index —
//! `O(n)` — regardless of the edge count.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use smallworld_models::girg::StreamedGirg;

use crate::format::{
    meta_section_bytes, offsets_section_bytes, pos_section_bytes, weight_section_bytes, Crc32,
    SectionSource,
};
use crate::{varint, SectionId, StoreError, WriteStats, FLAG_GEOMETRY};

/// Accumulates the NBR section in a staged spill file: per-vertex varint
/// streams, a running offsets index, and the payload CRC32.
struct NbrStager {
    writer: BufWriter<File>,
    crc: Crc32,
    offsets: Vec<u64>,
    written: u64,
    encode_buf: Vec<u8>,
}

impl NbrStager {
    fn create(path: &Path, node_count: usize) -> Result<NbrStager, StoreError> {
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0);
        Ok(NbrStager {
            writer: BufWriter::new(File::create(path)?),
            crc: Crc32::new(),
            offsets,
            written: 0,
            encode_buf: Vec::new(),
        })
    }

    /// Appends one vertex's sorted neighbor list (possibly empty).
    fn push_vertex(&mut self, targets: &[u32]) -> Result<(), StoreError> {
        self.encode_buf.clear();
        varint::encode_sorted(targets, &mut self.encode_buf);
        self.writer.write_all(&self.encode_buf)?;
        self.crc.update(&self.encode_buf);
        self.written += self.encode_buf.len() as u64;
        self.offsets.push(self.written);
        Ok(())
    }

    fn finish(mut self) -> Result<(Vec<u64>, u64, u32), StoreError> {
        self.writer.flush()?;
        Ok((self.offsets, self.written, self.crc.finish()))
    }
}

/// Writes an out-of-core sampled GIRG as a `.swg` store at `path`,
/// streaming the adjacency from the sampler's spill runs straight into
/// the NBR section.
///
/// The output is byte-for-byte what [`crate::write_girg_swg`] (with
/// `shard_count = 1`) produces for the equivalent in-RAM sample after
/// Morton relabeling — same sections, same payloads, same checksums. A
/// shard partition is not emitted: partitioning balances by degree mass,
/// which the streamed path computes from the offsets index just as well,
/// but sharded stores are written by the in-RAM path today.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure and
/// [`StoreError::Corrupt`] if the half-edge stream disagrees with the
/// sample's vertex or edge counts (a sampler bug, not a caller error).
pub fn write_girg_swg_streamed<const D: usize>(
    sample: &StreamedGirg<D>,
    path: impl AsRef<Path>,
) -> Result<WriteStats, StoreError> {
    let path = path.as_ref();
    let staged_path = path.with_extension("nbr.staged");
    // Remove the staged file even on error paths.
    let result = stage_and_write(sample, path, &staged_path);
    std::fs::remove_file(&staged_path).ok();
    result
}

fn stage_and_write<const D: usize>(
    sample: &StreamedGirg<D>,
    path: &Path,
    staged_path: &Path,
) -> Result<WriteStats, StoreError> {
    let node_count = sample.node_count();
    let target_count = sample.target_count();
    let mut stager = NbrStager::create(staged_path, node_count)?;
    let mut current: Vec<u32> = Vec::new();
    let mut next_src = 0usize; // first vertex whose list is still open
    let mut seen = 0usize;
    for item in sample.half_edges()? {
        let (src, tgt) = item?;
        let src = src as usize;
        if src >= node_count || (tgt as usize) >= node_count {
            return Err(StoreError::Corrupt(format!(
                "half-edge ({src}, {tgt}) outside {node_count} vertices"
            )));
        }
        // the stream is strictly increasing, so a new src closes all
        // vertices up to and including the previous one
        while next_src < src {
            stager.push_vertex(&current)?;
            current.clear();
            next_src += 1;
        }
        current.push(tgt);
        seen += 1;
    }
    while next_src < node_count {
        stager.push_vertex(&current)?;
        current.clear();
        next_src += 1;
    }
    if seen != target_count {
        return Err(StoreError::Corrupt(format!(
            "half-edge stream yielded {seen} entries, sample says {target_count}"
        )));
    }

    let (offsets, nbr_len, nbr_crc) = stager.finish()?;

    let sections = vec![
        (
            SectionId::Meta,
            SectionSource::Bytes(meta_section_bytes(*sample.params(), 0)),
        ),
        (
            SectionId::Offsets,
            SectionSource::Bytes(offsets_section_bytes(&offsets)),
        ),
        (
            SectionId::Nbr,
            SectionSource::File {
                path: staged_path.to_path_buf(),
                len: nbr_len,
                crc: nbr_crc,
            },
        ),
        (
            SectionId::Pos,
            SectionSource::Bytes(pos_section_bytes(sample.positions())),
        ),
        (
            SectionId::Weight,
            SectionSource::Bytes(weight_section_bytes(sample.weights())),
        ),
    ];
    let file_bytes = crate::format::write_sections(
        path,
        D as u32,
        FLAG_GEOMETRY,
        node_count as u64,
        target_count as u64,
        &sections,
    )?;
    Ok(WriteStats {
        file_bytes,
        compressed_csr_bytes: nbr_len as usize + offsets.len() * 8,
        raw_csr_bytes: (node_count + 1) * std::mem::size_of::<usize>() + target_count * 4,
        target_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smallworld_models::girg::GirgBuilder;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smallworld-streamwrite-{}-{name}", std::process::id()))
    }

    #[test]
    fn streamed_store_is_byte_identical_to_in_ram_store() {
        for n in [500u64, 4_000] {
            let builder = GirgBuilder::<2>::new(n).beta(2.6).alpha(2.0);
            let mut rng_a = StdRng::seed_from_u64(21);
            let mut rng_b = StdRng::seed_from_u64(21);

            let girg = builder.sample(&mut rng_a).unwrap();
            let relabeled = girg.relabel(&girg.morton_permutation());
            let in_ram = temp_path(&format!("inram-{n}.swg"));
            let stats_a = crate::write_girg_swg(&relabeled, &in_ram, 1).unwrap();

            let streamed = builder
                .sample_streamed(&mut rng_b, &std::env::temp_dir())
                .unwrap();
            let out = temp_path(&format!("streamed-{n}.swg"));
            let stats_b = write_girg_swg_streamed(&streamed, &out).unwrap();

            assert_eq!(stats_a.file_bytes, stats_b.file_bytes);
            assert_eq!(stats_a.compressed_csr_bytes, stats_b.compressed_csr_bytes);
            assert_eq!(stats_a.raw_csr_bytes, stats_b.raw_csr_bytes);
            assert_eq!(stats_a.target_count, stats_b.target_count);
            let a = std::fs::read(&in_ram).unwrap();
            let b = std::fs::read(&out).unwrap();
            assert_eq!(a, b, "streamed .swg differs from in-RAM .swg at n={n}");

            // staged NBR spill is cleaned up
            assert!(!out.with_extension("nbr.staged").exists());
            std::fs::remove_file(&in_ram).ok();
            std::fs::remove_file(&out).ok();
        }
    }

    #[test]
    fn streamed_store_loads_back() {
        let mut rng = StdRng::seed_from_u64(33);
        let streamed = GirgBuilder::<2>::new(800)
            .sample_streamed(&mut rng, &std::env::temp_dir())
            .unwrap();
        let out = temp_path("load-back.swg");
        write_girg_swg_streamed(&streamed, &out).unwrap();
        let store = crate::GraphStore::open(&out).unwrap();
        let girg = store.load_girg::<2>().unwrap();
        assert_eq!(girg.node_count(), streamed.node_count());
        assert_eq!(girg.graph().edge_count(), streamed.edge_count());
        assert_eq!(girg.weights(), streamed.weights());
        std::fs::remove_file(&out).ok();
    }
}
