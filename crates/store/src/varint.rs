//! LEB128 varints and the delta codec for sorted neighbor lists.
//!
//! A CSR neighbor list is strictly increasing, so it is stored as its first
//! element followed by the *gaps minus one* between consecutive elements,
//! each as an LEB128 varint. After a Morton relabeling, a vertex's
//! neighbors are geometrically close and therefore numerically close, so
//! most gaps fit in a single byte — this is the entire compression story
//! (see DESIGN.md §4h).

use crate::StoreError;

/// Maximum encoded length of a `u64` varint (10 × 7 bits ≥ 64 bits).
pub const MAX_LEN: usize = 10;

/// Appends `value` as an LEB128 varint (7 data bits per byte, continuation
/// bit 0x80, least-significant group first).
#[inline]
pub fn write_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint from the front of `buf`, returning the value and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] if the buffer ends mid-varint, the
/// encoding exceeds [`MAX_LEN`] bytes, or the value overflows `u64`.
#[inline]
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize), StoreError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_LEN {
            return Err(StoreError::Corrupt("varint longer than 10 bytes".into()));
        }
        let group = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(StoreError::Corrupt("varint cut short".into()))
}

/// Encodes a strictly increasing `u32` list as `varint(list[0])` followed by
/// `varint(list[i] − list[i−1] − 1)` for each subsequent element. An empty
/// list encodes to zero bytes.
///
/// # Panics
///
/// Panics (debug assertion) if the list is not strictly increasing.
pub fn encode_sorted(list: &[u32], out: &mut Vec<u8>) {
    let Some((&first, rest)) = list.split_first() else {
        return;
    };
    write_u64(first as u64, out);
    let mut prev = first;
    for &v in rest {
        debug_assert!(v > prev, "neighbor list must be strictly increasing");
        write_u64((v - prev - 1) as u64, out);
        prev = v;
    }
}

/// Decodes a stream produced by [`encode_sorted`], consuming the whole
/// buffer and appending the values to `out`. The result is strictly
/// increasing by construction.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on a malformed varint or when a decoded
/// value exceeds `u32::MAX`.
pub fn decode_sorted(mut buf: &[u8], out: &mut Vec<u32>) -> Result<(), StoreError> {
    if buf.is_empty() {
        return Ok(());
    }
    let (first, used) = read_u64(buf)?;
    if first > u32::MAX as u64 {
        return Err(StoreError::Corrupt("neighbor id exceeds u32".into()));
    }
    buf = &buf[used..];
    out.push(first as u32);
    let mut prev = first;
    while !buf.is_empty() {
        let (gap, used) = read_u64(buf)?;
        buf = &buf[used..];
        let next = prev
            .checked_add(gap)
            .and_then(|x| x.checked_add(1))
            .ok_or_else(|| StoreError::Corrupt("neighbor gap overflows".into()))?;
        if next > u32::MAX as u64 {
            return Err(StoreError::Corrupt("neighbor id exceeds u32".into()));
        }
        out.push(next as u32);
        prev = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_one(v: u64) {
        let mut buf = Vec::new();
        write_u64(v, &mut buf);
        let (back, used) = read_u64(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip_one(v);
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_u64(100, &mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(u64::MAX, &mut buf);
        assert_eq!(buf.len(), MAX_LEN);
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let mut buf = Vec::new();
        write_u64(1 << 40, &mut buf);
        for cut in 0..buf.len() {
            let r = read_u64(&buf[..cut]);
            if cut == 0 {
                assert!(r.is_err());
            } else {
                assert!(r.is_err(), "accepted truncated prefix of length {cut}");
            }
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes never terminate within MAX_LEN
        let buf = [0x80u8; 11];
        assert!(read_u64(&buf).is_err());
        // 10 bytes whose top group pushes past 64 bits
        let mut over = [0x80u8; 10];
        over[9] = 0x02; // shift 63, group 2 → overflow
        assert!(read_u64(&over).is_err());
    }

    #[test]
    fn sorted_lists_roundtrip() {
        for list in [
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![0, 1, 2, 3],
            vec![0, u32::MAX],
            vec![5, 100, 1_000_000, 4_000_000_000],
        ] {
            let mut buf = Vec::new();
            encode_sorted(&list, &mut buf);
            let mut out = Vec::new();
            decode_sorted(&buf, &mut out).unwrap();
            assert_eq!(out, list);
        }
    }

    #[test]
    fn dense_gaps_cost_one_byte_each() {
        let list: Vec<u32> = (1000..1128).collect();
        let mut buf = Vec::new();
        encode_sorted(&list, &mut buf);
        // first element: 2 bytes; 127 gaps of 0: 1 byte each
        assert_eq!(buf.len(), 2 + 127);
    }

    #[test]
    fn gap_overflow_is_rejected() {
        // first = u32::MAX, then a gap that would push past u32
        let mut buf = Vec::new();
        write_u64(u32::MAX as u64, &mut buf);
        write_u64(0, &mut buf); // next = u32::MAX + 1
        let mut out = Vec::new();
        assert!(decode_sorted(&buf, &mut out).is_err());
    }
}
