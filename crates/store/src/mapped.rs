//! Decode-free adjacency access straight over a mapped `.swg` store.
//!
//! [`GraphStore::load_graph`] decodes the whole varint NBR stream into an
//! in-memory CSR before the first route starts — fine at 10⁶ vertices,
//! prohibitive at 10⁸. [`MappedGraph`] is the alternative: a thin view over
//! the mapped OFFSETS and NBR sections that decodes **one vertex's**
//! delta+LEB128 stream on demand (the offsets index gives O(1) seek into
//! the stream), so routing touches only the pages its path actually
//! crosses and RAM holds no adjacency beyond the OS page cache.
//!
//! [`MappedCursor`] adds a small set-associative LRU of hot decoded
//! neighbor lists on top (greedy routes revisit high-degree hubs
//! constantly), plus an eager-decode toggle that pre-decodes everything —
//! the A/B baseline for measuring what on-demand decoding costs. Both
//! present adjacency through `smallworld_graph::AdjacencyView`, so the
//! same routing loop runs over an in-memory [`Graph`] or over the file
//! bytes, producing bitwise-identical routes (pinned by the
//! `mapped_equivalence` proptests).

use std::borrow::Cow;

use smallworld_graph::{AdjacencyView, Graph, NodeId};

use crate::format::{GraphStore, SectionId};
use crate::varint;
use crate::StoreError;

/// Cache geometry of [`MappedCursor`]: vertices map to one of
/// [`LRU_SETS`] sets by `v % LRU_SETS`, each holding [`LRU_WAYS`] decoded
/// lists evicted least-recently-used.
///
/// 64 × 4 slots keep the directory footprint trivial (a few KiB plus the
/// cached lists themselves) while covering the handful of hubs a greedy
/// route cycles through; routing throughput is insensitive to the exact
/// shape well past this size.
const LRU_SETS: usize = 64;
/// Associativity of the cursor cache (see [`LRU_SETS`]).
const LRU_WAYS: usize = 4;

/// A zero-decode view of a store's adjacency: borrowed OFFSETS index plus
/// the raw NBR varint bytes, validated structurally at construction.
///
/// Create one with [`GraphStore::mapped_graph`]; it borrows the store's
/// mapping, so no adjacency bytes are copied (on a little-endian target
/// even the offsets index is borrowed in place). Neighbor lists are
/// decoded per vertex via [`MappedGraph::decode_into`] or iterated through
/// a caching [`MappedCursor`].
#[derive(Debug)]
pub struct MappedGraph<'a> {
    /// Byte offsets into `nbr`, length `node_count + 1`.
    offsets: Cow<'a, [u64]>,
    /// Concatenated per-vertex varint delta streams.
    nbr: &'a [u8],
    /// Total neighbor-list entries (`2m`), from the store header.
    target_count: usize,
}

/// Reinterprets little-endian `u64` section bytes, borrowing in place when
/// the mapping is aligned (mmap'd sections are page-aligned, so the owned
/// fallback only triggers for big-endian targets or odd buffered reads).
fn u64_view(bytes: &[u8]) -> Cow<'_, [u64]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid u64; align_to only
        // reinterprets, and the borrow is taken solely when the slice is
        // fully 8-aligned.
        let (pre, mid, post) = unsafe { bytes.align_to::<u64>() };
        if pre.is_empty() && post.is_empty() {
            return Cow::Borrowed(mid);
        }
    }
    Cow::Owned(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect(),
    )
}

impl GraphStore {
    /// A decode-free adjacency view borrowing this store's OFFSETS and NBR
    /// sections. The offsets index is validated (monotone cover of the NBR
    /// bytes, correct length) before any neighbor list is touched.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when either section is missing or the
    /// offsets index is malformed.
    pub fn mapped_graph(&self) -> Result<MappedGraph<'_>, StoreError> {
        let offsets_bytes = self.section(SectionId::Offsets)?;
        let expected = (self.node_count() + 1) * 8;
        if offsets_bytes.len() != expected {
            return Err(StoreError::Corrupt(format!(
                "OFFSETS section is {} bytes, expected {expected}",
                offsets_bytes.len()
            )));
        }
        let offsets = u64_view(offsets_bytes);
        let nbr = self.section(SectionId::Nbr)?;
        if offsets[0] != 0 {
            return Err(StoreError::Corrupt("compressed offsets must start at 0".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt("compressed offsets decrease".into()));
        }
        if *offsets.last().expect("validated non-empty") != nbr.len() as u64 {
            return Err(StoreError::Corrupt(
                "compressed offsets do not cover the data stream".into(),
            ));
        }
        Ok(MappedGraph {
            offsets,
            nbr,
            target_count: self.target_count(),
        })
    }
}

impl<'a> MappedGraph<'a> {
    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total neighbor-list entries across all vertices (`2m`).
    pub fn target_count(&self) -> usize {
        self.target_count
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.target_count / 2
    }

    /// Whether the offsets index is borrowed straight from the mapping
    /// (as opposed to parsed into an owned copy).
    pub fn offsets_borrowed(&self) -> bool {
        matches!(self.offsets, Cow::Borrowed(_))
    }

    /// Decodes vertex `v`'s sorted neighbor list from the mapped stream,
    /// appending to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a malformed varint stream
    /// (truncated varint, id overflow).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count`.
    pub fn decode_into(&self, v: usize, out: &mut Vec<u32>) -> Result<(), StoreError> {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        varint::decode_sorted(&self.nbr[lo..hi], out)
    }

    /// Decodes the full adjacency into a [`Graph`], re-validating the CSR
    /// invariants — the eager path behind [`GraphStore::load_graph`].
    ///
    /// Unlike [`GraphStore::compressed`] this never copies the NBR bytes
    /// or the offsets index out of the mapping: the only allocations are
    /// the decoded CSR arrays themselves.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on malformed streams or a
    /// target-count mismatch with the header, and [`StoreError::Graph`]
    /// if the decoded arrays violate the graph invariants.
    pub fn decode_full(&self) -> Result<Graph, StoreError> {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(self.target_count);
        offsets.push(0usize);
        for v in 0..n {
            self.decode_into(v, &mut targets)?;
            offsets.push(targets.len());
        }
        if targets.len() != self.target_count {
            return Err(StoreError::Corrupt(format!(
                "decoded {} adjacency entries, header claims {}",
                targets.len(),
                self.target_count
            )));
        }
        let targets: Vec<NodeId> = targets.into_iter().map(NodeId::new).collect();
        Ok(Graph::from_sorted_csr(offsets, targets)?)
    }

    /// An adjacency cursor decoding neighbor lists on demand through the
    /// set-associative LRU cache.
    pub fn cursor(&self) -> MappedCursor<'_> {
        MappedCursor {
            graph: self,
            eager: None,
            slots: (0..LRU_SETS * LRU_WAYS).map(|_| CacheSlot::default()).collect(),
            tick: 0,
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// An eager cursor that pre-decodes the entire adjacency up front —
    /// the A/B baseline against [`MappedGraph::cursor`]: identical
    /// interface and results, in-memory CSR cost model.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a malformed stream.
    pub fn cursor_eager(&self) -> Result<MappedCursor<'_>, StoreError> {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<u32> = Vec::with_capacity(self.target_count);
        offsets.push(0usize);
        for v in 0..n {
            self.decode_into(v, &mut targets)?;
            offsets.push(targets.len());
        }
        let targets: Vec<NodeId> = targets.into_iter().map(NodeId::new).collect();
        Ok(MappedCursor {
            graph: self,
            eager: Some((offsets, targets)),
            slots: Vec::new(),
            tick: 0,
            scratch: Vec::new(),
            hits: 0,
            misses: 0,
        })
    }
}

/// One way of the cursor cache: a decoded neighbor list tagged with its
/// vertex and last-touch tick. `u32::MAX` marks an empty slot (vertex ids
/// are `< u32::MAX` because `NodeId::from_index` bounds them).
#[derive(Debug)]
struct CacheSlot {
    vertex: u32,
    tick: u64,
    list: Vec<NodeId>,
}

impl Default for CacheSlot {
    fn default() -> Self {
        CacheSlot {
            vertex: u32::MAX,
            tick: 0,
            list: Vec::new(),
        }
    }
}

/// A stateful adjacency reader over a [`MappedGraph`]: either decodes on
/// demand through a small LRU of hot lists, or (eager mode) serves from a
/// pre-decoded CSR. Implements [`AdjacencyView`], so routing loops are
/// generic over it.
///
/// Cursors are cheap and thread-confined; parallel harnesses create one
/// per worker over the same shared [`MappedGraph`].
///
/// # Panics
///
/// [`AdjacencyView::with_neighbors`] panics on a corrupt varint stream.
/// Section checksums are verified when the store is opened, so a decode
/// failure here means the offsets index itself lies about stream
/// boundaries — unreachable for a store that passed validation.
#[derive(Debug)]
pub struct MappedCursor<'a> {
    graph: &'a MappedGraph<'a>,
    /// Pre-decoded `(offsets, targets)` CSR when in eager mode.
    eager: Option<(Vec<usize>, Vec<NodeId>)>,
    /// `LRU_SETS × LRU_WAYS` cache slots, set-major.
    slots: Vec<CacheSlot>,
    tick: u64,
    scratch: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl<'a> MappedCursor<'a> {
    /// Cache hits since creation (always 0 in eager mode).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (on-demand decodes) since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether this cursor pre-decoded the full adjacency.
    pub fn is_eager(&self) -> bool {
        self.eager.is_some()
    }
}

impl AdjacencyView for MappedCursor<'_> {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn with_neighbors<R>(&mut self, v: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        if let Some((offsets, targets)) = &self.eager {
            return f(&targets[offsets[v.index()]..offsets[v.index() + 1]]);
        }
        let set = v.index() % LRU_SETS;
        let ways = &mut self.slots[set * LRU_WAYS..(set + 1) * LRU_WAYS];
        self.tick += 1;
        if let Some(slot) = ways.iter_mut().find(|s| s.vertex == v.raw()) {
            slot.tick = self.tick;
            self.hits += 1;
            return f(&slot.list);
        }
        self.misses += 1;
        self.scratch.clear();
        self.graph
            .decode_into(v.index(), &mut self.scratch)
            .expect("validated store has decodable neighbor streams");
        let victim = ways
            .iter_mut()
            .min_by_key(|s| s.tick)
            .expect("cache sets are non-empty");
        victim.vertex = v.raw();
        victim.tick = self.tick;
        victim.list.clear();
        victim.list.extend(self.scratch.iter().map(|&t| NodeId::new(t)));
        f(&victim.list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_girg_swg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smallworld_models::girg::{Girg, GirgBuilder};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smallworld-mapped-{}-{name}", std::process::id()))
    }

    fn sample_store(name: &str) -> (Girg<2>, std::path::PathBuf) {
        let mut rng = StdRng::seed_from_u64(11);
        let girg: Girg<2> = GirgBuilder::new(600).sample(&mut rng).unwrap();
        let path = temp_path(name);
        write_girg_swg(&girg, &path, 1).unwrap();
        (girg, path)
    }

    #[test]
    fn decode_full_matches_compressed_decode() {
        let (girg, path) = sample_store("full.swg");
        let store = GraphStore::open(&path).unwrap();
        let mapped = store.mapped_graph().unwrap();
        assert_eq!(mapped.node_count(), girg.graph().node_count());
        assert_eq!(mapped.edge_count(), girg.graph().edge_count());
        assert_eq!(&mapped.decode_full().unwrap(), girg.graph());
        assert_eq!(&store.load_graph().unwrap(), girg.graph());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_demand_decode_matches_every_vertex() {
        let (girg, path) = sample_store("per-vertex.swg");
        let store = GraphStore::open(&path).unwrap();
        let mapped = store.mapped_graph().unwrap();
        let mut out = Vec::new();
        for v in girg.graph().nodes() {
            out.clear();
            mapped.decode_into(v.index(), &mut out).unwrap();
            let expect: Vec<u32> = girg.graph().neighbors(v).iter().map(|t| t.raw()).collect();
            assert_eq!(out, expect, "vertex {v}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursor_lazy_and_eager_agree_with_graph() {
        let (girg, path) = sample_store("cursor.swg");
        let store = GraphStore::open(&path).unwrap();
        let mapped = store.mapped_graph().unwrap();
        let mut lazy = mapped.cursor();
        let mut eager = mapped.cursor_eager().unwrap();
        assert!(!lazy.is_eager());
        assert!(eager.is_eager());
        // revisit each vertex immediately: a sequential full scan is the
        // LRU's worst case (everything evicts before a second pass), but a
        // back-to-back repeat must always hit
        for v in girg.graph().nodes() {
            for _visit in 0..2 {
                let from_lazy = lazy.with_neighbors(v, |ns| ns.to_vec());
                let from_eager = eager.with_neighbors(v, |ns| ns.to_vec());
                assert_eq!(from_lazy, girg.graph().neighbors(v), "lazy {v}");
                assert_eq!(from_eager, girg.graph().neighbors(v), "eager {v}");
            }
        }
        assert_eq!(lazy.hits(), girg.graph().node_count() as u64);
        assert!(lazy.misses() >= girg.graph().node_count() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offsets_view_is_zero_copy_under_mmap() {
        let (_girg, path) = sample_store("zero-copy.swg");
        let store = GraphStore::open(&path).unwrap();
        let mapped = store.mapped_graph().unwrap();
        if store.is_zero_copy() && cfg!(target_endian = "little") {
            assert!(mapped.offsets_borrowed());
        }
        std::fs::remove_file(&path).ok();
    }
}
