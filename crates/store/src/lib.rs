//! smallworld-store: compressed, memory-mapped, shard-partitioned on-disk
//! graphs.
//!
//! The store is the persistence layer for the sampled graphs the routing
//! experiments run on. Sampling a million-vertex GIRG takes seconds of CPU;
//! loading the same graph from a `.swg` file takes milliseconds, and every
//! experiment binary that loads the same file sees the bitwise-identical
//! graph, geometry, and greedy routes. Three layers:
//!
//! - **Codec** ([`varint`], [`CompressedCsr`]): neighbor lists of a
//!   Morton-relabeled graph have small id gaps, so delta + LEB128-varint
//!   encoding shrinks adjacency to a fraction of the raw 4 bytes per
//!   half-edge while keeping O(degree) random access per vertex.
//! - **Format** ([`GraphStore`], [`write_girg_swg`], [`write_graph_swg`]):
//!   a versioned, checksummed binary container with page-aligned sections,
//!   memory-mapped on load (feature `mmap`, on by default; a portable
//!   read-into-`Vec` fallback is always available). Geometry (positions,
//!   weights) is stored packed so kernels can score straight off the file
//!   bytes via `smallworld-core`'s packed objective.
//! - **Shards** ([`ShardedStore`]): a geometric partition into contiguous
//!   Morton ranges, each shard a self-contained compressed CSR plus an
//!   explicit cross-shard boundary-edge table; [`ShardedStore::assemble`]
//!   reproduces the exact global graph.
//!
//! [`save_girg`] / [`load_girg`] are the one-stop entry points: they
//! dispatch on the `.swg` extension, routing everything else through the
//! legacy text format of `smallworld-models::io` under the single
//! [`StoreError`] type.

mod csr;
mod error;
mod format;
mod mapped;
mod mmap;
mod shard;
mod stream_write;
pub mod varint;

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use smallworld_models::girg::Girg;

pub use crate::csr::CompressedCsr;
pub use crate::error::StoreError;
pub use crate::format::{
    write_girg_swg, write_graph_swg, GraphStore, SectionId, WriteStats, FLAG_GEOMETRY,
    FLAG_SHARDS, MAGIC, VERSION,
};
pub use crate::mapped::{MappedCursor, MappedGraph};
pub use crate::mmap::{map_readonly, Mapping};
pub use crate::shard::{ShardSpec, ShardedStore, StoreShard};
pub use crate::stream_write::write_girg_swg_streamed;

/// Whether `path` names a binary store file (by its `.swg` extension).
pub fn is_swg_path(path: &Path) -> bool {
    path.extension().is_some_and(|e| e.eq_ignore_ascii_case("swg"))
}

/// Saves a GIRG to `path`, picking the format from the extension: `.swg`
/// writes the binary store (pass `shard_count > 1` to embed a geometric
/// shard partition), anything else writes the legacy text format (which
/// ignores `shard_count`).
///
/// # Errors
///
/// Returns [`StoreError`] on I/O failure; legacy-format errors are wrapped
/// in [`StoreError::Legacy`].
pub fn save_girg<const D: usize>(
    girg: &Girg<D>,
    path: &Path,
    shard_count: usize,
) -> Result<Option<WriteStats>, StoreError> {
    if is_swg_path(path) {
        return Ok(Some(write_girg_swg(girg, path, shard_count)?));
    }
    let writer = BufWriter::new(File::create(path)?);
    smallworld_models::io::write_girg(girg, writer).map_err(StoreError::Legacy)?;
    Ok(None)
}

/// Loads a GIRG from `path`, picking the format from the extension: `.swg`
/// opens the binary store (memory-mapped when possible), anything else
/// parses the legacy text format.
///
/// # Errors
///
/// Returns [`StoreError`] on I/O failure, malformed or corrupt `.swg`
/// content, or (wrapped in [`StoreError::Legacy`]) text-format parse
/// errors.
pub fn load_girg<const D: usize>(path: &Path) -> Result<Girg<D>, StoreError> {
    if is_swg_path(path) {
        return GraphStore::open(path)?.load_girg::<D>();
    }
    let reader = BufReader::new(File::open(path)?);
    smallworld_models::io::read_girg::<D, _>(reader).map_err(StoreError::Legacy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smallworld_models::girg::GirgBuilder;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smallworld-store-lib-{}-{name}", std::process::id()))
    }

    #[test]
    fn extension_dispatch() {
        assert!(is_swg_path(Path::new("graph.swg")));
        assert!(is_swg_path(Path::new("/a/b/GRAPH.SWG")));
        assert!(!is_swg_path(Path::new("graph.txt")));
        assert!(!is_swg_path(Path::new("graph")));
    }

    #[test]
    fn save_load_roundtrips_in_both_formats() {
        let mut rng = StdRng::seed_from_u64(7);
        let girg: Girg<2> = GirgBuilder::new(400).sample(&mut rng).unwrap();
        for name in ["roundtrip.swg", "roundtrip.txt"] {
            let path = temp_path(name);
            let stats = save_girg(&girg, &path, 1).unwrap();
            assert_eq!(stats.is_some(), is_swg_path(&path));
            let back: Girg<2> = load_girg(&path).unwrap();
            assert_eq!(back.graph(), girg.graph());
            assert_eq!(back.weights(), girg.weights());
            assert_eq!(back.positions(), girg.positions());
            assert_eq!(back.params(), girg.params());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn missing_file_errors_in_both_formats() {
        assert!(load_girg::<2>(Path::new("/nonexistent/x.swg")).is_err());
        assert!(load_girg::<2>(Path::new("/nonexistent/x.txt")).is_err());
    }
}
