//! The `.swg` on-disk format: a versioned, checksummed, sectioned binary
//! container designed for zero-copy mapping.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SWGSTOR1"
//! 8       4     format version (u32 LE) = 1
//! 12      4     endianness marker (u32 LE) = 0x0A0B0C0D
//! 16      4     torus dimension d (0 = bare graph, no geometry)
//! 20      4     flags (bit 0 = geometry sections, bit 1 = shard section)
//! 24      8     node count (u64 LE)
//! 32      8     target count = 2m (u64 LE)
//! 40      4     section count (u32 LE)
//! 44      4     CRC32 of header bytes 0..44 ++ the section table
//! 48      16    reserved (zero)
//! 64      24·k  section table: (id u32, crc32 u32, offset u64, len u64)
//! …             section payloads, each aligned to a 4096-byte page
//! ```
//!
//! All integers are little-endian. Every section payload carries its own
//! CRC32, verified when the file is opened. Payloads start on page
//! boundaries so that, under `mmap`, fixed-width sections (OFFSETS, POS,
//! WEIGHT) are naturally aligned for direct `&[u64]`/`&[f64]` views.
//!
//! Sections:
//!
//! | id | name    | payload |
//! |----|---------|---------|
//! | 1  | META    | GIRG params: intensity, beta, wmin, alpha, lambda (f64 ×5), planted (u64) |
//! | 2  | OFFSETS | (n+1) × u64: byte offsets into NBR |
//! | 3  | NBR     | concatenated varint delta streams (see [`crate::varint`]) |
//! | 4  | POS     | n·d × f64: canonical torus coordinates, vertex-major |
//! | 5  | WEIGHT  | n × f64 |
//! | 6  | SHARDS  | serialized shard partition (see [`crate::shard`]) |

use std::borrow::Cow;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use smallworld_geometry::Point;
use smallworld_graph::Graph;
use smallworld_models::girg::{Girg, GirgParams};
use smallworld_models::Alpha;

use crate::csr::CompressedCsr;
use crate::mmap::{map_readonly, Mapping};
use crate::shard::ShardedStore;
use crate::StoreError;

/// File magic: the first 8 bytes of every `.swg` store.
pub const MAGIC: [u8; 8] = *b"SWGSTOR1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Endianness marker stored little-endian.
const ENDIAN_MARKER: u32 = 0x0A0B_0C0D;
/// Section payload alignment.
pub const PAGE: usize = 4096;
const HEADER_LEN: usize = 64;
const SECTION_ENTRY_LEN: usize = 24;

/// Header flag: POS/WEIGHT/META sections present.
pub const FLAG_GEOMETRY: u32 = 1;
/// Header flag: SHARDS section present.
pub const FLAG_SHARDS: u32 = 2;

/// Section identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// GIRG model parameters.
    Meta = 1,
    /// Compressed-CSR byte-offset index.
    Offsets = 2,
    /// Compressed-CSR varint streams.
    Nbr = 3,
    /// Packed vertex positions.
    Pos = 4,
    /// Vertex weights.
    Weight = 5,
    /// Shard partition.
    Shards = 6,
}

impl SectionId {
    fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "META",
            SectionId::Offsets => "OFFSETS",
            SectionId::Nbr => "NBR",
            SectionId::Pos => "POS",
            SectionId::Weight => "WEIGHT",
            SectionId::Shards => "SHARDS",
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (IEEE polynomial, as in gzip/zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Incremental CRC32 for producers that stream a payload to disk: start
/// from [`Crc32::new`], feed chunks, take [`Crc32::finish`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        self.0 = crc32_update(self.0, bytes);
    }

    pub(crate) fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Statistics reported by the write path, feeding `bench_store`.
#[derive(Clone, Copy, Debug)]
pub struct WriteStats {
    /// Total bytes written to the file, padding included.
    pub file_bytes: u64,
    /// Bytes of the compressed adjacency (NBR data + OFFSETS index).
    pub compressed_csr_bytes: usize,
    /// Bytes the same adjacency occupies as a raw in-memory CSR.
    pub raw_csr_bytes: usize,
    /// Neighbor-list entries stored (`2m`).
    pub target_count: usize,
}

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// A section payload for the writer: bytes held in memory, or a spill file
/// an out-of-core producer already wrote (with its length and CRC32
/// accumulated while spilling). Both feed the identical layout code, so a
/// file-backed section is byte-for-byte what the in-memory path would have
/// written.
pub(crate) enum SectionSource {
    /// Payload materialized in memory.
    Bytes(Vec<u8>),
    /// Payload staged in a file, copied into the store in chunks.
    File {
        /// The staged payload file.
        path: std::path::PathBuf,
        /// Payload length in bytes.
        len: u64,
        /// CRC32 of the payload, precomputed by the producer.
        crc: u32,
    },
}

impl SectionSource {
    fn len(&self) -> u64 {
        match self {
            SectionSource::Bytes(b) => b.len() as u64,
            SectionSource::File { len, .. } => *len,
        }
    }

    fn crc(&self) -> u32 {
        match self {
            SectionSource::Bytes(b) => crc32(b),
            SectionSource::File { crc, .. } => *crc,
        }
    }
}

/// Serializes `sections` into a `.swg` file at `path` (created/truncated).
pub(crate) fn write_sections(
    path: &Path,
    dim: u32,
    flags: u32,
    node_count: u64,
    target_count: u64,
    sections: &[(SectionId, SectionSource)],
) -> Result<u64, StoreError> {
    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let mut offset = round_up(HEADER_LEN + table_len, PAGE);

    // section table
    let mut table = Vec::with_capacity(table_len);
    for (id, payload) in sections {
        table.extend_from_slice(&(*id as u32).to_le_bytes());
        table.extend_from_slice(&payload.crc().to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&payload.len().to_le_bytes());
        offset = round_up(offset + payload.len() as usize, PAGE);
    }

    // header (crc over bytes 0..44 with the table appended)
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&ENDIAN_MARKER.to_le_bytes());
    header.extend_from_slice(&dim.to_le_bytes());
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&node_count.to_le_bytes());
    header.extend_from_slice(&target_count.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut crc_state = crc32_update(0xFFFF_FFFF, &header);
    crc_state = crc32_update(crc_state, &table);
    header.extend_from_slice(&(crc_state ^ 0xFFFF_FFFF).to_le_bytes());
    header.resize(HEADER_LEN, 0);

    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&header)?;
    w.write_all(&table)?;
    let mut written = HEADER_LEN + table_len;
    for (_, payload) in sections {
        let aligned = round_up(written, PAGE);
        w.write_all(&vec![0u8; aligned - written])?;
        match payload {
            SectionSource::Bytes(bytes) => w.write_all(bytes)?,
            SectionSource::File { path, len, .. } => {
                let mut reader = File::open(path)?;
                let copied = std::io::copy(&mut reader, &mut w)?;
                if copied != *len {
                    return Err(StoreError::Corrupt(format!(
                        "staged section file is {copied} bytes, expected {len}"
                    )));
                }
            }
        }
        written = aligned + payload.len() as usize;
    }
    // pad the tail so the file is a whole number of pages
    let total = round_up(written, PAGE);
    w.write_all(&vec![0u8; total - written])?;
    w.flush()?;
    Ok(total as u64)
}

/// Serializes the (n+1)-entry compressed offsets index as its OFFSETS
/// section payload.
pub(crate) fn offsets_section_bytes(offsets: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(offsets.len() * 8);
    for &o in offsets {
        bytes.extend_from_slice(&o.to_le_bytes());
    }
    bytes
}

fn adjacency_sections(graph: &Graph) -> (CompressedCsr, Vec<(SectionId, SectionSource)>) {
    let compressed = CompressedCsr::from_graph(graph);
    let offsets_bytes = offsets_section_bytes(compressed.offsets());
    let sections = vec![
        (SectionId::Offsets, SectionSource::Bytes(offsets_bytes)),
        (SectionId::Nbr, SectionSource::Bytes(compressed.data().to_vec())),
    ];
    (compressed, sections)
}

/// Writes a bare graph (no geometry) as a `.swg` store. With
/// `shard_count > 1` a shard partition over contiguous id ranges is
/// included.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_graph_swg(
    graph: &Graph,
    path: impl AsRef<Path>,
    shard_count: usize,
) -> Result<WriteStats, StoreError> {
    let (compressed, mut sections) = adjacency_sections(graph);
    let mut flags = 0;
    if shard_count > 1 {
        flags |= FLAG_SHARDS;
        sections.push((
            SectionId::Shards,
            SectionSource::Bytes(ShardedStore::partition(graph, shard_count).to_bytes()),
        ));
    }
    let file_bytes = write_sections(
        path.as_ref(),
        0,
        flags,
        graph.node_count() as u64,
        compressed.target_count() as u64,
        &sections,
    )?;
    Ok(WriteStats {
        file_bytes,
        compressed_csr_bytes: compressed.byte_len(),
        raw_csr_bytes: compressed.raw_byte_len(),
        target_count: compressed.target_count(),
    })
}

/// Writes a sampled GIRG — adjacency, packed geometry, and model
/// parameters — as a `.swg` store. With `shard_count > 1` a geometric
/// (Morton-range) shard partition is included.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_girg_swg<const D: usize>(
    girg: &Girg<D>,
    path: impl AsRef<Path>,
    shard_count: usize,
) -> Result<WriteStats, StoreError> {
    let graph = girg.graph();
    let (compressed, mut sections) = adjacency_sections(graph);

    let meta = meta_section_bytes(*girg.params(), girg.planted_count());
    sections.insert(0, (SectionId::Meta, SectionSource::Bytes(meta)));

    sections.push((
        SectionId::Pos,
        SectionSource::Bytes(pos_section_bytes(girg.positions())),
    ));
    sections.push((
        SectionId::Weight,
        SectionSource::Bytes(weight_section_bytes(girg.weights())),
    ));

    let mut flags = FLAG_GEOMETRY;
    if shard_count > 1 {
        flags |= FLAG_SHARDS;
        sections.push((
            SectionId::Shards,
            SectionSource::Bytes(
                ShardedStore::partition_with_positions(graph, girg.positions(), shard_count)
                    .to_bytes(),
            ),
        ));
    }
    let file_bytes = write_sections(
        path.as_ref(),
        D as u32,
        flags,
        graph.node_count() as u64,
        compressed.target_count() as u64,
        &sections,
    )?;
    Ok(WriteStats {
        file_bytes,
        compressed_csr_bytes: compressed.byte_len(),
        raw_csr_bytes: compressed.raw_byte_len(),
        target_count: compressed.target_count(),
    })
}

/// META section payload for GIRG parameters and the planted-vertex count.
pub(crate) fn meta_section_bytes(p: GirgParams, planted: usize) -> Vec<u8> {
    let alpha = match p.alpha {
        Alpha::Finite(a) => a,
        Alpha::Threshold => f64::INFINITY,
    };
    let mut meta = Vec::with_capacity(48);
    for v in [p.intensity, p.beta, p.wmin, alpha, p.lambda] {
        meta.extend_from_slice(&v.to_le_bytes());
    }
    meta.extend_from_slice(&(planted as u64).to_le_bytes());
    meta
}

/// POS section payload: canonical torus coordinates, vertex-major.
pub(crate) fn pos_section_bytes<const D: usize>(positions: &[Point<D>]) -> Vec<u8> {
    let mut pos = Vec::with_capacity(positions.len() * D * 8);
    for point in positions {
        for &c in point.coords() {
            pos.extend_from_slice(&c.to_le_bytes());
        }
    }
    pos
}

/// WEIGHT section payload.
pub(crate) fn weight_section_bytes(weights: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(weights.len() * 8);
    for &w in weights {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

#[derive(Debug)]
struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
}

/// An opened `.swg` store: the file mapped (or read) into memory with the
/// header parsed and every section checksum verified.
///
/// Loading is layered: [`GraphStore::load_graph`] decodes the adjacency,
/// [`GraphStore::load_girg`] reassembles the full [`Girg`], and the
/// `packed_*` accessors expose the geometry sections without materializing
/// `Point` vectors — the zero-copy path for kernels that score straight off
/// the store (`smallworld_core::PackedGirgObjective`).
#[derive(Debug)]
pub struct GraphStore {
    mapping: Mapping,
    sections: Vec<SectionEntry>,
    dim: u32,
    flags: u32,
    node_count: u64,
    target_count: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

impl GraphStore {
    /// Opens a `.swg` store, via `mmap` when available (see
    /// [`map_readonly`](crate::map_readonly)). The header, section table,
    /// and every section checksum are validated before this returns.
    ///
    /// # Errors
    ///
    /// Returns the appropriate [`StoreError`] variant for I/O failures,
    /// foreign files, version or endianness mismatches, truncation, and
    /// checksum failures.
    pub fn open(path: impl AsRef<Path>) -> Result<GraphStore, StoreError> {
        let mapping = map_readonly(path.as_ref())?;
        Self::from_mapping(mapping)
    }

    /// Opens a `.swg` store by reading the whole file into an owned buffer,
    /// bypassing `mmap` even when available — the portable fallback path,
    /// kept public so benchmarks can measure both against each other.
    ///
    /// # Errors
    ///
    /// Same contract as [`GraphStore::open`].
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<GraphStore, StoreError> {
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_mapping(Mapping::Owned(bytes))
    }

    fn from_mapping(mapping: Mapping) -> Result<GraphStore, StoreError> {
        let bytes: &[u8] = &mapping;
        // wrong-format files are reported as such even when short, so check
        // the magic before requiring a full header
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated { what: "header" });
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        if read_u32(bytes, 12) != ENDIAN_MARKER {
            return Err(StoreError::Corrupt("endianness marker mismatch".into()));
        }
        let dim = read_u32(bytes, 16);
        let flags = read_u32(bytes, 20);
        let node_count = read_u64(bytes, 24);
        let target_count = read_u64(bytes, 32);
        let section_count = read_u32(bytes, 40) as usize;
        let stored_crc = read_u32(bytes, 44);

        let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(StoreError::Truncated { what: "section table" });
        }
        let mut crc_state = crc32_update(0xFFFF_FFFF, &bytes[..44]);
        crc_state = crc32_update(crc_state, &bytes[HEADER_LEN..table_end]);
        if crc_state ^ 0xFFFF_FFFF != stored_crc {
            return Err(StoreError::ChecksumMismatch { section: "header" });
        }

        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let id = read_u32(bytes, at);
            let crc = read_u32(bytes, at + 4);
            let offset = read_u64(bytes, at + 8) as usize;
            let len = read_u64(bytes, at + 16) as usize;
            let end = offset.checked_add(len).ok_or_else(|| {
                StoreError::Corrupt(format!("section {id} extent overflows"))
            })?;
            if end > bytes.len() {
                return Err(StoreError::Truncated { what: "section payload" });
            }
            if crc32(&bytes[offset..end]) != crc {
                return Err(StoreError::ChecksumMismatch {
                    section: section_name(id),
                });
            }
            sections.push(SectionEntry { id, offset, len });
        }

        Ok(GraphStore {
            mapping,
            sections,
            dim,
            flags,
            node_count,
            target_count,
        })
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        (self.target_count / 2) as usize
    }

    /// Total neighbor-list entries (`2m`), from the header.
    pub(crate) fn target_count(&self) -> usize {
        self.target_count as usize
    }

    /// Stored torus dimension (0 for a bare graph).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Whether geometry sections (POS/WEIGHT/META) are present.
    pub fn has_geometry(&self) -> bool {
        self.flags & FLAG_GEOMETRY != 0
    }

    /// Whether a shard partition is stored.
    pub fn has_shards(&self) -> bool {
        self.flags & FLAG_SHARDS != 0
    }

    /// Whether the backing bytes are a live memory mapping rather than an
    /// owned copy.
    pub fn is_zero_copy(&self) -> bool {
        self.mapping.is_zero_copy()
    }

    pub(crate) fn section(&self, id: SectionId) -> Result<&[u8], StoreError> {
        self.sections
            .iter()
            .find(|s| s.id == id as u32)
            .map(|s| &self.mapping[s.offset..s.offset + s.len])
            .ok_or(StoreError::MissingSection(id.name()))
    }

    /// The compressed adjacency (copies the two sections out of the
    /// mapping).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the sections are missing or malformed.
    pub fn compressed(&self) -> Result<CompressedCsr, StoreError> {
        let offsets_bytes = self.section(SectionId::Offsets)?;
        let expected = (self.node_count as usize + 1) * 8;
        if offsets_bytes.len() != expected {
            return Err(StoreError::Corrupt(format!(
                "OFFSETS section is {} bytes, expected {expected}",
                offsets_bytes.len()
            )));
        }
        let offsets: Vec<u64> = offsets_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let data = self.section(SectionId::Nbr)?.to_vec();
        CompressedCsr::from_raw_parts(offsets, data, self.target_count as usize)
    }

    /// Decodes the full adjacency into a [`Graph`].
    ///
    /// Goes through [`GraphStore::mapped_graph`], which decodes straight
    /// out of the mapping — no intermediate copy of the NBR bytes or the
    /// offsets index is made (the `open_buffered` fallback used to pay
    /// both copies on top of its owned file buffer).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on missing or malformed sections.
    pub fn load_graph(&self) -> Result<Graph, StoreError> {
        self.mapped_graph()?.decode_full()
    }

    /// The stored model parameters and planted-vertex count.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingSection`] for a bare-graph store and
    /// [`StoreError::Corrupt`] on a malformed META section.
    pub fn params(&self) -> Result<(GirgParams, usize), StoreError> {
        let meta = self.section(SectionId::Meta)?;
        if meta.len() != 48 {
            return Err(StoreError::Corrupt(format!(
                "META section is {} bytes, expected 48",
                meta.len()
            )));
        }
        let f = |i: usize| f64::from_le_bytes(meta[i * 8..(i + 1) * 8].try_into().expect("8"));
        let alpha_raw = f(3);
        let params = GirgParams {
            intensity: f(0),
            beta: f(1),
            wmin: f(2),
            alpha: Alpha::from(alpha_raw),
            lambda: f(4),
        };
        let planted = read_u64(meta, 40) as usize;
        if planted > self.node_count as usize {
            return Err(StoreError::Corrupt(format!(
                "planted count {planted} exceeds {} vertices",
                self.node_count
            )));
        }
        Ok((params, planted))
    }

    fn f64_section(&self, id: SectionId, expected: usize) -> Result<Cow<'_, [f64]>, StoreError> {
        let bytes = self.section(id)?;
        if bytes.len() != expected * 8 {
            return Err(StoreError::Corrupt(format!(
                "{} section is {} bytes, expected {}",
                id.name(),
                bytes.len(),
                expected * 8
            )));
        }
        #[cfg(target_endian = "little")]
        {
            // SAFETY: every bit pattern is a valid f64; align_to only
            // reinterprets, and the borrowed path is taken solely when the
            // slice is 8-aligned (mmap'd sections are page-aligned).
            let (pre, mid, post) = unsafe { bytes.align_to::<f64>() };
            if pre.is_empty() && post.is_empty() {
                return Ok(Cow::Borrowed(mid));
            }
        }
        Ok(Cow::Owned(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect(),
        ))
    }

    /// The packed position coordinates: `node_count · dim` canonical torus
    /// coordinates, vertex-major. Zero-copy when the section is aligned in
    /// a little-endian mapping.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if geometry is absent or malformed.
    pub fn packed_positions(&self) -> Result<Cow<'_, [f64]>, StoreError> {
        self.f64_section(
            SectionId::Pos,
            self.node_count as usize * self.dim as usize,
        )
    }

    /// The packed vertex weights (`node_count` values). Zero-copy when
    /// aligned, like [`GraphStore::packed_positions`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if geometry is absent or malformed.
    pub fn packed_weights(&self) -> Result<Cow<'_, [f64]>, StoreError> {
        self.f64_section(SectionId::Weight, self.node_count as usize)
    }

    /// Reassembles the stored GIRG: adjacency, positions, weights, and
    /// parameters, bit-for-bit as written.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DimensionMismatch`] when `D` differs from the
    /// stored dimension, and the usual variants for missing/corrupt
    /// sections. Non-finite or out-of-range coordinates are rejected as
    /// [`StoreError::Corrupt`] rather than panicking.
    pub fn load_girg<const D: usize>(&self) -> Result<Girg<D>, StoreError> {
        if self.dim as usize != D {
            return Err(StoreError::DimensionMismatch {
                file: self.dim,
                expected: D as u32,
            });
        }
        let graph = self.load_graph()?;
        let flat = self.packed_positions()?;
        let mut positions = Vec::with_capacity(self.node_count as usize);
        for chunk in flat.chunks_exact(D) {
            let mut coords = [0.0f64; D];
            coords.copy_from_slice(chunk);
            for &c in &coords {
                if !(0.0..1.0).contains(&c) {
                    return Err(StoreError::Corrupt(format!(
                        "position coordinate {c} outside the canonical torus"
                    )));
                }
            }
            positions.push(Point::new(coords));
        }
        let weights = self.packed_weights()?;
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(StoreError::Corrupt("non-finite vertex weight".into()));
        }
        let (params, planted) = self.params()?;
        if graph.node_count() != self.node_count as usize {
            return Err(StoreError::Corrupt(
                "adjacency and header disagree on the vertex count".into(),
            ));
        }
        Ok(Girg::from_parts(
            graph,
            positions,
            weights.into_owned(),
            params,
            planted,
        ))
    }

    /// Loads the stored shard partition.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingSection`] when the store was written
    /// without shards, or [`StoreError::Corrupt`] on malformed payload.
    pub fn load_shards(&self) -> Result<ShardedStore, StoreError> {
        ShardedStore::from_bytes(self.section(SectionId::Shards)?, self.node_count as usize)
    }
}

fn section_name(id: u32) -> &'static str {
    match id {
        1 => "META",
        2 => "OFFSETS",
        3 => "NBR",
        4 => "POS",
        5 => "WEIGHT",
        6 => "SHARDS",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_up_is_exact_on_boundaries() {
        assert_eq!(round_up(0, PAGE), 0);
        assert_eq!(round_up(1, PAGE), PAGE);
        assert_eq!(round_up(PAGE, PAGE), PAGE);
        assert_eq!(round_up(PAGE + 1, PAGE), 2 * PAGE);
    }
}
