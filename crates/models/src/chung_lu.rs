//! Chung–Lu random graphs: the non-geometric baseline.
//!
//! In a Chung–Lu graph with weights `w₁, …, w_n`, each pair is independently
//! an edge with probability `min(1, w_u w_v / Σw)`. Lemma 7.1 shows that a
//! GIRG has exactly these *marginal* connection probabilities once positions
//! are integrated out — so the Chung–Lu graph is the natural "GIRG without
//! geometry" control. It has the same degree sequence but no clustering and
//! no notion of a position to route towards.
//!
//! Sampling uses the Miller–Hagberg skipping algorithm over weight-sorted
//! vertices, running in `O(n + m)` expected time.

use rand::Rng;

use smallworld_graph::{Graph, NodeId};

use crate::weights::PowerLaw;
use crate::{check_param, ModelError};

/// A sampled Chung–Lu graph.
#[derive(Clone, Debug)]
pub struct ChungLu {
    graph: Graph,
    weights: Vec<f64>,
}

impl ChungLu {
    /// Samples a Chung–Lu graph from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if fewer than one weight is
    /// given or any weight is non-positive or non-finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use smallworld_models::chung_lu::ChungLu;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    /// let cl = ChungLu::from_weights(vec![1.0; 500], &mut rng)?;
    /// // expected degree of every vertex is ~1
    /// assert!(cl.graph().average_degree() < 3.0);
    /// # Ok::<(), smallworld_models::ModelError>(())
    /// ```
    pub fn from_weights<R: Rng + ?Sized>(
        weights: Vec<f64>,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        check_param("n", weights.len() as f64, !weights.is_empty(), "need at least one weight")?;
        for &w in &weights {
            check_param("weight", w, w > 0.0 && w.is_finite(), "must be positive and finite")?;
        }
        let graph = sample_miller_hagberg(&weights, rng);
        Ok(ChungLu { graph, weights })
    }

    /// Samples a Chung–Lu graph with `n` i.i.d. power-law weights —
    /// the degree-matched twin of a GIRG.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for invalid `β`/`w_min` or
    /// `n == 0`.
    pub fn power_law<R: Rng + ?Sized>(
        n: usize,
        beta: f64,
        wmin: f64,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        check_param("n", n as f64, n > 0, "must be positive")?;
        let pl = PowerLaw::new(beta, wmin)?;
        let weights: Vec<f64> = (0..n).map(|_| pl.sample(rng)).collect();
        Self::from_weights(weights, rng)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The vertex weights, indexed by [`NodeId::index`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn weight(&self, v: NodeId) -> f64 {
        self.weights[v.index()]
    }
}

/// A reusable power-law [`ChungLu`] configuration, for harnesses that drive
/// models through [`crate::GraphModel`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::ChungLuBuilder;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let cl = ChungLuBuilder::new(1_000).beta(2.5).wmin(1.0).sample(&mut rng)?;
/// assert_eq!(cl.graph().node_count(), 1_000);
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChungLuBuilder {
    n: usize,
    beta: f64,
    wmin: f64,
}

impl ChungLuBuilder {
    /// Starts a configuration for an `n`-vertex power-law Chung–Lu graph.
    ///
    /// Defaults: `β = 2.5`, `w_min = 1`.
    pub fn new(n: usize) -> Self {
        ChungLuBuilder {
            n,
            beta: 2.5,
            wmin: 1.0,
        }
    }

    /// Sets the power-law exponent `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the minimum weight `w_min`.
    pub fn wmin(mut self, wmin: f64) -> Self {
        self.wmin = wmin;
        self
    }

    /// Samples the configured graph.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] exactly as
    /// [`ChungLu::power_law`] does.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<ChungLu, ModelError> {
        ChungLu::power_law(self.n, self.beta, self.wmin, rng)
    }
}

/// Miller–Hagberg sampling: vertices sorted by decreasing weight; for each
/// `u`, candidate partners are visited with geometric jumps under the
/// current probability bound and thinned to the exact probability.
fn sample_miller_hagberg<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .expect("weights are finite")
    });

    let mut builder = Graph::builder(n);
    for i in 0..n {
        let wu = weights[order[i] as usize];
        let mut j = i + 1;
        while j < n {
            // bound valid for all j' >= j because weights are sorted
            let bound = (wu * weights[order[j] as usize] / total).min(1.0);
            if bound <= 0.0 {
                break;
            }
            if bound < 1.0 {
                // skip over failures
                let u: f64 = 1.0 - rng.gen::<f64>();
                let skip = (u.ln() / (1.0 - bound).ln()).floor();
                if skip >= (n - j) as f64 {
                    break;
                }
                j += skip as usize;
            }
            let p = (wu * weights[order[j] as usize] / total).min(1.0);
            if rng.gen::<f64>() * bound < p {
                builder
                    .add_edge(NodeId::new(order[i]), NodeId::new(order[j]))
                    .expect("valid edge");
            }
            j += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ChungLu::from_weights(vec![], &mut rng).is_err());
        assert!(ChungLu::from_weights(vec![1.0, 0.0], &mut rng).is_err());
        assert!(ChungLu::from_weights(vec![1.0, -2.0], &mut rng).is_err());
        assert!(ChungLu::from_weights(vec![1.0, f64::NAN], &mut rng).is_err());
        assert!(ChungLu::power_law(0, 2.5, 1.0, &mut rng).is_err());
    }

    #[test]
    fn expected_degrees_match_weights() {
        // vertex of weight w has expected degree ~ w (for w << sqrt(total))
        let mut weights = vec![1.0; 5_000];
        weights[0] = 50.0;
        let reps = 30;
        let mut deg_sum = 0usize;
        let mut avg_sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let cl = ChungLu::from_weights(weights.clone(), &mut rng).unwrap();
            deg_sum += cl.graph().degree(NodeId::new(0));
            avg_sum += cl.graph().average_degree();
        }
        let hub_mean = deg_sum as f64 / reps as f64;
        // expected degree of hub = w * (total - w)/total ≈ 49.5
        assert!((hub_mean - 49.5).abs() < 5.0, "hub mean degree {hub_mean}");
        let avg = avg_sum / reps as f64;
        assert!((avg - 1.0).abs() < 0.2, "average degree {avg}");
    }

    #[test]
    fn matches_naive_sampler_statistically() {
        // naive O(n^2) reference on the same weights
        let mut rng = StdRng::seed_from_u64(7);
        let pl = PowerLaw::new(2.5, 1.0).unwrap();
        let weights: Vec<f64> = (0..400).map(|_| pl.sample(&mut rng)).collect();
        let total: f64 = weights.iter().sum();
        let reps = 60;
        let mut fast_edges = 0usize;
        let mut naive_edges = 0usize;
        for _ in 0..reps {
            fast_edges += sample_miller_hagberg(&weights, &mut rng).edge_count();
            let mut count = 0usize;
            for u in 0..weights.len() {
                for v in (u + 1)..weights.len() {
                    let p = (weights[u] * weights[v] / total).min(1.0);
                    if rng.gen::<f64>() < p {
                        count += 1;
                    }
                }
            }
            naive_edges += count;
        }
        let (f, s) = (fast_edges as f64 / reps as f64, naive_edges as f64 / reps as f64);
        let tol = 6.0 * (f.max(s) / reps as f64).sqrt().max(1.0);
        assert!((f - s).abs() < tol, "fast={f} naive={s} tol={tol}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = StdRng::seed_from_u64(8);
        let cl = ChungLu::power_law(2_000, 2.5, 2.0, &mut rng).unwrap();
        for v in cl.graph().nodes() {
            let nbrs = cl.graph().neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            assert!(!nbrs.contains(&v));
        }
    }

    #[test]
    fn heavy_pair_connects_with_probability_one() {
        // two vertices with wu·wv >= total must always be adjacent
        let mut weights = vec![1.0; 100];
        weights[0] = 40.0;
        weights[1] = 40.0; // 1600 >= 138
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cl = ChungLu::from_weights(weights.clone(), &mut rng).unwrap();
            assert!(cl.graph().has_edge(NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    fn weight_accessors() {
        let mut rng = StdRng::seed_from_u64(9);
        let cl = ChungLu::from_weights(vec![3.0, 4.0], &mut rng).unwrap();
        assert_eq!(cl.weight(NodeId::new(1)), 4.0);
        assert_eq!(cl.weights(), &[3.0, 4.0]);
    }
}
