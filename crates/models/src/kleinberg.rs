//! Kleinberg's small-world model and its "noisy positions" variant (§1.1).
//!
//! [`KleinbergLattice`] is the classical model: an `m × m` lattice (we use
//! the torus lattice for symmetry, matching the paper's own torus
//! convention) where every node additionally receives `q` long-range
//! contacts, the contact at lattice distance `k` chosen with probability
//! proportional to `k^{−r}`. Greedy routing needs `O(log² m²)` steps exactly
//! at `r = 2` and `m^{Ω(1)}` steps otherwise — the fragile-exponent
//! shortcoming the paper discusses.
//!
//! [`ContinuumKleinberg`] replaces the perfect lattice by uniformly random
//! positions on `T²` ("in a more realistic model each vertex might choose a
//! random position", §1.1): local edges connect vertices within a small
//! radius and long-range edges follow the same `distance^{−αd}` law. The
//! paper observes that greedy (distance-only) routing then fails with high
//! probability — experiment `exp_kleinberg` reproduces this.

use rand::Rng;

use smallworld_geometry::{Grid, Point};
use smallworld_graph::{Graph, NodeId};

use crate::poisson::sample_poisson;
use crate::{check_param, ModelError};

/// Kleinberg's lattice small-world model on the torus lattice `Z_m × Z_m`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::KleinbergLattice;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kl = KleinbergLattice::sample(20, 2.0, 1, &mut rng)?;
/// assert_eq!(kl.graph().node_count(), 400);
/// // every node has its 4 lattice neighbors
/// assert!(kl.graph().nodes().all(|v| kl.graph().degree(v) >= 4));
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KleinbergLattice {
    side: u32,
    exponent: f64,
    contacts_per_node: usize,
    graph: Graph,
}

impl KleinbergLattice {
    /// Samples the model: `side × side` torus lattice, long-range exponent
    /// `r` (Kleinberg's navigable point is `r = d = 2`), `q` long-range
    /// contacts per node.
    ///
    /// Long-range edges are made undirected, following common experimental
    /// practice.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `side < 4` or `r < 0` or
    /// `r` is not finite.
    pub fn sample<R: Rng + ?Sized>(
        side: u32,
        exponent: f64,
        contacts_per_node: usize,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        check_param("side", side as f64, side >= 4, "must be at least 4")?;
        check_param(
            "exponent",
            exponent,
            exponent >= 0.0 && exponent.is_finite(),
            "must be finite and non-negative",
        )?;
        let n = side as usize * side as usize;
        let mut builder = Graph::builder(n);

        // lattice edges (torus)
        for x in 0..side {
            for y in 0..side {
                let u = Self::id(side, x, y);
                let right = Self::id(side, (x + 1) % side, y);
                let down = Self::id(side, x, (y + 1) % side);
                builder.add_edge(u, right).expect("valid lattice edge");
                builder.add_edge(u, down).expect("valid lattice edge");
            }
        }

        // long-range contacts: distance k chosen ∝ (number of nodes at
        // distance k) · k^{−r} = 4k·k^{−r}, for k = 1 .. side/2 − 1 (where
        // the torus shell size is exactly 4k)
        let kmax = (side / 2).saturating_sub(1).max(1);
        let mut cumulative = Vec::with_capacity(kmax as usize);
        let mut total = 0.0;
        for k in 1..=kmax {
            total += 4.0 * (k as f64).powf(1.0 - exponent);
            cumulative.push(total);
        }
        for x in 0..side {
            for y in 0..side {
                let u = Self::id(side, x, y);
                for _ in 0..contacts_per_node {
                    let target = total * rng.gen::<f64>();
                    let k = cumulative.partition_point(|&c| c < target) as u32 + 1;
                    let (dx, dy) = random_shell_offset(k, rng);
                    let vx = (x as i64 + dx).rem_euclid(side as i64) as u32;
                    let vy = (y as i64 + dy).rem_euclid(side as i64) as u32;
                    let v = Self::id(side, vx, vy);
                    if u != v {
                        builder.add_edge(u, v).expect("valid long-range edge");
                    }
                }
            }
        }

        Ok(KleinbergLattice {
            side,
            exponent,
            contacts_per_node,
            graph: builder.build(),
        })
    }

    fn id(side: u32, x: u32, y: u32) -> NodeId {
        NodeId::new(x * side + y)
    }

    /// Lattice side length `m`.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The long-range exponent `r`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Long-range contacts per node `q`.
    pub fn contacts_per_node(&self) -> usize {
        self.contacts_per_node
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Lattice coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn coords(&self, v: NodeId) -> (u32, u32) {
        let raw = v.raw();
        assert!(raw < self.side * self.side, "node {v} out of range");
        (raw / self.side, raw % self.side)
    }

    /// The node at lattice coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range.
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        assert!(x < self.side && y < self.side, "coordinate out of range");
        Self::id(self.side, x, y)
    }

    /// Torus Manhattan distance between two nodes — the quantity greedy
    /// routing minimizes in Kleinberg's model.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn lattice_distance(&self, u: NodeId, v: NodeId) -> u32 {
        let (ux, uy) = self.coords(u);
        let (vx, vy) = self.coords(v);
        circ(ux, vx, self.side) + circ(uy, vy, self.side)
    }

    /// A uniformly random node.
    pub fn random_vertex<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        NodeId::from_index(rng.gen_range(0..self.graph.node_count()))
    }
}

/// A reusable [`KleinbergLattice`] configuration, for harnesses that drive
/// models through [`crate::GraphModel`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::KleinbergLatticeBuilder;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kl = KleinbergLatticeBuilder::new(20)
///     .exponent(2.0)
///     .contacts_per_node(1)
///     .sample(&mut rng)?;
/// assert_eq!(kl.graph().node_count(), 400);
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KleinbergLatticeBuilder {
    side: u32,
    exponent: f64,
    contacts_per_node: usize,
}

impl KleinbergLatticeBuilder {
    /// Starts a configuration for a `side × side` lattice.
    ///
    /// Defaults: exponent `r = 2` (Kleinberg's navigable point) and one
    /// long-range contact per node.
    pub fn new(side: u32) -> Self {
        KleinbergLatticeBuilder {
            side,
            exponent: 2.0,
            contacts_per_node: 1,
        }
    }

    /// Sets the long-range exponent `r`.
    pub fn exponent(mut self, exponent: f64) -> Self {
        self.exponent = exponent;
        self
    }

    /// Sets the number of long-range contacts per node `q`.
    pub fn contacts_per_node(mut self, q: usize) -> Self {
        self.contacts_per_node = q;
        self
    }

    /// Samples the configured lattice.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] exactly as
    /// [`KleinbergLattice::sample`] does.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<KleinbergLattice, ModelError> {
        KleinbergLattice::sample(self.side, self.exponent, self.contacts_per_node, rng)
    }
}

/// Circular axis distance on `Z_m`.
fn circ(a: u32, b: u32, m: u32) -> u32 {
    let d = a.abs_diff(b);
    d.min(m - d)
}

/// Uniform offset among the `4k` lattice points at Manhattan distance `k`.
fn random_shell_offset<R: Rng + ?Sized>(k: u32, rng: &mut R) -> (i64, i64) {
    let idx = rng.gen_range(0..4 * i64::from(k));
    // parametrize the diamond: walk its perimeter
    let k = i64::from(k);
    let (side, off) = (idx / k, idx % k);
    match side {
        0 => (off, k - off),        // east-north edge: (0,k) -> (k,0)
        1 => (k - off, -off),       // north-.. : (k,0) -> (0,-k)
        2 => (-off, -(k - off)),    // (0,-k) -> (-k,0)
        _ => (-(k - off), off),     // (-k,0) -> (0,k)
    }
}

/// The "noisy positions" Kleinberg variant: random positions on `T²`, local
/// edges within a radius, long-range edges with a `distance^{−2α}` law.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::ContinuumKleinberg;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ck = ContinuumKleinberg::sample(1_000, 1.0, 1, 2.0, &mut rng)?;
/// assert!(ck.graph().node_count() > 800);
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ContinuumKleinberg {
    graph: Graph,
    positions: Vec<Point<2>>,
    local_radius: f64,
}

impl ContinuumKleinberg {
    /// Samples the continuum model with intensity `n` (Poisson vertex
    /// count), long-range probability `∝ dist^{−2α·…}` parametrized so that
    /// `alpha = 1` matches Kleinberg's navigable exponent `r = d`, `q`
    /// long-range contacts per node, and local edges within max-norm radius
    /// `(local_degree / (4n))^{1/2}`-ish — concretely radius
    /// `0.5 · (local_degree / n)^{1/2}` so the expected number of local
    /// neighbors is `local_degree`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `n == 0`, `alpha ≤ 0`, or
    /// `local_degree ≤ 0`.
    pub fn sample<R: Rng + ?Sized>(
        n: u64,
        alpha: f64,
        contacts_per_node: usize,
        local_degree: f64,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        check_param("n", n as f64, n > 0, "must be positive")?;
        check_param("alpha", alpha, alpha > 0.0 && alpha.is_finite(), "must be > 0")?;
        check_param(
            "local_degree",
            local_degree,
            local_degree > 0.0 && local_degree.is_finite(),
            "must be > 0",
        )?;

        let count = sample_poisson(rng, n as f64) as usize;
        let positions: Vec<Point<2>> = (0..count).map(|_| Point::random(rng)).collect();
        // expected local degree = n · (2·radius)² (max-norm ball area)
        let local_radius = 0.5 * (local_degree / n as f64).sqrt();

        // spatial index: grid with cell side >= local_radius
        let level = ((1.0 / local_radius).log2().floor() as u32).clamp(1, 15);
        let grid: Grid<2> = Grid::new(level);
        let cells_per_side = grid.cells_per_side();
        let mut buckets: Vec<Vec<u32>> =
            vec![Vec::new(); (cells_per_side as usize) * (cells_per_side as usize)];
        let bucket_of = |p: &Point<2>| -> usize {
            let c = grid.cell_coords_of(p);
            (c[0] as usize) * cells_per_side as usize + c[1] as usize
        };
        for (v, p) in positions.iter().enumerate() {
            buckets[bucket_of(p)].push(v as u32);
        }

        let mut builder = Graph::builder(count);

        // local edges: scan the 3x3 cell neighborhood
        for (v, p) in positions.iter().enumerate() {
            let c = grid.cell_coords_of(p);
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    let bx = (c[0] as i64 + dx).rem_euclid(cells_per_side as i64) as usize;
                    let by = (c[1] as i64 + dy).rem_euclid(cells_per_side as i64) as usize;
                    for &u in &buckets[bx * cells_per_side as usize + by] {
                        if (u as usize) > v && positions[v].distance(&positions[u as usize]) <= local_radius
                        {
                            builder
                                .add_edge(NodeId::from_index(v), NodeId::new(u))
                                .expect("valid local edge");
                        }
                    }
                }
            }
        }

        // long-range edges: radial inverse transform of density ∝ ρ^{1−2α}
        // on [local_radius, 1/2], uniform direction, partner = nearest vertex
        for v in 0..count {
            for _ in 0..contacts_per_node {
                let rho = sample_radial(local_radius, 0.5, alpha, rng);
                let phi = rng.gen::<f64>() * std::f64::consts::TAU;
                let target = positions[v].translate(&[rho * phi.cos(), rho * phi.sin()]);
                if let Some(u) = nearest_vertex(&target, &positions, &buckets, &grid, v as u32) {
                    builder
                        .add_edge(NodeId::from_index(v), NodeId::new(u))
                        .expect("valid long-range edge");
                }
            }
        }

        Ok(ContinuumKleinberg {
            graph: builder.build(),
            positions,
            local_radius,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Vertex positions on `T²`.
    pub fn positions(&self) -> &[Point<2>] {
        &self.positions
    }

    /// The local connection radius.
    pub fn local_radius(&self) -> f64 {
        self.local_radius
    }

    /// Position of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: NodeId) -> Point<2> {
        self.positions[v.index()]
    }

    /// A uniformly random vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn random_vertex<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        assert!(self.graph.node_count() > 0, "empty graph");
        NodeId::from_index(rng.gen_range(0..self.graph.node_count()))
    }
}

/// Inverse-transform sample of density `∝ ρ^{1−2α}` on `[lo, hi]`.
fn sample_radial<R: Rng + ?Sized>(lo: f64, hi: f64, alpha: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    let e = 2.0 - 2.0 * alpha; // exponent of the antiderivative ρ^e
    if e.abs() < 1e-9 {
        // density ∝ 1/ρ: log-uniform
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        let (a, b) = (lo.powf(e), hi.powf(e));
        (a + u * (b - a)).powf(1.0 / e)
    }
}

/// Nearest vertex to `target` (excluding `exclude`), via expanding grid rings.
fn nearest_vertex(
    target: &Point<2>,
    positions: &[Point<2>],
    buckets: &[Vec<u32>],
    grid: &Grid<2>,
    exclude: u32,
) -> Option<u32> {
    let m = grid.cells_per_side() as i64;
    let c = grid.cell_coords_of(target);
    let side = grid.cell_side();
    let mut best: Option<(f64, u32)> = None;
    let max_ring = m / 2;
    for ring in 0..=max_ring {
        // cells at Chebyshev ring distance `ring`
        for dx in -ring..=ring {
            for dy in -ring..=ring {
                if dx.abs().max(dy.abs()) != ring {
                    continue;
                }
                let bx = (c[0] as i64 + dx).rem_euclid(m) as usize;
                let by = (c[1] as i64 + dy).rem_euclid(m) as usize;
                for &u in &buckets[bx * m as usize + by] {
                    if u == exclude {
                        continue;
                    }
                    let d = target.distance(&positions[u as usize]);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, u));
                    }
                }
            }
        }
        // any point in a farther ring is at distance > (ring)·side
        if let Some((bd, u)) = best {
            if bd <= ring as f64 * side {
                return Some(u);
            }
        }
    }
    best.map(|(_, u)| u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lattice_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(KleinbergLattice::sample(3, 2.0, 1, &mut rng).is_err());
        assert!(KleinbergLattice::sample(10, -1.0, 1, &mut rng).is_err());
        assert!(KleinbergLattice::sample(10, f64::NAN, 1, &mut rng).is_err());
    }

    #[test]
    fn lattice_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let kl = KleinbergLattice::sample(8, 2.0, 0, &mut rng).unwrap();
        // no long-range contacts: pure torus lattice, all degrees exactly 4
        assert_eq!(kl.graph().node_count(), 64);
        assert!(kl.graph().nodes().all(|v| kl.graph().degree(v) == 4));
        assert_eq!(kl.graph().edge_count(), 128);
    }

    #[test]
    fn long_range_contacts_add_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let kl = KleinbergLattice::sample(16, 2.0, 2, &mut rng).unwrap();
        // 2 contacts per node beyond the lattice's 512 edges (some dedup)
        assert!(kl.graph().edge_count() > 512 + 300);
    }

    #[test]
    fn coords_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let kl = KleinbergLattice::sample(9, 2.0, 0, &mut rng).unwrap();
        for x in 0..9 {
            for y in 0..9 {
                let v = kl.node_at(x, y);
                assert_eq!(kl.coords(v), (x, y));
            }
        }
    }

    #[test]
    fn lattice_distance_is_torus_manhattan() {
        let mut rng = StdRng::seed_from_u64(4);
        let kl = KleinbergLattice::sample(10, 2.0, 0, &mut rng).unwrap();
        let a = kl.node_at(0, 0);
        let b = kl.node_at(9, 9);
        // wraps: distance 1+1
        assert_eq!(kl.lattice_distance(a, b), 2);
        let c = kl.node_at(5, 5);
        assert_eq!(kl.lattice_distance(a, c), 10);
        assert_eq!(kl.lattice_distance(a, a), 0);
    }

    #[test]
    fn lattice_neighbors_at_distance_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let kl = KleinbergLattice::sample(12, 2.0, 0, &mut rng).unwrap();
        let v = kl.node_at(3, 3);
        for &u in kl.graph().neighbors(v) {
            assert_eq!(kl.lattice_distance(u, v), 1);
        }
    }

    #[test]
    fn shell_offsets_have_right_distance() {
        let mut rng = StdRng::seed_from_u64(6);
        for k in 1..8u32 {
            for _ in 0..100 {
                let (dx, dy) = random_shell_offset(k, &mut rng);
                assert_eq!(dx.abs() + dy.abs(), k as i64, "k={k} dx={dx} dy={dy}");
            }
        }
    }

    #[test]
    fn shell_offsets_cover_all_points() {
        // for k=2 the 8 shell points should all appear
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(random_shell_offset(2, &mut rng));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn continuum_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!(ContinuumKleinberg::sample(0, 1.0, 1, 2.0, &mut rng).is_err());
        assert!(ContinuumKleinberg::sample(100, 0.0, 1, 2.0, &mut rng).is_err());
        assert!(ContinuumKleinberg::sample(100, 1.0, 1, 0.0, &mut rng).is_err());
    }

    #[test]
    fn continuum_local_degree_close_to_target() {
        let mut rng = StdRng::seed_from_u64(9);
        let ck = ContinuumKleinberg::sample(4_000, 1.0, 0, 6.0, &mut rng).unwrap();
        let avg = ck.graph().average_degree();
        assert!((avg - 6.0).abs() < 1.0, "avg={avg}");
    }

    #[test]
    fn continuum_local_edges_within_radius() {
        let mut rng = StdRng::seed_from_u64(10);
        let ck = ContinuumKleinberg::sample(1_000, 1.0, 0, 4.0, &mut rng).unwrap();
        for (u, v) in ck.graph().edges() {
            let d = ck.position(u).distance(&ck.position(v));
            assert!(d <= ck.local_radius() + 1e-12);
        }
    }

    #[test]
    fn continuum_long_range_edges_exist() {
        let mut rng = StdRng::seed_from_u64(11);
        let ck = ContinuumKleinberg::sample(2_000, 1.0, 1, 4.0, &mut rng).unwrap();
        let long = ck
            .graph()
            .edges()
            .filter(|&(u, v)| ck.position(u).distance(&ck.position(v)) > ck.local_radius())
            .count();
        assert!(long > 500, "only {long} long-range edges");
    }

    proptest! {
        #[test]
        fn prop_radial_sample_in_range(alpha in 0.5..3.0f64, seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rho = sample_radial(0.01, 0.5, alpha, &mut rng);
            prop_assert!((0.01..=0.5).contains(&rho));
        }

        #[test]
        fn prop_circ_distance(a in 0u32..20, b in 0u32..20) {
            let d = circ(a, b, 20);
            prop_assert!(d <= 10);
            prop_assert_eq!(d, circ(b, a, 20));
        }
    }

    #[test]
    fn nearest_vertex_finds_the_nearest() {
        let positions = vec![
            Point::new([0.1, 0.1]),
            Point::new([0.9, 0.9]),
            Point::new([0.5, 0.5]),
        ];
        let grid: Grid<2> = Grid::new(3);
        let m = grid.cells_per_side() as usize;
        let mut buckets = vec![Vec::new(); m * m];
        for (v, p) in positions.iter().enumerate() {
            let c = grid.cell_coords_of(p);
            buckets[c[0] as usize * m + c[1] as usize].push(v as u32);
        }
        let target = Point::new([0.52, 0.52]);
        assert_eq!(nearest_vertex(&target, &positions, &buckets, &grid, 99), Some(2));
        // excluding the nearest falls back to the next one (wrap-aware)
        let near_origin = Point::new([0.95, 0.95]);
        assert_eq!(nearest_vertex(&near_origin, &positions, &buckets, &grid, 1), Some(0));
    }
}
