//! Exact Poisson sampling.
//!
//! The GIRG vertex set is a Poisson point process of intensity `n` on the
//! torus (§2.1), realized as `N ~ Pois(n)` i.i.d. uniform points. We sample
//! `N` *exactly* (no normal approximation): the layer arguments of the paper
//! lean on independence of disjoint regions, which only holds for the true
//! Poisson distribution.

use rand::Rng;

/// Largest chunk mean for Knuth's product method; `e^{-CHUNK}` is still
/// comfortably inside `f64` range and the loop stays short.
const CHUNK: f64 = 16.0;

/// Samples `Pois(lambda)` exactly.
///
/// Uses Knuth's product-of-uniforms method on chunks of mean ≤ 16 and sums
/// the chunks (a sum of independent Poissons is Poisson). Runs in `O(λ)`
/// expected time, which is fine for the one draw per sampled graph.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::poisson::sample_poisson;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = sample_poisson(&mut rng, 1000.0);
/// assert!((700..1300).contains(&(n as i64)));
/// assert_eq!(sample_poisson(&mut rng, 0.0), 0);
/// ```
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson rate must be finite and non-negative, got {lambda}"
    );
    let mut remaining = lambda;
    let mut total = 0u64;
    while remaining > CHUNK {
        total += knuth(rng, CHUNK);
        remaining -= CHUNK;
    }
    total + knuth(rng, remaining)
}

/// Knuth's method for small means: count uniforms until their product drops
/// below `e^{-λ}`.
fn knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let threshold = (-lambda).exp();
    let mut product = 1.0f64;
    let mut count = 0u64;
    loop {
        product *= rng.gen::<f64>();
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn moments(lambda: f64, reps: usize, seed: u64) -> (f64, f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..reps)
            .map(|_| sample_poisson(&mut rng, lambda) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / reps as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (reps - 1) as f64;
        (mean, var)
    }

    #[test]
    fn zero_rate_gives_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = sample_poisson(&mut rng, -1.0);
    }

    #[test]
    fn small_mean_matches_moments() {
        let (mean, var) = moments(3.0, 60_000, 1);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 3.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn chunked_mean_matches_moments() {
        // exercises the chunking path (λ > 16)
        let (mean, var) = moments(100.0, 20_000, 2);
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
        assert!((var - 100.0).abs() < 5.0, "var={var}");
    }

    #[test]
    fn large_mean_is_concentrated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let x = sample_poisson(&mut rng, 1e5) as f64;
            // 10 standard deviations
            assert!((x - 1e5).abs() < 10.0 * (1e5f64).sqrt());
        }
    }

    #[test]
    fn pmf_at_zero_matches() {
        // Pr[Pois(2) = 0] = e^{-2} ≈ 0.1353
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let reps = 100_000;
        let zeros = (0..reps)
            .filter(|_| sample_poisson(&mut rng, 2.0) == 0)
            .count();
        let f = zeros as f64 / reps as f64;
        assert!((f - (-2.0f64).exp()).abs() < 0.005, "f={f}");
    }

    #[test]
    fn boundary_chunk_rate() {
        // λ exactly at the chunk size
        let (mean, _) = moments(16.0, 40_000, 5);
        assert!((mean - 16.0).abs() < 0.15, "mean={mean}");
    }
}
