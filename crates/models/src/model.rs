//! The model abstraction: one trait for every generator in this crate.
//!
//! Each model historically exposed its own ad-hoc sampling entry point —
//! builder methods on [`GirgBuilder`]/[`HrgBuilder`], associated functions
//! on [`KleinbergLattice`] and [`ChungLu`]. [`GraphModel`] unifies them
//! behind a single shape: a configured model turns a master seed into a
//! sampled instance (`Result` out), and every instance exposes its graph
//! through [`GraphInstance`]. Harnesses and generator binaries can therefore
//! drive any model generically, and the seed-in signature keeps replication
//! trivial: the same configuration and seed reproduce the same graph
//! bit-for-bit regardless of the caller's RNG state.
//!
//! # Examples
//!
//! ```
//! use smallworld_models::girg::GirgBuilder;
//! use smallworld_models::{GraphInstance, GraphModel, KleinbergLatticeBuilder};
//!
//! fn average_degree<M: GraphModel>(model: &M, seed: u64) -> f64 {
//!     let instance = model.sample_seeded(seed).expect("valid parameters");
//!     instance.graph().average_degree()
//! }
//!
//! let girg = GirgBuilder::<2>::new(1_000).beta(2.5);
//! let lattice = KleinbergLatticeBuilder::new(20).contacts_per_node(1);
//! assert!(average_degree(&girg, 7) > 0.0);
//! assert!(average_degree(&lattice, 7) >= 4.0);
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use smallworld_graph::Graph;

use crate::chung_lu::{ChungLu, ChungLuBuilder};
use crate::girg::{Girg, GirgBuilder};
use crate::hyperbolic::{Hrg, HrgBuilder};
use crate::kleinberg::{ContinuumKleinberg, KleinbergLattice, KleinbergLatticeBuilder};
use crate::ModelError;

/// A sampled model instance that carries an underlying graph.
pub trait GraphInstance {
    /// The sampled graph.
    fn graph(&self) -> &Graph;
}

/// A configured random-graph model: seed in, sampled instance out.
///
/// Implementors are *configurations* (builders), not instances — calling
/// [`GraphModel::sample_seeded`] twice with the same seed produces identical
/// graphs, and different seeds produce independent samples.
pub trait GraphModel {
    /// The sampled instance type.
    type Instance: GraphInstance;

    /// A short identifier for tables and logs (e.g. `"girg"`).
    fn name(&self) -> &'static str;

    /// Samples one instance from a master seed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the configuration is
    /// invalid for this model.
    fn sample_seeded(&self, seed: u64) -> Result<Self::Instance, ModelError>;
}

impl<const D: usize> GraphInstance for Girg<D> {
    fn graph(&self) -> &Graph {
        Girg::graph(self)
    }
}

impl GraphInstance for Hrg {
    fn graph(&self) -> &Graph {
        Hrg::graph(self)
    }
}

impl GraphInstance for KleinbergLattice {
    fn graph(&self) -> &Graph {
        KleinbergLattice::graph(self)
    }
}

impl GraphInstance for ContinuumKleinberg {
    fn graph(&self) -> &Graph {
        ContinuumKleinberg::graph(self)
    }
}

impl GraphInstance for ChungLu {
    fn graph(&self) -> &Graph {
        ChungLu::graph(self)
    }
}

impl<const D: usize> GraphModel for GirgBuilder<D> {
    type Instance = Girg<D>;

    fn name(&self) -> &'static str {
        "girg"
    }

    fn sample_seeded(&self, seed: u64) -> Result<Girg<D>, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample(&mut rng)
    }
}

impl GraphModel for HrgBuilder {
    type Instance = Hrg;

    fn name(&self) -> &'static str {
        "hrg"
    }

    fn sample_seeded(&self, seed: u64) -> Result<Hrg, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample(&mut rng)
    }
}

impl GraphModel for KleinbergLatticeBuilder {
    type Instance = KleinbergLattice;

    fn name(&self) -> &'static str {
        "kleinberg-lattice"
    }

    fn sample_seeded(&self, seed: u64) -> Result<KleinbergLattice, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample(&mut rng)
    }
}

impl GraphModel for ChungLuBuilder {
    type Instance = ChungLu;

    fn name(&self) -> &'static str {
        "chung-lu"
    }

    fn sample_seeded(&self, seed: u64) -> Result<ChungLu, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sampling through the trait is deterministic in the seed.
    fn assert_seed_determinism<M: GraphModel>(model: &M) {
        let a = model.sample_seeded(11).expect("valid config");
        let b = model.sample_seeded(11).expect("valid config");
        let c = model.sample_seeded(12).expect("valid config");
        assert_eq!(a.graph().node_count(), b.graph().node_count(), "{}", model.name());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count(), "{}", model.name());
        let edges_a: Vec<_> = a.graph().edges().collect();
        let edges_b: Vec<_> = b.graph().edges().collect();
        assert_eq!(edges_a, edges_b, "{}", model.name());
        // different seeds should (overwhelmingly) differ somewhere
        let edges_c: Vec<_> = c.graph().edges().collect();
        assert!(
            edges_a != edges_c || a.graph().node_count() != c.graph().node_count(),
            "{}: seeds 11 and 12 coincide",
            model.name()
        );
    }

    #[test]
    fn all_models_are_seed_deterministic() {
        assert_seed_determinism(&GirgBuilder::<2>::new(800).beta(2.5).alpha(2.0));
        assert_seed_determinism(&HrgBuilder::new(800));
        assert_seed_determinism(&KleinbergLatticeBuilder::new(16).contacts_per_node(1));
        assert_seed_determinism(&ChungLuBuilder::new(800).beta(2.5));
    }

    #[test]
    fn model_names_are_distinct() {
        let names = [
            GirgBuilder::<2>::new(10).name(),
            HrgBuilder::new(10).name(),
            KleinbergLatticeBuilder::new(4).name(),
            ChungLuBuilder::new(10).name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn invalid_configurations_error_through_the_trait() {
        assert!(GirgBuilder::<2>::new(100).beta(1.0).sample_seeded(1).is_err());
        assert!(KleinbergLatticeBuilder::new(2).sample_seeded(1).is_err());
        assert!(ChungLuBuilder::new(0).sample_seeded(1).is_err());
    }
}
