//! Power-law weight distributions (§2.1, "Weights").
//!
//! Each GIRG vertex draws an i.i.d. weight with density
//! `f(w) = (β−1) w_min^{β−1} w^{−β}` for `w ≥ w_min`, so that
//! `Pr[W ≥ w] = (w / w_min)^{1−β}`. The weight of a vertex is (up to
//! constants) its expected degree, see Lemma 7.2.

use rand::Rng;

use crate::{check_param, ModelError};

/// A Pareto (pure power-law) distribution with tail exponent `β` and minimum
/// `w_min`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::PowerLaw;
///
/// let pl = PowerLaw::new(2.5, 1.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let w = pl.sample(&mut rng);
/// assert!(w >= 1.0);
/// // mean is w_min (β−1)/(β−2) = 3 for β = 2.5
/// assert_eq!(pl.mean(), Some(3.0));
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    beta: f64,
    wmin: f64,
}

impl PowerLaw {
    /// Creates a power law with tail exponent `beta` and minimum `wmin`.
    ///
    /// The GIRG model restricts `β ∈ (2, 3)`; that restriction is enforced by
    /// the GIRG builder, not here, so that baselines (e.g. Chung–Lu with
    /// other exponents) can reuse this type.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `beta > 1` (otherwise
    /// the density is not normalizable) and `wmin > 0`.
    pub fn new(beta: f64, wmin: f64) -> Result<Self, ModelError> {
        check_param("beta", beta, beta > 1.0 && beta.is_finite(), "must be > 1")?;
        check_param("wmin", wmin, wmin > 0.0 && wmin.is_finite(), "must be > 0")?;
        Ok(PowerLaw { beta, wmin })
    }

    /// The tail exponent β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The minimum weight `w_min`.
    pub fn wmin(&self) -> f64 {
        self.wmin
    }

    /// Draws one weight by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // U ∈ (0, 1]; using 1−gen::<f64>() avoids U = 0 (infinite weight)
        let u = 1.0 - rng.gen::<f64>();
        self.quantile(1.0 - u)
    }

    /// The complementary CDF `Pr[W ≥ w] = (w / w_min)^{1−β}` (1 for
    /// `w ≤ w_min`).
    pub fn ccdf(&self, w: f64) -> f64 {
        if w <= self.wmin {
            1.0
        } else {
            (w / self.wmin).powf(1.0 - self.beta)
        }
    }

    /// The quantile function: the `q`-quantile of the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile order {q} not in [0,1)");
        self.wmin * (1.0 - q).powf(-1.0 / (self.beta - 1.0))
    }

    /// The mean `w_min (β−1)/(β−2)`, or `None` if `β ≤ 2` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        if self.beta > 2.0 {
            Some(self.wmin * (self.beta - 1.0) / (self.beta - 2.0))
        } else {
            None
        }
    }

    /// Expected number of weights `≥ w` among `n` i.i.d. draws.
    pub fn expected_count_above(&self, n: f64, w: f64) -> f64 {
        n * self.ccdf(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(PowerLaw::new(1.0, 1.0).is_err());
        assert!(PowerLaw::new(0.5, 1.0).is_err());
        assert!(PowerLaw::new(2.5, 0.0).is_err());
        assert!(PowerLaw::new(2.5, -1.0).is_err());
        assert!(PowerLaw::new(f64::NAN, 1.0).is_err());
        assert!(PowerLaw::new(2.5, f64::INFINITY).is_err());
    }

    #[test]
    fn accessors() {
        let pl = PowerLaw::new(2.7, 1.5).unwrap();
        assert_eq!(pl.beta(), 2.7);
        assert_eq!(pl.wmin(), 1.5);
    }

    #[test]
    fn samples_at_least_wmin() {
        let pl = PowerLaw::new(2.5, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(pl.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn ccdf_values() {
        let pl = PowerLaw::new(3.0, 1.0).unwrap();
        assert_eq!(pl.ccdf(0.5), 1.0);
        assert_eq!(pl.ccdf(1.0), 1.0);
        assert!((pl.ccdf(2.0) - 0.25).abs() < 1e-12);
        assert!((pl.ccdf(10.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn mean_finite_iff_beta_above_two() {
        assert_eq!(PowerLaw::new(1.5, 1.0).unwrap().mean(), None);
        assert_eq!(PowerLaw::new(2.0, 1.0).unwrap().mean(), None);
        let m = PowerLaw::new(2.5, 1.0).unwrap().mean().unwrap();
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_tail_matches_ccdf() {
        // fraction of samples above w should track the ccdf
        let pl = PowerLaw::new(2.5, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 200_000;
        let mut above2 = 0usize;
        let mut above8 = 0usize;
        for _ in 0..n {
            let w = pl.sample(&mut rng);
            if w >= 2.0 {
                above2 += 1;
            }
            if w >= 8.0 {
                above8 += 1;
            }
        }
        let f2 = above2 as f64 / n as f64;
        let f8 = above8 as f64 / n as f64;
        assert!((f2 - pl.ccdf(2.0)).abs() < 0.01, "f2={f2}");
        assert!((f8 - pl.ccdf(8.0)).abs() < 0.005, "f8={f8}");
    }

    #[test]
    fn empirical_mean_matches() {
        let pl = PowerLaw::new(2.8, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 400_000;
        let sum: f64 = (0..n).map(|_| pl.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        let expected = pl.mean().unwrap();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean={mean}, expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "not in [0,1)")]
    fn quantile_panics_out_of_range() {
        let _ = PowerLaw::new(2.5, 1.0).unwrap().quantile(1.0);
    }

    proptest! {
        #[test]
        fn prop_quantile_inverts_ccdf(beta in 2.01..2.99f64, q in 0.0..0.999f64) {
            let pl = PowerLaw::new(beta, 1.0).unwrap();
            let w = pl.quantile(q);
            // ccdf(quantile(q)) == 1 - q
            prop_assert!((pl.ccdf(w) - (1.0 - q)).abs() < 1e-9);
        }

        #[test]
        fn prop_ccdf_monotone(beta in 1.5..4.0f64, a in 1.0..100.0f64, b in 1.0..100.0f64) {
            let pl = PowerLaw::new(beta, 1.0).unwrap();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(pl.ccdf(lo) >= pl.ccdf(hi));
        }

        #[test]
        fn prop_sample_finite_and_bounded_below(beta in 2.01..2.99f64, wmin in 0.1..10.0f64, seed in 0u64..1000) {
            let pl = PowerLaw::new(beta, wmin).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w = pl.sample(&mut rng);
            prop_assert!(w.is_finite());
            prop_assert!(w >= wmin);
        }
    }
}
