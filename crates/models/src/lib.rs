//! Random graph generators for the small-world reproduction.
//!
//! Everything the paper samples from or compares against is implemented here
//! from scratch:
//!
//! * [`girg`] — **Geometric Inhomogeneous Random Graphs** (§2.1), the paper's
//!   model, with both a naive `O(n²)` reference sampler and an
//!   expected-linear-time cell sampler in the style of
//!   Bringmann–Keusch–Lengler,
//! * [`hyperbolic`] — hyperbolic random graphs (Definition 11.1) plus the
//!   weight/position mapping onto one-dimensional GIRGs from §11,
//! * [`kleinberg`] — Kleinberg's lattice model and its "noisy positions"
//!   continuum variant from §1.1,
//! * [`chung_lu`] — the non-geometric Chung–Lu baseline the GIRG marginals
//!   reduce to (Lemma 7.1),
//! * [`model`] — the [`GraphModel`] trait unifying every generator behind
//!   one seed-in/`Result`-out sampling signature,
//! * [`weights`] — power-law weight distributions,
//! * [`poisson`] — exact Poisson sampling for the vertex point process,
//! * [`kernel`] — the connection-probability abstraction shared by samplers,
//! * [`io`] — plain-text persistence for sampled instances.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use smallworld_models::girg::GirgBuilder;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let girg = GirgBuilder::<2>::new(1_000).beta(2.5).alpha(2.0).sample(&mut rng)?;
//! assert!(girg.graph().node_count() > 800); // Poisson(1000) vertices
//! # Ok::<(), smallworld_models::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chung_lu;
pub mod girg;
pub mod hyperbolic;
pub mod io;
pub mod kernel;
pub mod kleinberg;
pub mod model;
pub mod poisson;
pub mod weights;

pub use chung_lu::{ChungLu, ChungLuBuilder};
pub use girg::{Girg, GirgBuilder};
pub use hyperbolic::{Hrg, HrgBuilder};
pub use kernel::{Alpha, ConnectionKernel, GirgKernel};
pub use kleinberg::{ContinuumKleinberg, KleinbergLattice, KleinbergLatticeBuilder};
pub use model::{GraphInstance, GraphModel};
pub use weights::PowerLaw;

use std::error::Error;
use std::fmt;

/// Error constructing or sampling a random-graph model.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A model parameter was outside its admissible range.
    InvalidParameter {
        /// Parameter name, e.g. `"beta"`.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable requirement, e.g. `"must lie in (2, 3)"`.
        requirement: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
        }
    }
}

impl Error for ModelError {}

/// Validates `value` against a predicate, for model constructors.
pub(crate) fn check_param(
    name: &'static str,
    value: f64,
    ok: bool,
    requirement: &'static str,
) -> Result<(), ModelError> {
    if ok {
        Ok(())
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value,
            requirement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_parameter() {
        let e = ModelError::InvalidParameter {
            name: "beta",
            value: 5.0,
            requirement: "must lie in (2, 3)",
        };
        let msg = e.to_string();
        assert!(msg.contains("beta"));
        assert!(msg.contains('5'));
        assert!(msg.contains("(2, 3)"));
    }

    #[test]
    fn check_param_passes_and_fails() {
        assert!(check_param("x", 1.0, true, "anything").is_ok());
        assert!(check_param("x", 1.0, false, "anything").is_err());
    }
}
