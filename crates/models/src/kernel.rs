//! Connection-probability kernels: the (EP1)/(EP2) edge probabilities.
//!
//! A [`ConnectionKernel`] maps a pair of weights and a torus distance to an
//! edge probability. The GIRG samplers are generic over the kernel, so the
//! power-law kernel of (EP1), the threshold kernel of (EP2) and the
//! hyperbolic kernel of §11 all share one sampling engine.
//!
//! For the expected-linear-time sampler the kernel must also provide a
//! *rigorous* upper bound over a box of weights and distances
//! ([`ConnectionKernel::upper_bound`]); correctness of the sampler's
//! rejection step depends on it.

use crate::{check_param, ModelError};

/// The decay parameter `α > 1` of the GIRG model, including the threshold
/// limit `α = ∞` of (EP2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Alpha {
    /// Finite decay `α ∈ (1, ∞)`: long-range edges exist, probability decays
    /// as `distance^{−αd}` — condition (EP1).
    Finite(f64),
    /// The threshold case `α = ∞`: the edge probability drops to zero beyond
    /// the threshold distance — condition (EP2).
    Threshold,
}

impl Alpha {
    /// Validates the parameter (`α > 1` in the finite case).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if a finite `α ≤ 1` or
    /// non-finite value is given.
    pub fn validated(self) -> Result<Self, ModelError> {
        if let Alpha::Finite(a) = self {
            check_param("alpha", a, a > 1.0 && a.is_finite(), "must be > 1 (or Threshold)")?;
        }
        Ok(self)
    }

    /// Whether this is the threshold case `α = ∞`.
    pub fn is_threshold(&self) -> bool {
        matches!(self, Alpha::Threshold)
    }
}

impl From<f64> for Alpha {
    /// Converts a float, mapping `f64::INFINITY` to [`Alpha::Threshold`].
    fn from(a: f64) -> Self {
        if a.is_infinite() {
            Alpha::Threshold
        } else {
            Alpha::Finite(a)
        }
    }
}

/// An edge-probability kernel `p(w_u, w_v, ‖x_u − x_v‖)`.
///
/// Implementations must be symmetric in the weights, non-increasing in the
/// distance and non-decreasing in each weight *in the sense required by*
/// [`ConnectionKernel::upper_bound`]: the bound must dominate the
/// probability over the whole box `w_u ≤ wu_max`, `w_v ≤ wv_max`,
/// `dist ≥ min_dist`.
pub trait ConnectionKernel {
    /// Probability that two vertices with weights `wu`, `wv` at torus
    /// distance `dist` are adjacent.
    fn probability(&self, wu: f64, wv: f64, dist: f64) -> f64;

    /// An upper bound on [`probability`](Self::probability) valid for all
    /// `w_u ≤ wu_max`, `w_v ≤ wv_max` and `dist ≥ min_dist`.
    ///
    /// Used by the cell sampler's geometric-jump (type II) step; it must
    /// *never* under-estimate, or the sampled graph is biased. It should be
    /// as tight as cheaply possible, or the sampler wastes rejections.
    fn upper_bound(&self, wu_max: f64, wv_max: f64, min_dist: f64) -> f64;
}

/// The GIRG kernel: condition (EP1) for finite `α`, (EP2) for `α = ∞`.
///
/// With `x = w_u w_v / (w_min n ‖x_u−x_v‖^d)`:
///
/// * finite `α`:  `p = min(1, λ · x^α)`,
/// * threshold:   `p = 1` if `λ·x ≥ 1`, else `0` (i.e. `c₁ = c₂ = λ`).
///
/// Any fixed `λ > 0` realizes valid (EP1)/(EP2) constants. For `λ ≥ 1` the
/// finite-α kernel also satisfies (EP3) with `c₁ = 1`: vertices with
/// `‖x_u−x_v‖^d ≤ w_u w_v/(w_min n)` connect with probability 1, which is the
/// extra assumption of Theorem 3.2.
///
/// # Examples
///
/// ```
/// use smallworld_models::{Alpha, ConnectionKernel, GirgKernel};
///
/// let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 1000.0, 2)?;
/// assert_eq!(k.probability(1.0, 1.0, 0.0), 1.0);       // coincident points
/// assert!(k.probability(1.0, 1.0, 0.5) < 1e-4);        // far apart
/// assert!(k.probability(1.0, 1000.0, 0.5) > k.probability(1.0, 1.0, 0.5));
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GirgKernel {
    alpha: Alpha,
    lambda: f64,
    wmin: f64,
    intensity: f64,
    dim: u32,
}

impl GirgKernel {
    /// Creates a GIRG kernel.
    ///
    /// `intensity` is the expected number of vertices `n`; `dim` the torus
    /// dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `α ≤ 1`, `λ ≤ 0`,
    /// `w_min ≤ 0`, `intensity ≤ 0` or `dim == 0`.
    pub fn new(
        alpha: Alpha,
        lambda: f64,
        wmin: f64,
        intensity: f64,
        dim: u32,
    ) -> Result<Self, ModelError> {
        let alpha = alpha.validated()?;
        check_param("lambda", lambda, lambda > 0.0 && lambda.is_finite(), "must be > 0")?;
        check_param("wmin", wmin, wmin > 0.0 && wmin.is_finite(), "must be > 0")?;
        check_param(
            "intensity",
            intensity,
            intensity > 0.0 && intensity.is_finite(),
            "must be > 0",
        )?;
        check_param("dim", dim as f64, dim > 0, "must be >= 1")?;
        Ok(GirgKernel {
            alpha,
            lambda,
            wmin,
            intensity,
            dim,
        })
    }

    /// The decay parameter.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// The probability constant λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The ratio `x = w_u w_v / (w_min n dist^d)` at the heart of (EP1).
    #[inline]
    fn ratio(&self, wu: f64, wv: f64, dist: f64) -> f64 {
        let dist_pow_d = dist.powi(self.dim as i32);
        if dist_pow_d == 0.0 {
            return f64::INFINITY;
        }
        (wu * wv) / (self.wmin * self.intensity * dist_pow_d)
    }
}

impl ConnectionKernel for GirgKernel {
    #[inline]
    fn probability(&self, wu: f64, wv: f64, dist: f64) -> f64 {
        let x = self.ratio(wu, wv, dist);
        match self.alpha {
            Alpha::Finite(a) => {
                if x.is_infinite() {
                    1.0
                } else {
                    (self.lambda * x.powf(a)).min(1.0)
                }
            }
            Alpha::Threshold => {
                if self.lambda * x >= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    #[inline]
    fn upper_bound(&self, wu_max: f64, wv_max: f64, min_dist: f64) -> f64 {
        // monotone: increasing in weights, decreasing in distance
        self.probability(wu_max, wv_max, min_dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kernel(alpha: Alpha) -> GirgKernel {
        GirgKernel::new(alpha, 1.0, 1.0, 1_000.0, 2).unwrap()
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Alpha::Finite(1.0).validated().is_err());
        assert!(Alpha::Finite(0.9).validated().is_err());
        assert!(Alpha::Threshold.validated().is_ok());
        assert!(GirgKernel::new(Alpha::Finite(2.0), 0.0, 1.0, 10.0, 2).is_err());
        assert!(GirgKernel::new(Alpha::Finite(2.0), 1.0, -1.0, 10.0, 2).is_err());
        assert!(GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 0.0, 2).is_err());
        assert!(GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 10.0, 0).is_err());
    }

    #[test]
    fn alpha_from_f64() {
        assert_eq!(Alpha::from(2.5), Alpha::Finite(2.5));
        assert!(Alpha::from(f64::INFINITY).is_threshold());
    }

    #[test]
    fn finite_alpha_probability_values() {
        let k = kernel(Alpha::Finite(2.0));
        // x = wuwv/(n d^2); choose values where λx^α = (1/(1000 · 0.01))^2 = 0.01
        let p = k.probability(1.0, 1.0, 0.1);
        assert!((p - 0.01).abs() < 1e-12, "p={p}");
        // saturates at 1
        assert_eq!(k.probability(1000.0, 1000.0, 0.01), 1.0);
    }

    #[test]
    fn threshold_kernel_is_zero_one() {
        let k = kernel(Alpha::Threshold);
        // threshold: dist^2 <= wuwv/1000
        assert_eq!(k.probability(10.0, 10.0, 0.3), 1.0); // 0.09 <= 0.1
        assert_eq!(k.probability(10.0, 10.0, 0.4), 0.0); // 0.16 > 0.1
    }

    #[test]
    fn ep3_holds_for_lambda_one() {
        // dist^d <= wuwv/(wmin n) => p == 1 (condition EP3, Theorem 3.2)
        let k = kernel(Alpha::Finite(3.0));
        let wu = 2.0;
        let wv = 5.0;
        let dist = (wu * wv / 1_000.0f64).sqrt() * 0.999;
        assert_eq!(k.probability(wu, wv, dist), 1.0);
    }

    #[test]
    fn zero_distance_always_connects() {
        assert_eq!(kernel(Alpha::Finite(2.0)).probability(1.0, 1.0, 0.0), 1.0);
        assert_eq!(kernel(Alpha::Threshold).probability(1.0, 1.0, 0.0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_probability_in_unit_interval(
            a in 1.1..5.0f64, wu in 1.0..1e4f64, wv in 1.0..1e4f64, d in 0.0..0.5f64,
        ) {
            let k = kernel(Alpha::Finite(a));
            let p = k.probability(wu, wv, d);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_symmetric_in_weights(
            wu in 1.0..1e4f64, wv in 1.0..1e4f64, d in 1e-6..0.5f64,
        ) {
            let k = kernel(Alpha::Finite(2.0));
            prop_assert_eq!(k.probability(wu, wv, d), k.probability(wv, wu, d));
        }

        #[test]
        fn prop_monotone_in_distance(
            wu in 1.0..100.0f64, wv in 1.0..100.0f64, d1 in 1e-6..0.5f64, d2 in 1e-6..0.5f64,
        ) {
            let k = kernel(Alpha::Finite(1.5));
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(k.probability(wu, wv, lo) >= k.probability(wu, wv, hi));
        }

        #[test]
        fn prop_upper_bound_dominates(
            wu in 1.0..100.0f64, wv in 1.0..100.0f64,
            frac_u in 0.01..1.0f64, frac_v in 0.01..1.0f64,
            dmin in 1e-6..0.4f64, extra in 0.0..0.1f64,
            threshold in proptest::bool::ANY,
        ) {
            let alpha = if threshold { Alpha::Threshold } else { Alpha::Finite(2.0) };
            let k = kernel(alpha);
            let bound = k.upper_bound(wu, wv, dmin);
            let p = k.probability(wu * frac_u, wv * frac_v, dmin + extra);
            prop_assert!(p <= bound + 1e-12);
        }
    }
}
