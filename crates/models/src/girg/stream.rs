//! Out-of-core GIRG sampling: spill Morton-sorted edge runs to disk and
//! k-way merge them, so the full edge list never lives in memory.
//!
//! [`GirgBuilder::sample`] materializes every sampled edge in one `Vec`
//! and then builds an in-memory CSR — at 10⁸ vertices that is tens of
//! gigabytes before the store writer even starts. The streamed path keeps
//! the identical sampling mathematics (same RNG draws in the same order,
//! same per-task seed splitting) but changes only where edges *go*:
//!
//! 1. vertices are drawn exactly as in `sample`, then the Morton
//!    relabeling permutation is computed from the positions;
//! 2. the cell sampler's deterministic task list is executed in
//!    index-range batches ([`super::cells::CellPlan`]); each batch's edges
//!    are relabeled on the fly and appended as two half-edges
//!    `(src, tgt)` packed into `u64` keys to a run buffer;
//! 3. full run buffers are sorted and spilled to a single append-only
//!    spill file as delta-varint runs;
//! 4. [`StreamedGirg::half_edges`] k-way merges the runs back into one
//!    strictly increasing half-edge stream for the store writer.
//!
//! Peak memory is `O(vertices + run buffer)`: positions, weights, the
//! permutation, one run buffer, and one batch's edge output. The merged
//! stream is byte-for-byte the adjacency `sample` + Morton relabel would
//! produce — `smallworld-store` pins this by comparing whole `.swg` files.

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use smallworld_geometry::Point;
use smallworld_graph::{NodeId, Permutation};

use crate::kernel::GirgKernel;
use crate::poisson::sample_poisson;
use crate::weights::PowerLaw;
use crate::{check_param, ModelError};

use super::{cells, naive, use_cells, GirgBuilder, GirgParams};

/// Half-edge run-buffer capacity in keys (8 bytes each): large enough
/// that run count stays small at full scale, small enough that the buffer
/// is negligible next to the position/weight lanes.
const MAX_RUN_KEYS: usize = 1 << 23;
/// Floor on the run buffer so tiny instances still batch sensibly.
const MIN_RUN_KEYS: usize = 1 << 16;
/// Target number of task batches per sampling run: bounds one batch's
/// in-flight edge Vec to roughly `edges / 256`.
const TARGET_BATCHES: usize = 256;

/// Error from the streamed sampling pipeline: either the model parameters
/// were invalid (as in [`GirgBuilder::sample`]) or spill-file I/O failed.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid model parameters or an unsupported configuration.
    Model(ModelError),
    /// Spill-file I/O failure.
    Io(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Model(e) => write!(f, "streamed sampling: {e}"),
            StreamError::Io(e) => write!(f, "streamed sampling spill i/o: {e}"),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Model(e) => Some(e),
            StreamError::Io(e) => Some(e),
        }
    }
}

impl From<ModelError> for StreamError {
    fn from(e: ModelError) -> Self {
        StreamError::Model(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// One spilled run: `count` delta-varint-encoded keys starting at byte
/// `offset` of the spill file.
#[derive(Clone, Copy, Debug)]
struct RunMeta {
    offset: u64,
    count: u64,
}

/// Appends an LEB128 varint (7 data bits per byte, continuation bit 0x80,
/// least-significant group first).
#[inline]
fn write_var(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint byte-at-a-time from `r`.
#[inline]
fn read_var<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut byte = [0u8; 1];
    loop {
        r.read_exact(&mut byte)?;
        let group = (byte[0] & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "spill varint overflow"));
        }
        value |= group << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// The spill-side of the pipeline: buffers half-edge keys, sorts full
/// buffers, and appends them to the spill file as delta-varint runs.
struct SpillWriter {
    writer: BufWriter<File>,
    buf: Vec<u64>,
    capacity: usize,
    runs: Vec<RunMeta>,
    offset: u64,
    scratch: Vec<u8>,
}

impl SpillWriter {
    fn create(path: &Path, capacity: usize) -> io::Result<SpillWriter> {
        Ok(SpillWriter {
            writer: BufWriter::new(File::create(path)?),
            buf: Vec::with_capacity(capacity),
            capacity,
            runs: Vec::new(),
            offset: 0,
            scratch: Vec::new(),
        })
    }

    fn push(&mut self, key: u64) -> io::Result<()> {
        self.buf.push(key);
        if self.buf.len() >= self.capacity {
            self.flush_run()?;
        }
        Ok(())
    }

    fn flush_run(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.scratch.clear();
        let mut prev = 0u64;
        for (i, &key) in self.buf.iter().enumerate() {
            if i == 0 {
                write_var(key, &mut self.scratch);
            } else {
                debug_assert!(key > prev, "duplicate half-edge in one run");
                write_var(key - prev - 1, &mut self.scratch);
            }
            prev = key;
        }
        self.writer.write_all(&self.scratch)?;
        self.runs.push(RunMeta {
            offset: self.offset,
            count: self.buf.len() as u64,
        });
        self.offset += self.scratch.len() as u64;
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> io::Result<(Vec<RunMeta>, u64)> {
        self.flush_run()?;
        self.writer.flush()?;
        Ok((self.runs, self.offset))
    }
}

/// Reads one run's keys back, decoding the delta-varints sequentially.
#[derive(Debug)]
struct RunReader {
    reader: BufReader<File>,
    remaining: u64,
    prev: u64,
    started: bool,
}

impl RunReader {
    fn open(path: &Path, meta: RunMeta) -> io::Result<RunReader> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(meta.offset))?;
        Ok(RunReader {
            reader: BufReader::with_capacity(1 << 16, file),
            remaining: meta.count,
            prev: 0,
            started: false,
        })
    }

    fn next_key(&mut self) -> io::Result<Option<u64>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let raw = read_var(&mut self.reader)?;
        let key = if self.started {
            self.prev
                .checked_add(raw)
                .and_then(|k| k.checked_add(1))
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "spill delta overflows")
                })?
        } else {
            self.started = true;
            raw
        };
        self.prev = key;
        Ok(Some(key))
    }
}

/// A strictly increasing stream of half-edges `(src, tgt)`, k-way merged
/// from the spill runs of a [`StreamedGirg`].
///
/// Each undirected edge `{u, v}` appears exactly twice, once per
/// direction, so consuming the stream grouped by `src` reconstructs every
/// vertex's sorted neighbor list in vertex order.
#[derive(Debug)]
pub struct HalfEdges {
    runs: Vec<RunReader>,
    /// Min-heap of `(next key, run index)`.
    heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    last: Option<u64>,
}

impl Iterator for HalfEdges {
    type Item = io::Result<(u32, u32)>;

    fn next(&mut self) -> Option<Self::Item> {
        let std::cmp::Reverse((key, run)) = self.heap.pop()?;
        match self.runs[run].next_key() {
            Ok(Some(next)) => self.heap.push(std::cmp::Reverse((next, run))),
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        if self.last.is_some_and(|l| key <= l) {
            return Some(Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "merged half-edge stream is not strictly increasing",
            )));
        }
        self.last = Some(key);
        Some(Ok(((key >> 32) as u32, key as u32)))
    }
}

/// A GIRG sampled out-of-core: vertex data in memory (already in Morton
/// order), adjacency staged on disk as sorted half-edge runs.
///
/// Produced by [`GirgBuilder::sample_streamed`]; consumed by the store's
/// streamed `.swg` writer, which merges the runs straight into the varint
/// NBR section. The spill file is deleted when this value drops.
#[derive(Debug)]
pub struct StreamedGirg<const D: usize> {
    positions: Vec<Point<D>>,
    weights: Vec<f64>,
    params: GirgParams,
    spill_path: PathBuf,
    runs: Vec<RunMeta>,
    spill_bytes: u64,
    edge_count: usize,
}

impl<const D: usize> StreamedGirg<D> {
    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of undirected edges sampled.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total neighbor-list entries the adjacency will decode to (`2m`).
    pub fn target_count(&self) -> usize {
        self.edge_count * 2
    }

    /// Vertex positions in Morton order, indexed by final node id.
    pub fn positions(&self) -> &[Point<D>] {
        &self.positions
    }

    /// Vertex weights in Morton order, indexed by final node id.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The model parameters the instance was sampled with.
    pub fn params(&self) -> &GirgParams {
        &self.params
    }

    /// Number of spilled runs awaiting the merge.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Bytes occupied by the spill file.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Opens the k-way merge over all spilled runs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the spill file cannot be reopened.
    pub fn half_edges(&self) -> io::Result<HalfEdges> {
        let mut runs = Vec::with_capacity(self.runs.len());
        let mut heap = BinaryHeap::with_capacity(self.runs.len());
        for (i, &meta) in self.runs.iter().enumerate() {
            let mut reader = RunReader::open(&self.spill_path, meta)?;
            if let Some(first) = reader.next_key()? {
                heap.push(std::cmp::Reverse((first, i)));
            }
            runs.push(reader);
        }
        Ok(HalfEdges {
            runs,
            heap,
            last: None,
        })
    }
}

impl<const D: usize> Drop for StreamedGirg<D> {
    fn drop(&mut self) {
        std::fs::remove_file(&self.spill_path).ok();
    }
}

/// Monotone counter making concurrent spill files in one process unique.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

impl<const D: usize> GirgBuilder<D> {
    /// Samples a GIRG out-of-core: identical vertex and edge distribution
    /// to [`GirgBuilder::sample`] — in fact the **identical RNG draws in
    /// the identical order**, so for a fixed seed the merged adjacency is
    /// bitwise what `sample` + Morton relabel would produce — but edges
    /// are spilled to `spill_dir` in sorted runs instead of accumulating
    /// in memory.
    ///
    /// The result is already in Morton order (the streamed pipeline
    /// relabels on the fly); peak RSS is `O(vertices + run buffer)`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Model`] for invalid parameters or when
    /// planted vertices are configured (their first-ids contract is
    /// incompatible with the Morton relabeling, exactly as in
    /// [`super::Girg::relabel`]), and [`StreamError::Io`] on spill-file
    /// failure.
    pub fn sample_streamed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        spill_dir: &Path,
    ) -> Result<StreamedGirg<D>, StreamError> {
        check_param(
            "beta",
            self.beta,
            self.beta > 2.0 && self.beta < 3.0,
            "must lie in (2, 3)",
        )?;
        check_param(
            "intensity",
            self.intensity,
            self.intensity > 0.0,
            "must be positive",
        )?;
        let kernel = GirgKernel::new(self.alpha, self.lambda, self.wmin, self.intensity, D as u32)?;
        let weights_dist = PowerLaw::new(self.beta, self.wmin)?;
        check_param(
            "planted",
            self.planted.len() as f64,
            self.planted.is_empty(),
            "streamed sampling relabels vertices and cannot preserve planted ids",
        )?;

        // identical draw order to `sample`: count, then position/weight per
        // vertex, then (cell path) one master seed for the edge tasks
        let random_count = match self.fixed_count {
            Some(c) => c,
            None => sample_poisson(rng, self.intensity) as usize,
        };
        let total = random_count;
        let mut positions: Vec<Point<D>> = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for _ in 0..random_count {
            positions.push(Point::random(rng));
            weights.push(weights_dist.sample(rng));
        }

        let keys: Vec<u64> = positions
            .iter()
            .map(smallworld_geometry::morton::point_code)
            .collect();
        let perm = Permutation::from_sort_keys(&keys);
        drop(keys);

        let spill_path = spill_dir.join(format!(
            "swstream-{}-{}.spill",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let capacity = (total / 2).clamp(MIN_RUN_KEYS, MAX_RUN_KEYS);
        let mut spill = SpillWriter::create(&spill_path, capacity)?;
        let mut edge_count = 0usize;

        let spill_edges = |edges: &[(u32, u32)], spill: &mut SpillWriter| -> io::Result<()> {
            for &(u, v) in edges {
                let a = perm.forward(NodeId::new(u)).raw() as u64;
                let b = perm.forward(NodeId::new(v)).raw() as u64;
                spill.push((a << 32) | b)?;
                spill.push((b << 32) | a)?;
            }
            Ok(())
        };

        let pool = smallworld_par::Pool::from_env();
        if use_cells(self.algorithm, total) {
            let master_seed = rng.next_u64();
            let plan = cells::plan(&positions, &weights, &kernel);
            let batch_len = plan.task_count().div_ceil(TARGET_BATCHES).max(1);
            let mut start = 0;
            while start < plan.task_count() {
                let end = (start + batch_len).min(plan.task_count());
                let edges = plan.run_batch(start..end, master_seed, &pool);
                edge_count += edges.len();
                spill_edges(&edges, &mut spill)?;
                start = end;
            }
        } else {
            let edges = naive::sample_edges(&positions, &weights, &kernel, rng);
            edge_count += edges.len();
            spill_edges(&edges, &mut spill)?;
        }

        let (runs, spill_bytes) = spill.finish()?;
        Ok(StreamedGirg {
            positions: perm.apply_slice(&positions),
            weights: perm.apply_slice(&weights),
            params: GirgParams {
                intensity: self.intensity,
                beta: self.beta,
                wmin: self.wmin,
                alpha: self.alpha,
                lambda: self.lambda,
            },
            spill_path,
            runs,
            spill_bytes,
            edge_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn streamed_matches_in_ram_sample_after_relabel() {
        for (n, algo) in [
            (400u64, super::super::SamplerAlgorithm::Auto), // naive path
            (4_000, super::super::SamplerAlgorithm::Auto),  // cell path
        ] {
            let builder = GirgBuilder::<2>::new(n).beta(2.5).alpha(2.0);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            let girg = builder.sample(&mut rng_a).unwrap();
            let relabeled = girg.relabel(&girg.morton_permutation());
            let streamed = builder
                .algorithm(algo)
                .sample_streamed(&mut rng_b, &std::env::temp_dir())
                .unwrap();
            assert_eq!(streamed.node_count(), relabeled.node_count());
            assert_eq!(streamed.edge_count(), relabeled.graph().edge_count());
            assert_eq!(streamed.weights(), relabeled.weights());
            assert_eq!(streamed.positions(), relabeled.positions());
            // half-edge merge reproduces every sorted neighbor list
            let mut iter = streamed.half_edges().unwrap();
            for v in relabeled.graph().nodes() {
                for &t in relabeled.graph().neighbors(v) {
                    let (src, tgt) = iter.next().expect("stream long enough").unwrap();
                    assert_eq!((src, tgt), (v.raw(), t.raw()), "n={n}");
                }
            }
            assert!(iter.next().is_none(), "stream has trailing edges");
        }
    }

    #[test]
    fn planted_vertices_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = GirgBuilder::<2>::new(100)
            .plant(Point::origin(), 2.0)
            .sample_streamed(&mut rng, &std::env::temp_dir());
        assert!(matches!(r, Err(StreamError::Model(_))));
    }

    #[test]
    fn spill_file_is_cleaned_up() {
        let mut rng = StdRng::seed_from_u64(2);
        let streamed = GirgBuilder::<2>::new(300)
            .sample_streamed(&mut rng, &std::env::temp_dir())
            .unwrap();
        let path = streamed.spill_path.clone();
        assert!(path.exists());
        drop(streamed);
        assert!(!path.exists());
    }

    #[test]
    fn multiple_runs_merge_correctly() {
        // tiny run capacity path: force many runs via a larger instance
        let mut rng = StdRng::seed_from_u64(3);
        let streamed = GirgBuilder::<2>::new(5_000)
            .sample_streamed(&mut rng, &std::env::temp_dir())
            .unwrap();
        let mut prev: Option<(u32, u32)> = None;
        let mut count = 0usize;
        for item in streamed.half_edges().unwrap() {
            let he = item.unwrap();
            if let Some(p) = prev {
                assert!(he > p, "merge not strictly increasing");
            }
            prev = Some(he);
            count += 1;
        }
        assert_eq!(count, streamed.target_count());
    }

    #[test]
    fn varints_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            write_var(v, &mut buf);
            let mut cursor = io::Cursor::new(&buf);
            assert_eq!(read_var(&mut cursor).unwrap(), v);
        }
    }
}
