//! Naive quadratic edge sampler: the distributional reference.

use rand::Rng;

use smallworld_geometry::Point;

use crate::kernel::ConnectionKernel;

/// Flips one independent coin per vertex pair — exactly the model of §2.1.
pub fn sample_edges<const D: usize, K, R>(
    positions: &[Point<D>],
    weights: &[f64],
    kernel: &K,
    rng: &mut R,
) -> Vec<(u32, u32)>
where
    K: ConnectionKernel,
    R: Rng + ?Sized,
{
    let n = positions.len();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let dist = positions[u].distance(&positions[v]);
            let p = kernel.probability(weights[u], weights[v], dist);
            if p >= 1.0 || (p > 0.0 && rng.gen::<f64>() < p) {
                edges.push((u as u32, v as u32));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Alpha, GirgKernel};
    use rand::SeedableRng;

    #[test]
    fn empty_and_singleton_inputs() {
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 10.0, 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(sample_edges::<2, _, _>(&[], &[], &k, &mut rng).is_empty());
        assert!(sample_edges(&[Point::<2>::origin()], &[1.0], &k, &mut rng).is_empty());
    }

    #[test]
    fn certain_edges_always_present() {
        // two coincident points connect with probability 1
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 10.0, 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pts = [Point::new([0.2, 0.2]), Point::new([0.2, 0.2])];
        let edges = sample_edges(&pts, &[1.0, 1.0], &k, &mut rng);
        assert_eq!(edges, vec![(0, 1)]);
    }

    #[test]
    fn impossible_edges_never_present() {
        // threshold kernel, points too far apart
        let k = GirgKernel::new(Alpha::Threshold, 1.0, 1.0, 1e6, 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pts = [Point::new([0.0, 0.0]), Point::new([0.5, 0.5])];
        for _ in 0..20 {
            assert!(sample_edges(&pts, &[1.0, 1.0], &k, &mut rng).is_empty());
        }
    }

    #[test]
    fn edge_frequency_matches_probability() {
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 1_000.0, 2).unwrap();
        let pts = [Point::new([0.0, 0.0]), Point::new([0.0, 0.1])];
        let w = [2.0, 3.0];
        let p = crate::kernel::ConnectionKernel::probability(&k, 2.0, 3.0, 0.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let reps = 20_000;
        let hits = (0..reps)
            .filter(|_| !sample_edges(&pts, &w, &k, &mut rng).is_empty())
            .count();
        let f = hits as f64 / reps as f64;
        assert!((f - p).abs() < 0.02, "frequency {f} vs probability {p}");
    }
}
