//! Expected-linear-time GIRG edge sampler.
//!
//! Implements the weight-layer / geometric-cell technique of Bringmann,
//! Keusch and Lengler ("Sampling Geometric Inhomogeneous Random Graphs in
//! Linear Time", ESA 2017), generalized over a [`ConnectionKernel`]:
//!
//! * Vertices are bucketed into **weight layers** `i` with
//!   `w ∈ [w₀·2^i, w₀·2^{i+1})`.
//! * Each layer's vertices are sorted by the Morton code of their grid cell
//!   at a maximum refinement level `L`, so "layer-i vertices inside cell C"
//!   is one binary search (cells are Morton-prefix ranges).
//! * For each layer pair `(i, j)` a **comparison level** `ℓ(i,j)` is chosen
//!   so that cells at that level have volume about
//!   `w̄_i w̄_j / (w₀ · N)` — the scale below which the connection
//!   probability saturates.
//! * A recursion over unordered cell pairs, descending only through
//!   *adjacent* pairs, emits each vertex pair exactly once:
//!   - **type I** (adjacent cells at level `ℓ(i,j)`): every pair is examined
//!     with its exact probability;
//!   - **type II** (the first level at which a cell pair becomes
//!     non-adjacent): pairs are drawn by geometric jumps under the kernel's
//!     rigorous [`upper_bound`](ConnectionKernel::upper_bound) and thinned to
//!     the exact probability, so the output distribution is unbiased.
//!
//! Correctness does not depend on the choice of `ℓ(i,j)` (only efficiency
//! does); correctness *does* depend on `upper_bound` dominating the
//! probability on each box, which the kernel tests verify.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smallworld_geometry::{morton, Grid, MortonCell, Point};
use smallworld_par::Pool;

use crate::kernel::ConnectionKernel;

/// Hard cap on the grid depth so `cells_per_side` fits in `u32`.
const MAX_DEPTH: u32 = 31;

/// Target cell count of the parallel task decomposition: the recursion is
/// split at the level with about this many cells per axis^D, giving a few
/// hundred independent tasks regardless of the machine — the decomposition
/// must NOT depend on the thread count, or per-task seeds (and therefore
/// the sampled edges) would differ between pool sizes.
const SPLIT_TARGET_CELLS_LOG2: u32 = 6;

/// Samples the edge set in expected linear time. See the module docs.
///
/// Internally draws one master seed from `rng` and runs the deterministic
/// parallel engine with the ambient pool (`SMALLWORLD_THREADS`); see
/// [`sample_edges_pooled`] for the thread-count-invariance contract.
pub fn sample_edges<const D: usize, K, R>(
    positions: &[Point<D>],
    weights: &[f64],
    kernel: &K,
    rng: &mut R,
) -> Vec<(u32, u32)>
where
    K: ConnectionKernel + Sync,
    R: Rng + ?Sized,
{
    sample_edges_pooled(positions, weights, kernel, rng.next_u64(), &Pool::from_env())
}

/// Samples the edge set with an explicit master seed and thread pool.
///
/// The recursion over cell pairs is decomposed into an ordered task list
/// whose shape depends only on the input; task `i` samples with its own
/// RNG seeded by `split_seed(master_seed, i)` and results are concatenated
/// in task order. The returned edge list is therefore **bitwise-identical
/// for any pool size**, including a single thread.
pub fn sample_edges_pooled<const D: usize, K>(
    positions: &[Point<D>],
    weights: &[f64],
    kernel: &K,
    master_seed: u64,
    pool: &Pool,
) -> Vec<(u32, u32)>
where
    K: ConnectionKernel + Sync,
{
    let plan = plan(positions, weights, kernel);
    plan.run_batch(0..plan.task_count(), master_seed, pool)
}

/// A prepared cell-sampling run: the deterministic ordered task list of
/// [`sample_edges_pooled`], exposed so out-of-core callers (the streamed
/// sampler) can execute it in index-range batches without holding every
/// task's output at once.
///
/// Task `i` always samples with `split_seed(master_seed, i)` — the seed
/// depends on the *global* task index, never on the batch boundaries or
/// pool size — so concatenating `run_batch` outputs over a partition of
/// `0..task_count()` is bitwise-identical to one full
/// [`sample_edges_pooled`] call.
pub(crate) struct CellPlan<'a, const D: usize, K> {
    /// `None` for degenerate inputs (fewer than two vertices).
    sampler: Option<CellSampler<'a, D, K>>,
    tasks: Vec<Task>,
}

/// Prepares the task decomposition for the given instance (see
/// [`CellPlan`]).
pub(crate) fn plan<'a, const D: usize, K>(
    positions: &'a [Point<D>],
    weights: &'a [f64],
    kernel: &'a K,
) -> CellPlan<'a, D, K>
where
    K: ConnectionKernel + Sync,
{
    if positions.len() < 2 {
        return CellPlan {
            sampler: None,
            tasks: Vec::new(),
        };
    }
    let sampler = CellSampler::new(positions, weights, kernel);
    let split_level = sampler.split_level();
    let mut tasks = Vec::new();
    sampler.collect_tasks(MortonCell::root(), MortonCell::root(), split_level, &mut tasks);
    CellPlan {
        sampler: Some(sampler),
        tasks,
    }
}

impl<const D: usize, K: ConnectionKernel + Sync> CellPlan<'_, D, K> {
    /// Number of tasks in the decomposition.
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the tasks with indices in `range` and returns their edges
    /// concatenated in task order.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds `0..task_count()`.
    pub(crate) fn run_batch(
        &self,
        range: std::ops::Range<usize>,
        master_seed: u64,
        pool: &Pool,
    ) -> Vec<(u32, u32)> {
        let Some(sampler) = &self.sampler else {
            return Vec::new();
        };
        assert!(range.end <= self.tasks.len(), "task range out of bounds");
        let start = range.start;
        let per_task = pool.map(range.len(), |off| {
            let i = start + off;
            let mut rng =
                StdRng::seed_from_u64(smallworld_par::split_seed(master_seed, i as u64));
            let mut edges = Vec::new();
            sampler.run_task(&self.tasks[i], &mut rng, &mut edges);
            edges
        });
        per_task.concat()
    }
}

/// One unit of parallel sampling work over a cell pair.
#[derive(Clone, Copy, Debug)]
struct Task {
    a: MortonCell,
    b: MortonCell,
    kind: TaskKind,
}

#[derive(Clone, Copy, Debug)]
enum TaskKind {
    /// Run the full recursion rooted at `(a, b)` (type I + type II + all
    /// descendants).
    Full,
    /// Run only the type-I comparisons of `(a, b)` at its own level; the
    /// descendants were split into separate tasks.
    Local,
}

/// One weight layer: vertex ids sorted by max-level Morton code.
struct Layer {
    /// Sorted `(code, vertex)` pairs.
    entries: Vec<(u64, u32)>,
    /// Maximum weight present in this layer (for upper bounds).
    max_weight: f64,
}

impl Layer {
    /// The contiguous slice of vertices inside `cell`.
    fn slice<const D: usize>(&self, cell: &MortonCell, max_level: u32) -> &[(u64, u32)] {
        let range = cell.descendant_range::<D>(max_level);
        let lo = self.entries.partition_point(|&(c, _)| c < range.start);
        let hi = self.entries.partition_point(|&(c, _)| c < range.end);
        &self.entries[lo..hi]
    }
}

struct CellSampler<'a, const D: usize, K> {
    positions: &'a [Point<D>],
    weights: &'a [f64],
    kernel: &'a K,
    layers: Vec<Layer>,
    /// All vertices' max-level codes, sorted — for occupancy pruning.
    all_codes: Vec<u64>,
    /// Deepest grid level.
    max_level: u32,
    /// `pairs_at_level[ℓ]` = unordered layer pairs with comparison level ℓ.
    pairs_at_level: Vec<Vec<(usize, usize)>>,
    /// `pairs_from_level[ℓ]` = unordered layer pairs with comparison level ≥ ℓ.
    pairs_from_level: Vec<Vec<(usize, usize)>>,
}

impl<'a, const D: usize, K: ConnectionKernel> CellSampler<'a, D, K> {
    fn new(positions: &'a [Point<D>], weights: &'a [f64], kernel: &'a K) -> Self {
        assert!(
            (1..=3).contains(&D),
            "cell sampler supports dimensions 1..=3"
        );
        let n = positions.len();

        // Deepest level: about one vertex per cell on average.
        let max_level = (((n as f64).log2() / D as f64).floor() as u32)
            .clamp(1, morton::max_level(D).min(MAX_DEPTH));
        let grid: Grid<D> = Grid::new(max_level);

        // Weight layers relative to the smallest weight present.
        let w0 = weights.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(w0 > 0.0, "weights must be positive");
        let layer_of = |w: f64| -> usize {
            // floor(log2(w / w0)), robust to w == w0
            ((w / w0).log2().floor() as i64).max(0) as usize
        };
        let num_layers = weights.iter().map(|&w| layer_of(w)).max().unwrap_or(0) + 1;

        let mut layers: Vec<Layer> = (0..num_layers)
            .map(|_| Layer {
                entries: Vec::new(),
                max_weight: 0.0,
            })
            .collect();
        let mut all_codes = Vec::with_capacity(n);
        for v in 0..n {
            let code = grid.cell_of(&positions[v]).code();
            let li = layer_of(weights[v]);
            layers[li].entries.push((code, v as u32));
            if weights[v] > layers[li].max_weight {
                layers[li].max_weight = weights[v];
            }
            all_codes.push(code);
        }
        for layer in &mut layers {
            layer.entries.sort_unstable();
        }
        all_codes.sort_unstable();

        // Comparison level per unordered layer pair: the deepest level whose
        // cell volume is at least  w̄_i w̄_j / (w0 · N).
        let mut pairs_at_level: Vec<Vec<(usize, usize)>> =
            (0..=max_level).map(|_| Vec::new()).collect();
        for i in 0..num_layers {
            if layers[i].entries.is_empty() {
                continue;
            }
            for j in i..num_layers {
                if layers[j].entries.is_empty() {
                    continue;
                }
                let vol = (layers[i].max_weight * layers[j].max_weight / (w0 * n as f64)).min(1.0);
                // want 2^{-ℓD} >= vol  =>  ℓ <= log2(1/vol) / D
                let level = if vol >= 1.0 {
                    0
                } else {
                    (((1.0 / vol).log2() / D as f64).floor() as u32).min(max_level)
                };
                pairs_at_level[level as usize].push((i, j));
            }
        }
        let mut pairs_from_level: Vec<Vec<(usize, usize)>> =
            (0..=max_level).map(|_| Vec::new()).collect();
        let mut acc: Vec<(usize, usize)> = Vec::new();
        for level in (0..=max_level as usize).rev() {
            acc.extend(pairs_at_level[level].iter().copied());
            pairs_from_level[level] = acc.clone();
        }

        CellSampler {
            positions,
            weights,
            kernel,
            layers,
            all_codes,
            max_level,
            pairs_at_level,
            pairs_from_level,
        }
    }

    fn cell_occupied(&self, cell: &MortonCell) -> bool {
        let range = cell.descendant_range::<D>(self.max_level);
        let lo = self.all_codes.partition_point(|&c| c < range.start);
        lo < self.all_codes.len() && self.all_codes[lo] < range.end
    }

    /// The grid level at which the recursion is cut into parallel tasks:
    /// about `2^SPLIT_TARGET_CELLS_LOG2` cells total, independent of the
    /// machine (see [`SPLIT_TARGET_CELLS_LOG2`]).
    fn split_level(&self) -> u32 {
        SPLIT_TARGET_CELLS_LOG2.div_ceil(D as u32).min(self.max_level)
    }

    /// Decomposes the recursion rooted at `(a, b)` into an ordered task
    /// list. The decomposition mirrors [`CellSampler::process_pair`]: a
    /// non-adjacent pair is one self-contained type-II task; an adjacent
    /// pair above the split level contributes a [`TaskKind::Local`] task
    /// for its own type-I comparisons and recurses into its children; at
    /// (or below) the split level the whole subtree becomes one
    /// [`TaskKind::Full`] task.
    fn collect_tasks(
        &self,
        a: MortonCell,
        b: MortonCell,
        split_level: u32,
        out: &mut Vec<Task>,
    ) {
        if !self.cell_occupied(&a) || (a != b && !self.cell_occupied(&b)) {
            return;
        }
        let level = a.level();
        if !a.is_adjacent::<D>(&b) {
            if !self.pairs_from_level[level as usize].is_empty() {
                out.push(Task { a, b, kind: TaskKind::Full });
            }
            return;
        }
        let deeper =
            level < self.max_level && !self.pairs_from_level[level as usize + 1].is_empty();
        if level >= split_level || !deeper {
            out.push(Task { a, b, kind: TaskKind::Full });
            return;
        }
        if !self.pairs_at_level[level as usize].is_empty() {
            out.push(Task { a, b, kind: TaskKind::Local });
        }
        if a == b {
            let children: Vec<MortonCell> = a.children::<D>().collect();
            for (ci, &ca) in children.iter().enumerate() {
                for &cb in &children[ci..] {
                    self.collect_tasks(ca, cb, split_level, out);
                }
            }
        } else {
            for ca in a.children::<D>() {
                for cb in b.children::<D>() {
                    self.collect_tasks(ca, cb, split_level, out);
                }
            }
        }
    }

    /// Runs one task of the parallel decomposition.
    fn run_task<R: Rng + ?Sized>(&self, task: &Task, rng: &mut R, edges: &mut Vec<(u32, u32)>) {
        match task.kind {
            TaskKind::Full => self.process_pair(task.a, task.b, rng, edges),
            TaskKind::Local => {
                for &(i, j) in &self.pairs_at_level[task.a.level() as usize] {
                    self.type_one(task.a, task.b, i, j, rng, edges);
                }
            }
        }
    }

    /// Recursion over unordered cell pairs (including `a == b`).
    fn process_pair<R: Rng + ?Sized>(
        &self,
        a: MortonCell,
        b: MortonCell,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        if !self.cell_occupied(&a) || (a != b && !self.cell_occupied(&b)) {
            return;
        }
        let level = a.level();
        if a.is_adjacent::<D>(&b) {
            for &(i, j) in &self.pairs_at_level[level as usize] {
                self.type_one(a, b, i, j, rng, edges);
            }
            if level < self.max_level && !self.pairs_from_level[level as usize + 1].is_empty() {
                if a == b {
                    let children: Vec<MortonCell> = a.children::<D>().collect();
                    for (ci, &ca) in children.iter().enumerate() {
                        for &cb in &children[ci..] {
                            self.process_pair(ca, cb, rng, edges);
                        }
                    }
                } else {
                    for ca in a.children::<D>() {
                        for cb in b.children::<D>() {
                            self.process_pair(ca, cb, rng, edges);
                        }
                    }
                }
            }
        } else {
            let min_dist = a.min_distance::<D>(&b);
            for &(i, j) in &self.pairs_from_level[level as usize] {
                self.type_two(a, b, i, j, min_dist, rng, edges);
            }
        }
    }

    /// Exact examination of all pairs between adjacent cells for layer pair
    /// `(i, j)`.
    fn type_one<R: Rng + ?Sized>(
        &self,
        a: MortonCell,
        b: MortonCell,
        i: usize,
        j: usize,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        if a == b {
            let ai = self.layers[i].slice::<D>(&a, self.max_level);
            if i == j {
                for (k, &(_, u)) in ai.iter().enumerate() {
                    for &(_, v) in &ai[k + 1..] {
                        self.flip_exact(u, v, rng, edges);
                    }
                }
            } else {
                let aj = self.layers[j].slice::<D>(&a, self.max_level);
                for &(_, u) in ai {
                    for &(_, v) in aj {
                        self.flip_exact(u, v, rng, edges);
                    }
                }
            }
        } else {
            self.cross_exact(&a, &b, i, j, rng, edges);
            if i != j {
                self.cross_exact(&a, &b, j, i, rng, edges);
            }
        }
    }

    /// All pairs between layer `i` of cell `a` and layer `j` of cell `b`
    /// (disjoint vertex sets), exact probabilities.
    fn cross_exact<R: Rng + ?Sized>(
        &self,
        a: &MortonCell,
        b: &MortonCell,
        i: usize,
        j: usize,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        let ai = self.layers[i].slice::<D>(a, self.max_level);
        let bj = self.layers[j].slice::<D>(b, self.max_level);
        for &(_, u) in ai {
            for &(_, v) in bj {
                self.flip_exact(u, v, rng, edges);
            }
        }
    }

    /// Geometric-jump sampling between non-adjacent cells for layer pair
    /// `(i, j)`: candidates under the upper bound, thinned to exact.
    #[allow(clippy::too_many_arguments)]
    fn type_two<R: Rng + ?Sized>(
        &self,
        a: MortonCell,
        b: MortonCell,
        i: usize,
        j: usize,
        min_dist: f64,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        debug_assert!(a != b);
        self.jump_sample(&a, &b, i, j, min_dist, rng, edges);
        if i != j {
            self.jump_sample(&a, &b, j, i, min_dist, rng, edges);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn jump_sample<R: Rng + ?Sized>(
        &self,
        a: &MortonCell,
        b: &MortonCell,
        i: usize,
        j: usize,
        min_dist: f64,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        let bound = self
            .kernel
            .upper_bound(self.layers[i].max_weight, self.layers[j].max_weight, min_dist);
        if bound <= 0.0 {
            return;
        }
        let ai = self.layers[i].slice::<D>(a, self.max_level);
        let bj = self.layers[j].slice::<D>(b, self.max_level);
        if ai.is_empty() || bj.is_empty() {
            return;
        }
        let total = ai.len() as u64 * bj.len() as u64;
        if bound >= 1.0 {
            // no skipping possible; examine all pairs exactly
            for &(_, u) in ai {
                for &(_, v) in bj {
                    self.flip_exact(u, v, rng, edges);
                }
            }
            return;
        }
        let log_one_minus = (1.0 - bound).ln();
        let mut k = geometric_skip(rng, log_one_minus);
        while k < total {
            let u = ai[(k / bj.len() as u64) as usize].1;
            let v = bj[(k % bj.len() as u64) as usize].1;
            let dist = self.positions[u as usize].distance(&self.positions[v as usize]);
            let p = self
                .kernel
                .probability(self.weights[u as usize], self.weights[v as usize], dist);
            debug_assert!(
                p <= bound + 1e-9,
                "kernel upper bound violated: p={p} bound={bound}"
            );
            if rng.gen::<f64>() * bound < p {
                edges.push(ordered(u, v));
            }
            // saturating: a skip of u64::MAX (possible for tiny bounds)
            // must terminate the loop, not wrap around
            k = k
                .saturating_add(1)
                .saturating_add(geometric_skip(rng, log_one_minus));
        }
    }

    #[inline]
    fn flip_exact<R: Rng + ?Sized>(
        &self,
        u: u32,
        v: u32,
        rng: &mut R,
        edges: &mut Vec<(u32, u32)>,
    ) {
        let dist = self.positions[u as usize].distance(&self.positions[v as usize]);
        let p = self
            .kernel
            .probability(self.weights[u as usize], self.weights[v as usize], dist);
        if p >= 1.0 || (p > 0.0 && rng.gen::<f64>() < p) {
            edges.push(ordered(u, v));
        }
    }
}

#[inline]
fn ordered(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Number of failures before the next success of a Bernoulli(`p`) sequence,
/// where `log_one_minus = ln(1 − p)` is precomputed.
#[inline]
fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, log_one_minus: f64) -> u64 {
    // U ∈ (0, 1]; skip = floor(ln U / ln(1−p))
    let u = 1.0 - rng.gen::<f64>();
    let skip = (u.ln() / log_one_minus).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::girg::naive;
    use crate::kernel::{Alpha, GirgKernel};
    use crate::weights::PowerLaw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn random_instance<const D: usize>(
        n: usize,
        beta: f64,
        seed: u64,
    ) -> (Vec<Point<D>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pl = PowerLaw::new(beta, 1.0).unwrap();
        let positions = (0..n).map(|_| Point::random(&mut rng)).collect();
        let weights = (0..n).map(|_| pl.sample(&mut rng)).collect();
        (positions, weights)
    }

    fn edge_set(edges: &[(u32, u32)]) -> BTreeSet<(u32, u32)> {
        edges.iter().copied().collect()
    }

    #[test]
    fn trivial_inputs() {
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 10.0, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_edges::<2, _, _>(&[], &[], &k, &mut rng).is_empty());
        assert!(sample_edges(&[Point::<2>::origin()], &[1.0], &k, &mut rng).is_empty());
    }

    #[test]
    fn no_duplicate_edges_or_self_loops() {
        let (pos, w) = random_instance::<2>(800, 2.5, 1);
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 800.0, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let edges = sample_edges(&pos, &w, &k, &mut rng);
        let set = edge_set(&edges);
        assert_eq!(set.len(), edges.len(), "duplicate edges emitted");
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    /// With the threshold kernel the edge set is a deterministic function of
    /// positions and weights, so the cell sampler must match the naive
    /// sampler *exactly*.
    #[test]
    fn threshold_kernel_matches_naive_exactly() {
        for (dim_seed, beta) in [(10u64, 2.2), (11, 2.5), (12, 2.9)] {
            let (pos, w) = random_instance::<2>(600, beta, dim_seed);
            let k = GirgKernel::new(Alpha::Threshold, 1.3, 1.0, 600.0, 2).unwrap();
            let mut rng1 = StdRng::seed_from_u64(100);
            let mut rng2 = StdRng::seed_from_u64(200);
            let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng1));
            let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng2));
            assert_eq!(fast, slow, "beta={beta}");
        }
    }

    #[test]
    fn threshold_exact_in_one_and_three_dimensions() {
        let (pos, w) = random_instance::<1>(500, 2.4, 21);
        let k = GirgKernel::new(Alpha::Threshold, 1.0, 1.0, 500.0, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
        let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
        assert_eq!(fast, slow);

        let (pos, w) = random_instance::<3>(400, 2.6, 22);
        let k = GirgKernel::new(Alpha::Threshold, 1.0, 1.0, 400.0, 3).unwrap();
        let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
        let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
        assert_eq!(fast, slow);
    }

    /// For finite α the samplers are random, so compare edge-count statistics
    /// over repetitions of the *same* positions/weights.
    #[test]
    fn finite_alpha_edge_counts_match_naive() {
        let (pos, w) = random_instance::<2>(300, 2.5, 30);
        let k = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 300.0, 2).unwrap();
        let reps = 60;
        let mut rng = StdRng::seed_from_u64(31);
        let fast_mean: f64 = (0..reps)
            .map(|_| sample_edges(&pos, &w, &k, &mut rng).len() as f64)
            .sum::<f64>()
            / reps as f64;
        let slow_mean: f64 = (0..reps)
            .map(|_| naive::sample_edges(&pos, &w, &k, &mut rng).len() as f64)
            .sum::<f64>()
            / reps as f64;
        // means should agree within a few standard errors; edge count ~ few
        // hundred with sd ~ sqrt(mean)
        let tol = 6.0 * (fast_mean.max(slow_mean) / reps as f64).sqrt().max(1.0);
        assert!(
            (fast_mean - slow_mean).abs() < tol,
            "fast={fast_mean} slow={slow_mean} tol={tol}"
        );
    }

    #[test]
    fn per_vertex_degree_distribution_matches() {
        // compare the degree of one planted heavy vertex across samplers
        let (mut pos, mut w) = random_instance::<2>(400, 2.5, 40);
        pos.push(Point::new([0.5, 0.5]));
        w.push(60.0);
        let hub = (pos.len() - 1) as u32;
        let k = GirgKernel::new(Alpha::Finite(1.5), 1.0, 1.0, 400.0, 2).unwrap();
        let reps = 40;
        let mut rng = StdRng::seed_from_u64(41);
        let deg_of = |edges: &[(u32, u32)]| {
            edges.iter().filter(|&&(u, v)| u == hub || v == hub).count() as f64
        };
        let fast: f64 = (0..reps)
            .map(|_| deg_of(&sample_edges(&pos, &w, &k, &mut rng)))
            .sum::<f64>()
            / reps as f64;
        let slow: f64 = (0..reps)
            .map(|_| deg_of(&naive::sample_edges(&pos, &w, &k, &mut rng)))
            .sum::<f64>()
            / reps as f64;
        let tol = 6.0 * (fast.max(slow) / reps as f64).sqrt().max(1.0);
        assert!((fast - slow).abs() < tol, "fast={fast} slow={slow} tol={tol}");
    }

    #[test]
    fn identical_weights_single_layer() {
        // exercises the single-layer path (all weights equal)
        let mut rng = StdRng::seed_from_u64(50);
        let pos: Vec<Point<2>> = (0..500).map(|_| Point::random(&mut rng)).collect();
        let w = vec![1.0; 500];
        let k = GirgKernel::new(Alpha::Threshold, 2.0, 1.0, 500.0, 2).unwrap();
        let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
        let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
        assert_eq!(fast, slow);
    }

    #[test]
    fn clustered_positions_are_handled() {
        // all points inside one tiny ball: everything is type I in one cell
        let mut rng = StdRng::seed_from_u64(60);
        let pos: Vec<Point<2>> = (0..200)
            .map(|_| {
                let p: Point<2> = Point::random(&mut rng);
                Point::new([0.4 + 0.001 * p.coord(0), 0.4 + 0.001 * p.coord(1)])
            })
            .collect();
        let w = vec![1.0; 200];
        let k = GirgKernel::new(Alpha::Threshold, 1.0, 1.0, 200.0, 2).unwrap();
        let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
        let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
        assert_eq!(fast, slow);
    }

    #[test]
    fn extreme_weight_contrast() {
        // one vertex of weight ~ n connects to everything; threshold kernel
        let mut rng = StdRng::seed_from_u64(70);
        let mut pos: Vec<Point<2>> = (0..300).map(|_| Point::random(&mut rng)).collect();
        let mut w = vec![1.0; 300];
        pos.push(Point::new([0.1, 0.9]));
        w.push(4000.0);
        let k = GirgKernel::new(Alpha::Threshold, 1.0, 1.0, 300.0, 2).unwrap();
        let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
        let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
        assert_eq!(fast, slow);
        // the hub reaches every vertex: wu·wv/(wmin n) = 4000/300 > (1/2)^2
        let hub_degree = fast.iter().filter(|&&(u, v)| u == 300 || v == 300).count();
        assert_eq!(hub_degree, 300);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        /// Exactness sweep: for arbitrary parameters of the *threshold*
        /// kernel the cell sampler must reproduce the naive edge set
        /// exactly (the graph is a deterministic function of coordinates).
        #[test]
        fn prop_threshold_exactness(
            seed in 0u64..10_000,
            beta in 2.05..2.95f64,
            lambda in 0.05..2.0f64,
            n in 50usize..250,
        ) {
            let (pos, w) = random_instance::<2>(n, beta, seed);
            let k = GirgKernel::new(Alpha::Threshold, lambda, 1.0, n as f64, 2).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
            let fast = edge_set(&sample_edges(&pos, &w, &k, &mut rng));
            let slow = edge_set(&naive::sample_edges(&pos, &w, &k, &mut rng));
            proptest::prop_assert_eq!(fast, slow);
        }

        /// The finite-α sampler never emits self-loops, duplicates, or
        /// unordered pairs, for arbitrary α and λ.
        #[test]
        fn prop_output_well_formed(
            seed in 0u64..10_000,
            alpha in 1.05..6.0f64,
            lambda in 0.01..1.5f64,
        ) {
            let (pos, w) = random_instance::<2>(150, 2.5, seed);
            let k = GirgKernel::new(Alpha::Finite(alpha), lambda, 1.0, 150.0, 2).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let edges = sample_edges(&pos, &w, &k, &mut rng);
            let set = edge_set(&edges);
            proptest::prop_assert_eq!(set.len(), edges.len());
            proptest::prop_assert!(edges.iter().all(|&(u, v)| u < v && (v as usize) < 150));
        }
    }

    /// Bitwise thread-count invariance: same master seed, any pool size →
    /// byte-for-byte identical edge lists (not just equal sets).
    #[test]
    fn parallel_sampling_is_bitwise_identical_across_thread_counts() {
        let k1 = GirgKernel::new(Alpha::Finite(1.8), 0.8, 1.0, 700.0, 1).unwrap();
        let k2 = GirgKernel::new(Alpha::Finite(2.0), 1.0, 1.0, 700.0, 2).unwrap();
        let k3 = GirgKernel::new(Alpha::Threshold, 1.2, 1.0, 700.0, 3).unwrap();
        let (p1, w1) = random_instance::<1>(700, 2.4, 1);
        let (p2, w2) = random_instance::<2>(700, 2.5, 2);
        let (p3, w3) = random_instance::<3>(700, 2.7, 3);
        for master in [0u64, 42, u64::MAX] {
            let base1 = sample_edges_pooled(&p1, &w1, &k1, master, &Pool::with_threads(1));
            let base2 = sample_edges_pooled(&p2, &w2, &k2, master, &Pool::with_threads(1));
            let base3 = sample_edges_pooled(&p3, &w3, &k3, master, &Pool::with_threads(1));
            for threads in [2, 3, 8] {
                let pool = Pool::with_threads(threads);
                assert_eq!(base1, sample_edges_pooled(&p1, &w1, &k1, master, &pool));
                assert_eq!(base2, sample_edges_pooled(&p2, &w2, &k2, master, &pool));
                assert_eq!(base3, sample_edges_pooled(&p3, &w3, &k3, master, &pool));
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Parallel edge sampling equals its own sequential (1-thread)
        /// execution bitwise, for arbitrary seeds, sizes, and kernels.
        #[test]
        fn prop_parallel_bitwise_identical_to_sequential(
            seed in 0u64..10_000,
            master in 0u64..u64::MAX,
            alpha in 1.1..5.0f64,
            n in 50usize..400,
            threads in 2usize..7,
        ) {
            let (pos, w) = random_instance::<2>(n, 2.5, seed);
            let k = GirgKernel::new(Alpha::Finite(alpha), 0.5, 1.0, n as f64, 2).unwrap();
            let sequential = sample_edges_pooled(&pos, &w, &k, master, &Pool::with_threads(1));
            let parallel = sample_edges_pooled(&pos, &w, &k, master, &Pool::with_threads(threads));
            proptest::prop_assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn geometric_skip_has_right_mean() {
        // mean number of failures before success is (1-p)/p
        let mut rng = StdRng::seed_from_u64(80);
        let p: f64 = 0.05;
        let reps = 50_000;
        let sum: u64 = (0..reps)
            .map(|_| geometric_skip(&mut rng, (1.0 - p).ln()))
            .sum();
        let mean = sum as f64 / reps as f64;
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.3, "mean={mean} expected={expected}");
    }
}
