//! Geometric Inhomogeneous Random Graphs (§2.1).
//!
//! A GIRG is sampled in three steps:
//!
//! 1. the vertex set is a Poisson point process of intensity `n` on the torus
//!    `T^d` (optionally plus *planted* vertices with adversarially chosen
//!    positions and weights, matching the paper's "fixed s and t" setup),
//! 2. each vertex draws an i.i.d. power-law weight with exponent `β ∈ (2,3)`,
//! 3. each pair is independently an edge with the (EP1)/(EP2) probability.
//!
//! Two edge samplers are provided: a naive `O(n²)` reference
//! ([`SamplerAlgorithm::Naive`]) and an expected-linear-time cell-based
//! sampler ([`SamplerAlgorithm::CellBased`]) following the layered-grid
//! technique of Bringmann, Keusch and Lengler. Both sample *exactly* the same
//! distribution; the test-suite checks this (and for the threshold kernel,
//! where the graph is a deterministic function of positions and weights, it
//! checks exact equality of the edge sets).

mod cells;
mod naive;
mod stream;

pub use stream::{HalfEdges, StreamError, StreamedGirg};

use rand::Rng;

use smallworld_geometry::Point;
use smallworld_graph::{Graph, NodeId, Permutation};

use crate::kernel::{Alpha, ConnectionKernel, GirgKernel};
use crate::poisson::sample_poisson;
use crate::weights::PowerLaw;
use crate::{check_param, ModelError};

/// Which edge-sampling algorithm to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SamplerAlgorithm {
    /// Examine all `n(n−1)/2` pairs. Distributionally exact reference.
    Naive,
    /// Weight-layered Morton-cell sampler, expected linear time.
    CellBased,
    /// [`CellBased`](Self::CellBased) above 3000 vertices, otherwise
    /// [`Naive`](Self::Naive).
    #[default]
    Auto,
}

/// Model parameters of a sampled GIRG (see §2.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GirgParams {
    /// Intensity `n` of the Poisson point process (expected vertex count).
    pub intensity: f64,
    /// Power-law exponent `β ∈ (2, 3)`.
    pub beta: f64,
    /// Minimum weight `w_min > 0`.
    pub wmin: f64,
    /// Decay parameter `α > 1`, or `∞` (threshold case).
    pub alpha: Alpha,
    /// Probability constant λ of the kernel (the Θ-constant in (EP1)/(EP2)).
    pub lambda: f64,
}

/// A sampled geometric inhomogeneous random graph.
///
/// Holds the graph together with every vertex's position and weight — the
/// "address" `(x_v, w_v)` that greedy routing is allowed to read (§2.2).
#[derive(Clone, Debug)]
pub struct Girg<const D: usize> {
    graph: Graph,
    positions: Vec<Point<D>>,
    weights: Vec<f64>,
    params: GirgParams,
    planted: usize,
}

impl<const D: usize> Girg<D> {
    /// Reassembles a GIRG from its parts, e.g. when loading a saved
    /// instance (see [`crate::io`]).
    ///
    /// # Panics
    ///
    /// Panics if positions, weights and graph disagree on the vertex count
    /// or `planted` exceeds it.
    pub fn from_parts(
        graph: Graph,
        positions: Vec<Point<D>>,
        weights: Vec<f64>,
        params: GirgParams,
        planted: usize,
    ) -> Self {
        assert_eq!(graph.node_count(), positions.len(), "positions length mismatch");
        assert_eq!(graph.node_count(), weights.len(), "weights length mismatch");
        assert!(planted <= graph.node_count(), "planted count exceeds vertices");
        Girg {
            graph,
            positions,
            weights,
            params,
            planted,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of planted vertices (they hold the first ids).
    pub fn planted_count(&self) -> usize {
        self.planted
    }

    /// Positions of all vertices, indexed by [`NodeId::index`].
    pub fn positions(&self) -> &[Point<D>] {
        &self.positions
    }

    /// Weights of all vertices, indexed by [`NodeId::index`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Position of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: NodeId) -> Point<D> {
        self.positions[v.index()]
    }

    /// Weight of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn weight(&self, v: NodeId) -> f64 {
        self.weights[v.index()]
    }

    /// The model parameters this graph was sampled with.
    pub fn params(&self) -> &GirgParams {
        &self.params
    }

    /// The kernel the edges were sampled with.
    pub fn kernel(&self) -> GirgKernel {
        GirgKernel::new(
            self.params.alpha,
            self.params.lambda,
            self.params.wmin,
            self.params.intensity,
            D as u32,
        )
        .expect("parameters were validated at sampling time")
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The planted vertices, in the order they were planted (ids `0..k`).
    pub fn planted(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.planted as u32).map(NodeId::new)
    }

    /// A uniformly random vertex.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no vertices (possible, with probability
    /// `e^{-n}`, when the Poisson draw is 0 and nothing was planted).
    pub fn random_vertex<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let n = self.node_count();
        assert!(n > 0, "sampled GIRG has no vertices");
        NodeId::from_index(rng.gen_range(0..n))
    }

    /// The permutation sorting the vertices into Morton (z-order) order of
    /// their torus positions, ties broken by original id.
    ///
    /// Relabeling by this permutation ([`Girg::relabel`]) makes vertex ids
    /// spatially coherent: greedy routes move through geometrically close
    /// vertices, so consecutive hops touch nearby ids and the
    /// position/weight (or routing-index) reads stay in cache.
    pub fn morton_permutation(&self) -> Permutation {
        let keys: Vec<u64> = self
            .positions
            .iter()
            .map(smallworld_geometry::morton::point_code)
            .collect();
        Permutation::from_sort_keys(&keys)
    }

    /// This GIRG with vertices relabeled by `perm` (typically
    /// [`Girg::morton_permutation`]): the graph, positions, and weights are
    /// permuted consistently, so vertex `perm.forward(v)` of the result is
    /// vertex `v` of `self` under a different name.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length mismatches the vertex count, or if
    /// this GIRG has planted vertices — their contract is to hold the
    /// *first* ids, which an arbitrary relabeling would break.
    pub fn relabel(&self, perm: &Permutation) -> Girg<D> {
        assert_eq!(
            self.planted, 0,
            "relabeling a GIRG with planted vertices would scramble their ids"
        );
        Girg::from_parts(
            self.graph.relabel(perm),
            perm.apply_slice(&self.positions),
            perm.apply_slice(&self.weights),
            self.params,
            0,
        )
    }
}

/// Builder for [`Girg`]; see the [module docs](self) for the model.
///
/// # Examples
///
/// Plant a source and a target with chosen weights at torus distance 1/2,
/// as in the paper's adversarial setup for Theorems 3.1–3.3:
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_geometry::Point;
/// use smallworld_models::girg::GirgBuilder;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let girg = GirgBuilder::<2>::new(500)
///     .beta(2.7)
///     .alpha(f64::INFINITY) // threshold kernel (EP2)
///     .plant(Point::new([0.0, 0.0]), 1.0)  // source: id 0
///     .plant(Point::new([0.5, 0.5]), 4.0)  // target: id 1
///     .sample(&mut rng)?;
/// let s = girg.planted().next().unwrap();
/// assert_eq!(girg.weight(s), 1.0);
/// # Ok::<(), smallworld_models::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GirgBuilder<const D: usize = 2> {
    intensity: f64,
    beta: f64,
    wmin: f64,
    alpha: Alpha,
    lambda: f64,
    algorithm: SamplerAlgorithm,
    fixed_count: Option<usize>,
    planted: Vec<(Point<D>, f64)>,
}

impl<const D: usize> GirgBuilder<D> {
    /// Starts a builder for a GIRG with expected `n` vertices.
    ///
    /// Defaults: `β = 2.5`, `w_min = 1`, `α = 2`, `λ = 1`,
    /// algorithm [`SamplerAlgorithm::Auto`].
    pub fn new(n: u64) -> Self {
        GirgBuilder {
            intensity: n as f64,
            beta: 2.5,
            wmin: 1.0,
            alpha: Alpha::Finite(2.0),
            lambda: 1.0,
            algorithm: SamplerAlgorithm::Auto,
            fixed_count: None,
            planted: Vec::new(),
        }
    }

    /// Sets the power-law exponent `β ∈ (2, 3)`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the minimum weight `w_min > 0`.
    pub fn wmin(mut self, wmin: f64) -> Self {
        self.wmin = wmin;
        self
    }

    /// Sets the decay parameter `α > 1`; pass `f64::INFINITY` (or
    /// [`Alpha::Threshold`]) for the threshold case.
    pub fn alpha(mut self, alpha: impl Into<Alpha>) -> Self {
        self.alpha = alpha.into();
        self
    }

    /// Sets the probability constant λ of the kernel.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Selects the edge-sampling algorithm.
    pub fn algorithm(mut self, algorithm: SamplerAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Uses exactly `count` random vertices instead of a Poisson draw.
    ///
    /// The paper prefers the Poisson point process for its independence over
    /// disjoint regions (§2.1, footnote 6); the fixed-size variant is the
    /// model of the paper's reference \[16\] and is used by the hyperbolic
    /// mapping and in tests.
    pub fn vertex_count(mut self, count: usize) -> Self {
        self.fixed_count = Some(count);
        self
    }

    /// Plants a vertex with a fixed position and weight.
    ///
    /// Planted vertices receive the first node ids, in planting order. This
    /// realizes the paper's setup where an adversary fixes the weights and
    /// positions of `s` and `t` while the rest of the graph stays random.
    pub fn plant(mut self, position: Point<D>, weight: f64) -> Self {
        self.planted.push((position, weight));
        self
    }

    /// Samples a GIRG.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `β ∉ (2,3)`, `α ≤ 1`,
    /// `w_min ≤ 0`, `λ ≤ 0`, the intensity is zero, or a planted weight is
    /// below `w_min`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Girg<D>, ModelError> {
        check_param(
            "beta",
            self.beta,
            self.beta > 2.0 && self.beta < 3.0,
            "must lie in (2, 3)",
        )?;
        check_param(
            "intensity",
            self.intensity,
            self.intensity > 0.0,
            "must be positive",
        )?;
        let kernel = GirgKernel::new(self.alpha, self.lambda, self.wmin, self.intensity, D as u32)?;
        let weights_dist = PowerLaw::new(self.beta, self.wmin)?;
        for &(_, w) in &self.planted {
            check_param("planted weight", w, w >= self.wmin, "must be >= wmin")?;
        }

        let random_count = match self.fixed_count {
            Some(c) => c,
            None => sample_poisson(rng, self.intensity) as usize,
        };
        let total = self.planted.len() + random_count;

        let mut positions = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for &(p, w) in &self.planted {
            positions.push(p);
            weights.push(w);
        }
        for _ in 0..random_count {
            positions.push(Point::random(rng));
            weights.push(weights_dist.sample(rng));
        }

        let pool = smallworld_par::Pool::from_env();
        let edges = sample_edges(&positions, &weights, &kernel, self.algorithm, rng);
        let graph = Graph::from_edges_parallel(total, &edges, &pool)
            .expect("sampler produces valid simple edges");

        Ok(Girg {
            graph,
            positions,
            weights,
            params: GirgParams {
                intensity: self.intensity,
                beta: self.beta,
                wmin: self.wmin,
                alpha: self.alpha,
                lambda: self.lambda,
            },
            planted: self.planted.len(),
        })
    }
}

/// Samples the edge set for given positions and weights under an arbitrary
/// [`ConnectionKernel`].
///
/// This is the engine behind [`GirgBuilder::sample`]; it is public so that
/// other models (notably hyperbolic random graphs, whose kernel is the §11
/// mapping) can reuse it.
pub fn sample_edges<const D: usize, K, R>(
    positions: &[Point<D>],
    weights: &[f64],
    kernel: &K,
    algorithm: SamplerAlgorithm,
    rng: &mut R,
) -> Vec<(u32, u32)>
where
    K: ConnectionKernel + Sync,
    R: Rng + ?Sized,
{
    assert_eq!(
        positions.len(),
        weights.len(),
        "positions and weights must have equal length"
    );
    if use_cells(algorithm, positions.len()) {
        cells::sample_edges(positions, weights, kernel, rng)
    } else {
        naive::sample_edges(positions, weights, kernel, rng)
    }
}

/// Like [`sample_edges`], but with an explicit master seed and thread pool
/// instead of an ambient RNG.
///
/// For the cell-based sampler the output is **bitwise-identical for any
/// pool size** (per-cell-pair seed-splitting; see `crates/par`); the naive
/// sampler is sequential and simply seeds its RNG from `master_seed`.
pub fn sample_edges_pooled<const D: usize, K>(
    positions: &[Point<D>],
    weights: &[f64],
    kernel: &K,
    algorithm: SamplerAlgorithm,
    master_seed: u64,
    pool: &smallworld_par::Pool,
) -> Vec<(u32, u32)>
where
    K: ConnectionKernel + Sync,
{
    assert_eq!(
        positions.len(),
        weights.len(),
        "positions and weights must have equal length"
    );
    if use_cells(algorithm, positions.len()) {
        cells::sample_edges_pooled(positions, weights, kernel, master_seed, pool)
    } else {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(master_seed);
        naive::sample_edges(positions, weights, kernel, &mut rng)
    }
}

fn use_cells(algorithm: SamplerAlgorithm, n: usize) -> bool {
    match algorithm {
        SamplerAlgorithm::Naive => false,
        SamplerAlgorithm::CellBased => true,
        SamplerAlgorithm::Auto => n >= 3_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn builder_rejects_bad_beta() {
        assert!(GirgBuilder::<2>::new(100).beta(2.0).sample(&mut rng(0)).is_err());
        assert!(GirgBuilder::<2>::new(100).beta(3.0).sample(&mut rng(0)).is_err());
        assert!(GirgBuilder::<2>::new(100).beta(1.5).sample(&mut rng(0)).is_err());
    }

    #[test]
    fn builder_rejects_low_planted_weight() {
        let r = GirgBuilder::<2>::new(100)
            .wmin(2.0)
            .plant(Point::origin(), 1.0)
            .sample(&mut rng(0));
        assert!(r.is_err());
    }

    #[test]
    fn vertex_count_is_poisson_like() {
        let girg = GirgBuilder::<2>::new(1_000).sample(&mut rng(1)).unwrap();
        let n = girg.node_count() as f64;
        assert!((n - 1_000.0).abs() < 10.0 * 1_000.0f64.sqrt());
        assert_eq!(girg.positions().len(), girg.node_count());
        assert_eq!(girg.weights().len(), girg.node_count());
    }

    #[test]
    fn fixed_count_is_exact() {
        let girg = GirgBuilder::<1>::new(100)
            .vertex_count(137)
            .sample(&mut rng(2))
            .unwrap();
        assert_eq!(girg.node_count(), 137);
    }

    #[test]
    fn planted_vertices_come_first() {
        let girg = GirgBuilder::<2>::new(50)
            .plant(Point::new([0.25, 0.25]), 3.0)
            .plant(Point::new([0.75, 0.75]), 7.0)
            .sample(&mut rng(3))
            .unwrap();
        let planted: Vec<NodeId> = girg.planted().collect();
        assert_eq!(planted.len(), 2);
        assert_eq!(girg.weight(planted[0]), 3.0);
        assert_eq!(girg.weight(planted[1]), 7.0);
        assert!(girg.position(planted[0]).distance(&Point::new([0.25, 0.25])) < 1e-12);
    }

    #[test]
    fn all_weights_at_least_wmin() {
        let girg = GirgBuilder::<2>::new(500)
            .wmin(1.5)
            .sample(&mut rng(4))
            .unwrap();
        assert!(girg.weights().iter().all(|&w| w >= 1.5));
    }

    #[test]
    fn average_degree_is_reasonable() {
        // expected degree of a weight-w vertex is Θ(w); integrating the λ=1,
        // α=2, d=2 kernel over the torus gives ≈ 8·w·E[W] = 24w, so the
        // average degree should be ≈ 24·E[W] = 72 (up to power-law noise)
        let girg = GirgBuilder::<2>::new(4_000).sample(&mut rng(5)).unwrap();
        let avg = girg.graph().average_degree();
        assert!(avg > 20.0 && avg < 150.0, "avg degree {avg}");
    }

    #[test]
    fn kernel_reconstruction_matches_params() {
        let girg = GirgBuilder::<2>::new(100)
            .alpha(3.0)
            .lambda(0.5)
            .sample(&mut rng(6))
            .unwrap();
        let k = girg.kernel();
        assert_eq!(k.alpha(), Alpha::Finite(3.0));
        assert_eq!(k.lambda(), 0.5);
    }

    #[test]
    fn random_vertex_in_range() {
        let girg = GirgBuilder::<2>::new(200).sample(&mut rng(7)).unwrap();
        let mut r = rng(8);
        for _ in 0..50 {
            let v = girg.random_vertex(&mut r);
            assert!(v.index() < girg.node_count());
        }
    }

    #[test]
    fn heavy_planted_vertex_has_high_degree() {
        // a vertex of weight ~ n^{0.8} should connect to a large share
        let girg = GirgBuilder::<2>::new(2_000)
            .plant(Point::origin(), 400.0)
            .sample(&mut rng(9))
            .unwrap();
        let hub = girg.planted().next().unwrap();
        let deg = girg.graph().degree(hub);
        assert!(deg > 50, "hub degree {deg}");
    }

    #[test]
    fn morton_relabel_is_an_isomorphism() {
        let girg = GirgBuilder::<2>::new(500).sample(&mut rng(10)).unwrap();
        let perm = girg.morton_permutation();
        let relabeled = girg.relabel(&perm);
        assert_eq!(relabeled.node_count(), girg.node_count());
        assert_eq!(
            relabeled.graph().edge_count(),
            girg.graph().edge_count()
        );
        for v in girg.graph().nodes() {
            let new = perm.forward(v);
            // the address (x_v, w_v) travels with the vertex
            assert_eq!(relabeled.weight(new), girg.weight(v));
            assert_eq!(
                relabeled.position(new).coord(0),
                girg.position(v).coord(0)
            );
            // adjacency is preserved under the rename
            let mut expected: Vec<NodeId> =
                girg.graph().neighbors(v).iter().map(|&u| perm.forward(u)).collect();
            expected.sort_unstable();
            assert_eq!(relabeled.graph().neighbors(new), &expected[..]);
        }
    }

    #[test]
    fn morton_permutation_orders_by_z_curve() {
        let girg = GirgBuilder::<2>::new(300).sample(&mut rng(11)).unwrap();
        let perm = girg.morton_permutation();
        let relabeled = girg.relabel(&perm);
        let codes: Vec<u64> = relabeled
            .positions()
            .iter()
            .map(smallworld_geometry::morton::point_code)
            .collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]), "not z-sorted");
    }

    #[test]
    #[should_panic(expected = "planted")]
    fn relabel_rejects_planted_girgs() {
        let girg = GirgBuilder::<2>::new(200)
            .plant(Point::origin(), 5.0)
            .sample(&mut rng(12))
            .unwrap();
        let perm = girg.morton_permutation();
        let _ = girg.relabel(&perm);
    }
}
