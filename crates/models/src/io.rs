//! Plain-text persistence for sampled GIRGs.
//!
//! Sampling a million-vertex GIRG takes tens of seconds; analyses often
//! want to reuse the same instance across processes or hand it to external
//! tooling. The format is a deliberately simple line protocol (no binary
//! deps):
//!
//! ```text
//! smallworld-girg v1 d=2
//! params intensity=<f> beta=<f> wmin=<f> alpha=<f|inf> lambda=<f> planted=<u>
//! nodes <count>
//! v <x_0> … <x_{d-1}> <weight>        (count lines)
//! edges <count>
//! e <u> <v>                           (count lines)
//! ```
//!
//! Floating point values round-trip exactly (written with `{:?}`, Rust's
//! shortest-exact formatting).
//!
//! This text format stays as the debuggable, tool-friendly interchange
//! path. For anything performance-sensitive, prefer the `smallworld-store`
//! crate's binary `.swg` container (compressed CSR, checksummed sections,
//! zero-copy mmap loads) — its `save_girg`/`load_girg` dispatch on the
//! file extension and route *this* format through the same unified API
//! and error type, so callers never need to use this module directly.

use std::io::{BufRead, Write};

use smallworld_geometry::Point;
use smallworld_graph::Graph;

use crate::girg::{Girg, GirgParams};
use crate::kernel::Alpha;

/// Error reading or writing a saved GIRG.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input did not match the format; the message names the line.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg) => write!(f, "malformed girg file: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a GIRG in the line format of the [module docs](self).
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Returns [`IoError::Io`] if the writer fails.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use smallworld_models::girg::GirgBuilder;
/// use smallworld_models::io::{read_girg, write_girg};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let girg = GirgBuilder::<2>::new(100).sample(&mut rng)?;
/// let mut buffer = Vec::new();
/// write_girg(&girg, &mut buffer)?;
/// let restored = read_girg::<2, _>(buffer.as_slice())?;
/// assert_eq!(restored.graph(), girg.graph());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_girg<const D: usize, W: Write>(girg: &Girg<D>, mut writer: W) -> Result<(), IoError> {
    let p = girg.params();
    writeln!(writer, "smallworld-girg v1 d={D}")?;
    let alpha = match p.alpha {
        Alpha::Finite(a) => format!("{a:?}"),
        Alpha::Threshold => "inf".to_string(),
    };
    writeln!(
        writer,
        "params intensity={:?} beta={:?} wmin={:?} alpha={} lambda={:?} planted={}",
        p.intensity,
        p.beta,
        p.wmin,
        alpha,
        p.lambda,
        girg.planted_count(),
    )?;
    writeln!(writer, "nodes {}", girg.node_count())?;
    for (pos, w) in girg.positions().iter().zip(girg.weights()) {
        write!(writer, "v")?;
        for i in 0..D {
            write!(writer, " {:?}", pos.coord(i))?;
        }
        writeln!(writer, " {w:?}")?;
    }
    writeln!(writer, "edges {}", girg.graph().edge_count())?;
    for (u, v) in girg.graph().edges() {
        writeln!(writer, "e {} {}", u.raw(), v.raw())?;
    }
    Ok(())
}

/// Reads a GIRG written by [`write_girg`].
///
/// Accepts any [`BufRead`]er by value; pass `&mut reader` to keep
/// ownership.
///
/// # Errors
///
/// Returns [`IoError::Io`] on reader failure and [`IoError::Parse`] if the
/// contents don't match the format or the declared dimension differs from
/// `D`.
pub fn read_girg<const D: usize, R: BufRead>(reader: R) -> Result<Girg<D>, IoError> {
    let mut lines = reader.lines();
    let mut next_line = || -> Result<String, IoError> {
        lines
            .next()
            .ok_or_else(|| IoError::Parse("unexpected end of file".into()))?
            .map_err(IoError::Io)
    };

    // header
    let header = next_line()?;
    let dim: usize = header
        .strip_prefix("smallworld-girg v1 d=")
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| IoError::Parse(format!("bad header: {header}")))?;
    if dim != D {
        return Err(IoError::Parse(format!(
            "file has dimension {dim}, expected {D}"
        )));
    }

    // params
    let params_line = next_line()?;
    let fields = parse_fields(
        &params_line,
        "params",
        &["intensity", "beta", "wmin", "alpha", "lambda", "planted"],
    )?;
    let alpha = if fields[3] == "inf" {
        Alpha::Threshold
    } else {
        Alpha::Finite(parse_f64(&fields[3])?)
    };
    let params = GirgParams {
        intensity: parse_f64(&fields[0])?,
        beta: parse_f64(&fields[1])?,
        wmin: parse_f64(&fields[2])?,
        alpha,
        lambda: parse_f64(&fields[4])?,
    };
    let planted: usize = fields[5]
        .parse()
        .map_err(|_| IoError::Parse(format!("bad planted count: {}", fields[5])))?;

    // nodes
    let nodes_line = next_line()?;
    let count: usize = nodes_line
        .strip_prefix("nodes ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| IoError::Parse(format!("bad nodes line: {nodes_line}")))?;
    let mut positions = Vec::with_capacity(count);
    let mut weights = Vec::with_capacity(count);
    for _ in 0..count {
        let line = next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("v") {
            return Err(IoError::Parse(format!("expected vertex line, got: {line}")));
        }
        let mut coords = [0.0; D];
        for c in &mut coords {
            *c = parse_f64(
                parts
                    .next()
                    .ok_or_else(|| IoError::Parse(format!("short vertex line: {line}")))?,
            )?;
        }
        let w = parse_f64(
            parts
                .next()
                .ok_or_else(|| IoError::Parse(format!("missing weight: {line}")))?,
        )?;
        positions.push(Point::new(coords));
        weights.push(w);
    }

    // edges
    let edges_line = next_line()?;
    let edge_count: usize = edges_line
        .strip_prefix("edges ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| IoError::Parse(format!("bad edges line: {edges_line}")))?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let line = next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("e") {
            return Err(IoError::Parse(format!("expected edge line, got: {line}")));
        }
        let u: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| IoError::Parse(format!("bad edge line: {line}")))?;
        let v: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| IoError::Parse(format!("bad edge line: {line}")))?;
        edges.push((u, v));
    }
    let graph = Graph::from_edges(count, edges)
        .map_err(|e| IoError::Parse(format!("invalid edge list: {e}")))?;

    if planted > count {
        return Err(IoError::Parse(format!(
            "planted count {planted} exceeds {count} vertices"
        )));
    }
    Ok(Girg::from_parts(graph, positions, weights, params, planted))
}

/// Parses `key=value` fields in declared order from a `prefix k=v k=v …`
/// line.
fn parse_fields(line: &str, prefix: &str, keys: &[&str]) -> Result<Vec<String>, IoError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(prefix) {
        return Err(IoError::Parse(format!("expected '{prefix}' line: {line}")));
    }
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let field = parts
            .next()
            .ok_or_else(|| IoError::Parse(format!("missing field {key}: {line}")))?;
        let value = field
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| IoError::Parse(format!("expected {key}=…, got {field}")))?;
        out.push(value.to_string());
    }
    Ok(out)
}

fn parse_f64(s: &str) -> Result<f64, IoError> {
    s.parse()
        .map_err(|_| IoError::Parse(format!("bad float: {s}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::girg::GirgBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(seed: u64) -> Girg<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        GirgBuilder::<2>::new(200)
            .beta(2.6)
            .alpha(2.5)
            .lambda(0.1)
            .plant(Point::new([0.5, 0.5]), 7.0)
            .sample(&mut rng)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let girg = sample(1);
        let mut buf = Vec::new();
        write_girg(&girg, &mut buf).unwrap();
        let restored: Girg<2> = read_girg(buf.as_slice()).unwrap();
        assert_eq!(restored.graph(), girg.graph());
        assert_eq!(restored.weights(), girg.weights());
        assert_eq!(restored.params(), girg.params());
        assert_eq!(restored.planted_count(), girg.planted_count());
        for (a, b) in restored.positions().iter().zip(girg.positions()) {
            assert_eq!(a.coords(), b.coords());
        }
    }

    #[test]
    fn threshold_alpha_roundtrips() {
        let mut rng = StdRng::seed_from_u64(2);
        let girg = GirgBuilder::<1>::new(100)
            .alpha(f64::INFINITY)
            .sample(&mut rng)
            .unwrap();
        let mut buf = Vec::new();
        write_girg(&girg, &mut buf).unwrap();
        let restored: Girg<1> = read_girg(buf.as_slice()).unwrap();
        assert!(restored.params().alpha.is_threshold());
        assert_eq!(restored.graph(), girg.graph());
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let girg = GirgBuilder::<3>::new(150)
            .beta(2.4)
            .lambda(0.05)
            .sample(&mut rng)
            .unwrap();
        let mut buf = Vec::new();
        write_girg(&girg, &mut buf).unwrap();
        let restored: Girg<3> = read_girg(buf.as_slice()).unwrap();
        assert_eq!(restored.graph(), girg.graph());
        for (a, b) in restored.positions().iter().zip(girg.positions()) {
            assert_eq!(a.coords(), b.coords());
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let girg = sample(3);
        let mut buf = Vec::new();
        write_girg(&girg, &mut buf).unwrap();
        let err = read_girg::<3, _>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_)), "{err}");
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let girg = sample(4);
        let mut buf = Vec::new();
        write_girg(&girg, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        // cutting mid-file must produce a parse error, never a panic
        assert!(read_girg::<2, _>(truncated).is_err());
    }

    #[test]
    fn garbage_inputs_are_rejected() {
        for garbage in [
            "",
            "not a girg file",
            "smallworld-girg v1 d=two",
            "smallworld-girg v1 d=2\nparams nope",
            "smallworld-girg v1 d=2\nparams intensity=1 beta=2.5 wmin=1 alpha=2 lambda=1 planted=0\nnodes x",
        ] {
            assert!(
                read_girg::<2, _>(garbage.as_bytes()).is_err(),
                "accepted: {garbage:?}"
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_girg::<2, _>("bogus".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }
}
